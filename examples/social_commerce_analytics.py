"""Social-commerce analytics: the workload the paper's intro motivates.

Answers three product questions against the multi-model store, then runs
PageRank on the social graph to find influencers and cross-references
their purchases — relational + JSON + KV + graph in one script.

Run:  python examples/social_commerce_analytics.py
"""

from repro import DatasetGenerator, GeneratorConfig, UnifiedDriver, load_dataset
from repro.models.graph.algorithms import pagerank
from repro.models.graph.property_graph import PropertyGraph


def build_social_graph(driver: UnifiedDriver) -> PropertyGraph:
    """Export the engine's committed social graph into the value layer
    so whole-graph algorithms (PageRank) can run over it."""
    graph = PropertyGraph("social")
    with driver.db.transaction() as tx:
        for vertex in tx.graph_vertices("social"):
            graph.add_vertex(vertex.id, vertex.label, **vertex.properties)
        for edge in tx.graph_edges("social"):
            graph.add_edge(edge.src, edge.dst, edge.label, **edge.properties)
    return graph


def main() -> None:
    dataset = DatasetGenerator(GeneratorConfig(seed=11, scale_factor=0.2)).generate()
    driver = UnifiedDriver()
    load_dataset(driver, dataset)

    # Q: which product categories earn the best ratings?
    print("category ratings (JSON products joined with KV feedback):")
    for row in driver.query(
        """
        FOR p IN products
          FOR fb IN KV("feedback", CONCAT(p._id, "/"))
            COLLECT category = p.category
              AGGREGATE n = COUNT(1), avg_rating = AVG(fb.value.rating)
            SORT avg_rating DESC
            RETURN {category, n, avg_rating: ROUND(avg_rating, 2)}
        """
    ):
        print(f"  {row['category']:<12} n={row['n']:<5} avg={row['avg_rating']}")

    # Q: top spenders with their relational profile.
    print("\ntop spenders (JSON orders joined back to relational customers):")
    for row in driver.query(
        """
        FOR o IN orders
          COLLECT cid = o.customer_id AGGREGATE spend = SUM(o.total_price)
          SORT spend DESC
          LIMIT 5
          LET c = DOCUMENT("customers", cid)
          RETURN {name: CONCAT(c.first_name, " ", c.last_name),
                  country: c.country, spend: ROUND(spend, 2)}
        """
    ):
        print(f"  {row['name']:<20} {row['country']:<12} {row['spend']:>10}")

    # Q: social influencers and what they buy.
    graph = build_social_graph(driver)
    ranks = pagerank(graph, edge_label="knows")
    influencers = sorted(ranks, key=lambda v: ranks[v], reverse=True)[:3]
    print("\ntop-3 social influencers (PageRank over the knows graph):")
    for vid in influencers:
        purchases = driver.query(
            """
            FOR o IN orders
              FILTER o.customer_id == @cid
              FOR it IN o.items
                RETURN DISTINCT it.product_id
            """,
            {"cid": vid},
        )
        name = graph.vertex(vid).properties.get("name", "?")
        print(f"  {name:<20} rank={ranks[vid]:.4f} distinct products bought: "
              f"{len(purchases)}")

    # Q: does an influencer's neighbourhood buy the same things?
    seed_customer = influencers[0]
    overlap = driver.query(
        """
        LET mine = [FOR o IN orders FILTER o.customer_id == @cid
                      FOR it IN o.items RETURN DISTINCT it.product_id]
        FOR friend IN TRAVERSE("social", @cid, 1, 1, "knows")
          FOR o IN orders
            FILTER o.customer_id == friend._id
            FOR it IN o.items
              FILTER it.product_id IN mine
              RETURN DISTINCT {friend: friend.name, product: it.product_id}
        """,
        {"cid": seed_customer},
    )
    print(f"\nfriends of the top influencer who bought the same products: "
          f"{len(overlap)} (friend, product) pairs")


if __name__ == "__main__":
    main()
