"""Quickstart: generate multi-model data, load it, query across models.

Run:  python examples/quickstart.py
"""

from repro import (
    DatasetGenerator,
    GeneratorConfig,
    UnifiedDriver,
    load_dataset,
)


def main() -> None:
    # 1. Generate the social-commerce dataset (Figure 1) at a small scale.
    dataset = DatasetGenerator(GeneratorConfig(seed=7, scale_factor=0.1)).generate()
    print("generated:", dataset.summary())

    # 2. Load it into the unified multi-model engine (five models, one
    #    transactional backend) with secondary indexes.
    driver = UnifiedDriver()
    load_dataset(driver, dataset)
    print("loaded:", driver.stats())

    # 3. One MMQL query joining three models: relational customers, JSON
    #    orders, and key-value feedback.
    rows = driver.query(
        """
        FOR c IN customers
          FILTER c.country == @country
          FOR o IN orders
            FILTER o.customer_id == c.id AND o.total_price > @min_total
            FOR it IN o.items
              LET fb = KVGET("feedback", CONCAT(it.product_id, "/", c.id))
              FILTER fb != NULL
              SORT o.total_price DESC
              LIMIT 5
              RETURN {customer: c.last_name, total: o.total_price,
                      product: it.product_id, rating: fb.rating}
        """,
        {"country": "Finland", "min_total": 100.0},
    )
    print("\ncustomers from Finland with rated purchases over 100:")
    for row in rows:
        print("  ", row)

    # 4. A cross-model transaction: the paper's order-update example.
    order = dataset.orders[0]
    item = order["items"][0]

    def order_update(session):
        session.doc_update("orders", order["_id"], {"status": "shipped"})
        session.kv_put(
            "feedback",
            f"{item['product_id']}/{order['customer_id']}",
            {"rating": 5, "text": "arrived quickly", "date": "2016-06-12"},
        )
        invoice = session.xml_get("invoices", order["_id"])
        invoice.set("status", "shipped")
        session.xml_put("invoices", order["_id"], invoice)

    driver.run_transaction(order_update)
    status = driver.query(
        'FOR o IN orders FILTER o._id == @id RETURN o.status', {"id": order["_id"]}
    )
    print(f"\norder {order['_id']} after the multi-model transaction: {status[0]}")

    # 5. Graph traversal through the same API: friends-of-friends.
    friends = driver.query(
        'FOR v IN TRAVERSE("social", @start, 1, 2, "knows") RETURN v.name',
        {"start": order["customer_id"]},
    )
    print(f"2-hop social neighbourhood of customer {order['customer_id']}: "
          f"{len(friends)} people")


if __name__ == "__main__":
    main()
