"""Consistency probe: ACID anomalies and eventual-consistency metrics.

Prints the isolation-level anomaly matrix measured against the engine,
then sweeps the replication simulator to show how staleness grows with
lag — the two halves of the benchmark's consistency pillar.

Run:  python examples/consistency_probe.py
"""

from repro.consistency import (
    ReplicationConfig,
    consistency_probability,
    probe_all,
    read_your_writes_violation_rate,
    staleness_distribution,
)
from repro.engine.transactions import IsolationLevel


def main() -> None:
    print("ACID anomaly matrix (measured by deterministic schedules):\n")
    matrix = probe_all()
    levels = list(IsolationLevel)
    header = f"{'anomaly':<28}" + "".join(f"{l.value:<18}" for l in levels)
    print(header)
    print("-" * len(header))
    for name, row in matrix.cells.items():
        cells = "".join(
            f"{'OCCURS' if row[l] else '-':<18}" for l in levels
        )
        print(f"{name:<28}{cells}")

    print("\neventual consistency vs replication lag (3 replicas):\n")
    print(f"{'lag':>5} {'fresh reads':>12} {'mean stale (vers)':>18} "
          f"{'P(fresh) @8 ticks':>18} {'RYW violations':>15}")
    for lag in (1, 4, 16, 64):
        config = ReplicationConfig(base_lag=lag, jitter=max(1, lag // 2))
        stats = staleness_distribution(config)
        curve = consistency_probability(config, delays=[8])
        ryw = read_your_writes_violation_rate(config, read_delay=1)
        print(f"{lag:>5} {stats.fresh_fraction:>12.3f} "
              f"{stats.version_staleness.mean:>18.2f} "
              f"{curve.probabilities[0]:>18.2f} {ryw:>15.3f}")

    print("\nhow long until reads are 99% fresh?")
    for lag in (1, 4, 16):
        config = ReplicationConfig(base_lag=lag, jitter=lag // 2)
        curve = consistency_probability(
            config, delays=[0, 1, 2, 4, 8, 16, 32, 64, 128]
        )
        t99 = curve.time_to_probability(0.99)
        print(f"  base_lag={lag:<3} -> t(99% fresh) = {t99} ticks")


if __name__ == "__main__":
    main()
