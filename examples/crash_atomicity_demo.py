"""Crash-atomicity demo: one WAL vs five commit points.

Runs the paper's order-update transaction (JSON + KV + XML) on both
architectures, injecting a crash at the worst possible moment, and shows
the unified engine recovering to a consistent state while the polyglot
baseline fractures.

Run:  python examples/crash_atomicity_demo.py
"""

from repro.baselines.polyglot import CrashDuringCommit
from repro.drivers.polyglot import PolyglotDriver
from repro.drivers.unified import UnifiedDriver
from repro.errors import SimulatedCrash
from repro.models.xml.node import element, text


def seed(session) -> None:
    session.doc_insert(
        "orders", {"_id": "o1", "customer_id": 1, "status": "pending",
                   "total_price": 49.5},
    )
    session.xml_put(
        "invoices", "o1",
        element("invoice", {"id": "o1", "status": "pending"},
                element("total", {}, text("49.50"))),
    )


def order_update(session) -> None:
    """The paper's example: one update touching three models."""
    session.doc_update("orders", "o1", {"status": "shipped"})
    session.kv_put("feedback", "p7/1", {"rating": 5, "text": "great"})
    session.xml_put(
        "invoices", "o1",
        element("invoice", {"id": "o1", "status": "shipped"},
                element("total", {}, text("49.50"))),
    )


def describe(order_status, invoice_status, feedback) -> str:
    state = (f"order={order_status!r} invoice={invoice_status!r} "
             f"feedback={'present' if feedback else 'absent'}")
    updated = [order_status == "shipped", invoice_status == "shipped",
               feedback is not None]
    if all(updated):
        return state + "  -> CONSISTENT (all updated)"
    if not any(updated):
        return state + "  -> CONSISTENT (none updated)"
    return state + "  -> FRACTURED"


def main() -> None:
    print("=== unified engine: crash between WAL writes and commit record ===")
    unified = UnifiedDriver()
    unified.create_collection("orders")
    unified.create_kv_namespace("feedback")
    unified.create_xml_collection("invoices")
    unified.load(seed)
    unified.db.manager.crash_before_next_commit_record = True
    try:
        unified.run_transaction(order_update)
    except SimulatedCrash as exc:
        print(f"crash injected: {exc}")
    recovered = unified.db.crash()
    with recovered.transaction() as tx:
        print(describe(
            tx.doc_get("orders", "o1")["status"],
            tx.xml_get("invoices", "o1").get("status"),
            tx.kv_get("feedback", "p7/1"),
        ))

    print("\n=== polyglot baseline: crash between per-store commits ===")
    polyglot = PolyglotDriver()
    polyglot.create_collection("orders")
    polyglot.create_kv_namespace("feedback")
    polyglot.create_xml_collection("invoices")
    polyglot.load(seed)
    polyglot.db.crash_after_stores = 1  # document store commits, rest lost
    try:
        polyglot.run_transaction(order_update)
    except CrashDuringCommit as exc:
        print(f"crash injected: {exc}")
    polyglot.db.crash_after_stores = None
    session = polyglot.db.session()
    invoice = session.xml_get("invoices", "o1")
    print(describe(
        session.doc_get("orders", "o1")["status"],
        invoice.get("status") if invoice is not None else None,
        session.kv_get("feedback", "p7/1"),
    ))


if __name__ == "__main__":
    main()
