"""Schema-evolution audit: which history queries survive an evolution?

Walks the orders collection through a realistic evolution chain, showing
after every step which of the benchmark's history queries still run, then
migrates the live data and proves the surviving queries give answers.

Run:  python examples/schema_evolution_audit.py
"""

from repro import DatasetGenerator, GeneratorConfig, UnifiedDriver, load_dataset
from repro.core.workloads import QUERIES
from repro.schema import (
    AddField,
    DropField,
    NestFields,
    RenameField,
    SchemaRegistry,
    check_usability,
)
from repro.schema.registry import migrate_collection
from repro.schema.shapes import orders_shape

# A realistic "orders v2" migration a product team might ship.
EVOLUTION = [
    AddField("orders", "currency", "string", default="EUR"),
    RenameField("orders", "total_price", "total"),
    NestFields("orders", ("order_date", "status"), "meta"),
    DropField("orders", "customer_id"),  # moved to an external mapping
]


def main() -> None:
    dataset = DatasetGenerator(GeneratorConfig(seed=3, scale_factor=0.05)).generate()
    driver = UnifiedDriver()
    load_dataset(driver, dataset)

    history = [q.text for q in QUERIES]
    registry = SchemaRegistry()
    registry.register(orders_shape())

    print("history-query usability as the orders schema evolves:")
    report = check_usability(history, registry.current("orders"))
    print(f"  v1 (canonical)            usable {report.usable}/{report.total}")
    for op in EVOLUTION:
        shape = registry.apply(op)
        report = check_usability(history, shape)
        print(f"  v{shape.version} after {op.describe():<38} "
              f"usable {report.usable}/{report.total}")

    print("\nqueries broken by the final schema, with the missing paths:")
    final_report = check_usability(history, registry.current("orders"))
    for text, missing in final_report.broken_queries:
        first_line = next(l.strip() for l in text.splitlines() if l.strip())
        print(f"  {first_line[:60]:<62} missing: {', '.join(missing)}")

    # Migrate the live collection to the final version and demonstrate a
    # *rewritten* query working against the new shape.
    result = migrate_collection(driver, "orders", registry.ops("orders"))
    print(f"\nmigrated {result.documents_migrated} orders through "
          f"{result.ops_applied} ops in {result.seconds * 1000:.1f} ms")

    rewritten = driver.query(
        """
        FOR o IN orders
          FILTER o.meta.status == "shipped"
          SORT o.total DESC
          LIMIT 3
          RETURN {id: o._id, total: o.total, currency: o.currency}
        """
    )
    print("rewritten v5 query (meta.status / total / currency):")
    for row in rewritten:
        print("  ", row)


if __name__ == "__main__":
    main()
