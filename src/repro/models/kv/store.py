"""An ordered key-value namespace.

Keys are strings; values are arbitrary JSON-representable objects.  Keys
are kept in sorted order so prefix and range scans (the benchmark's
``Feedback`` lookups, e.g. ``feedback/<product>/<customer>``) are
O(log n + k) via bisection.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from repro.errors import KeyValueError
from repro.models.document.document import deep_copy_json, validate_json_value


class KeyValueNamespace:
    """A sorted map with get/put/delete and prefix/range scans.

    >>> ns = KeyValueNamespace("feedback")
    >>> ns.put("p1/c9", {"rating": 5})
    >>> ns.get("p1/c9")["rating"]
    5
    >>> [k for k, _ in ns.scan_prefix("p1/")]
    ['p1/c9']
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._data: dict[str, Any] = {}
        self._sorted_keys: list[str] = []

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    # -- mutation --------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Insert or overwrite *key*."""
        self._check_key(key)
        validate_json_value(value)
        if key not in self._data:
            bisect.insort(self._sorted_keys, key)
        self._data[key] = deep_copy_json(value)

    def delete(self, key: str) -> bool:
        """Delete *key*; returns whether it existed."""
        self._check_key(key)
        if key not in self._data:
            return False
        del self._data[key]
        idx = bisect.bisect_left(self._sorted_keys, key)
        del self._sorted_keys[idx]
        return True

    def clear(self) -> None:
        self._data.clear()
        self._sorted_keys.clear()

    # -- reads -----------------------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        """Point lookup; returns a deep copy or *default*."""
        self._check_key(key)
        value = self._data.get(key)
        return deep_copy_json(value) if value is not None else default

    def scan_prefix(self, prefix: str) -> Iterator[tuple[str, Any]]:
        """All (key, value) pairs whose key starts with *prefix*, in order."""
        start = bisect.bisect_left(self._sorted_keys, prefix)
        for i in range(start, len(self._sorted_keys)):
            key = self._sorted_keys[i]
            if not key.startswith(prefix):
                break
            yield key, deep_copy_json(self._data[key])

    def scan_range(self, low: str, high: str) -> Iterator[tuple[str, Any]]:
        """All pairs with ``low <= key < high``, in order."""
        if low > high:
            raise KeyValueError(f"bad range [{low!r}, {high!r})")
        start = bisect.bisect_left(self._sorted_keys, low)
        for i in range(start, len(self._sorted_keys)):
            key = self._sorted_keys[i]
            if key >= high:
                break
            yield key, deep_copy_json(self._data[key])

    def keys(self) -> list[str]:
        """All keys in sorted order."""
        return list(self._sorted_keys)

    def items(self) -> Iterator[tuple[str, Any]]:
        for key in list(self._sorted_keys):
            yield key, deep_copy_json(self._data[key])

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _check_key(key: str) -> None:
        if not isinstance(key, str) or not key:
            raise KeyValueError(f"key must be a non-empty string, got {key!r}")
