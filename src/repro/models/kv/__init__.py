"""Key-value data model: ordered string-keyed namespaces."""

from repro.models.kv.store import KeyValueNamespace

__all__ = ["KeyValueNamespace"]
