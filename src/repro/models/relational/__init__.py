"""Relational data model: typed schemas, rows, tables and predicates."""

from repro.models.relational.predicate import (
    And,
    ColumnComparison,
    Comparison,
    Lambda,
    Not,
    Op,
    Or,
    Predicate,
    TruePredicate,
)
from repro.models.relational.schema import (
    Column,
    ColumnType,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)
from repro.models.relational.table import RelationalTable, Row

__all__ = [
    "And",
    "Column",
    "ColumnComparison",
    "ColumnType",
    "Comparison",
    "DatabaseSchema",
    "ForeignKey",
    "Lambda",
    "Not",
    "Op",
    "Or",
    "Predicate",
    "RelationalTable",
    "Row",
    "TableSchema",
    "TruePredicate",
]
