"""In-memory relational tables with primary-key enforcement.

:class:`RelationalTable` is the value-layer table used directly by the
polyglot baseline and wrapped by the multi-model engine (which adds
transactions on top).  Rows are plain dicts validated against the schema.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.errors import ConstraintError, SchemaError
from repro.models.relational.predicate import Predicate, TruePredicate
from repro.models.relational.schema import TableSchema

Row = dict[str, Any]


class RelationalTable:
    """A table: schema + primary-key index + insert/scan/update/delete.

    >>> from repro.models.relational.schema import Column, ColumnType
    >>> schema = TableSchema(
    ...     "t", (Column("id", ColumnType.INTEGER, nullable=False),
    ...           Column("v", ColumnType.TEXT)), primary_key=("id",))
    >>> table = RelationalTable(schema)
    >>> table.insert({"id": 1, "v": "a"})
    >>> table.get((1,))["v"]
    'a'
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: dict[tuple[Any, ...], Row] = {}
        self._auto_rowid = 0  # used when the schema declares no primary key

    # -- size ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return self.scan()

    # -- mutation ----------------------------------------------------------

    def insert(self, values: Mapping[str, Any]) -> tuple[Any, ...]:
        """Validate and insert one row; returns its key tuple."""
        row = self.schema.validate_row(dict(values))
        key = self._key_for(row)
        if key in self._rows:
            raise ConstraintError(
                f"duplicate primary key {key!r} in table {self.schema.name!r}"
            )
        self._rows[key] = row
        return key

    def upsert(self, values: Mapping[str, Any]) -> tuple[Any, ...]:
        """Insert, or replace the existing row with the same key."""
        row = self.schema.validate_row(dict(values))
        key = self._key_for(row)
        self._rows[key] = row
        return key

    def update(self, key: tuple[Any, ...], changes: Mapping[str, Any]) -> Row:
        """Apply *changes* to the row at *key*; returns the new row."""
        existing = self._rows.get(key)
        if existing is None:
            raise ConstraintError(
                f"no row {key!r} in table {self.schema.name!r}"
            )
        merged = dict(existing)
        merged.update(changes)
        row = self.schema.validate_row(merged)
        new_key = self._key_for(row)
        if new_key != key and new_key in self._rows:
            raise ConstraintError(
                f"update would duplicate primary key {new_key!r}"
            )
        del self._rows[key]
        self._rows[new_key] = row
        return row

    def delete(self, key: tuple[Any, ...]) -> bool:
        """Delete the row at *key*; returns whether it existed."""
        return self._rows.pop(key, None) is not None

    def delete_where(self, predicate: Predicate) -> int:
        """Delete all matching rows; returns the count removed."""
        doomed = [k for k, row in self._rows.items() if predicate.matches(row)]
        for key in doomed:
            del self._rows[key]
        return len(doomed)

    def clear(self) -> None:
        self._rows.clear()

    # -- reads -------------------------------------------------------------

    def get(self, key: tuple[Any, ...]) -> Row | None:
        """Point lookup by primary key; returns a copy or None."""
        row = self._rows.get(key)
        return dict(row) if row is not None else None

    def scan(self, predicate: Predicate | None = None) -> Iterator[Row]:
        """Yield copies of all rows matching *predicate* (default: all)."""
        pred = predicate if predicate is not None else TruePredicate()
        for row in list(self._rows.values()):
            if pred.matches(row):
                yield dict(row)

    def select(
        self,
        predicate: Predicate | None = None,
        columns: Iterable[str] | None = None,
    ) -> list[Row]:
        """Materialised scan with optional projection."""
        wanted = list(columns) if columns is not None else None
        if wanted is not None:
            for name in wanted:
                if not self.schema.has_column(name):
                    raise SchemaError(
                        f"no column {name!r} in table {self.schema.name!r}"
                    )
        out: list[Row] = []
        for row in self.scan(predicate):
            if wanted is None:
                out.append(row)
            else:
                out.append({name: row[name] for name in wanted})
        return out

    def keys(self) -> list[tuple[Any, ...]]:
        return list(self._rows.keys())

    # -- schema migration ----------------------------------------------------

    def migrate(self, new_schema: TableSchema, transform: Any = None) -> None:
        """Rewrite every row to *new_schema*.

        *transform* maps an old row dict to a new row dict; if None, rows
        are projected onto the shared columns and new columns take their
        defaults.  Used by the schema-evolution pillar (E2).
        """
        shared = set(new_schema.column_names)
        migrated: dict[tuple[Any, ...], Row] = {}
        for row in self._rows.values():
            if transform is not None:
                candidate = transform(dict(row))
            else:
                candidate = {k: v for k, v in row.items() if k in shared}
            new_row = new_schema.validate_row(candidate)
            key = _key_of(new_schema, new_row) or self._fresh_rowid()
            if key in migrated:
                raise ConstraintError(
                    f"migration produced duplicate key {key!r} in "
                    f"{new_schema.name!r}"
                )
            migrated[key] = new_row
        self.schema = new_schema
        self._rows = migrated

    # -- internals -----------------------------------------------------------

    def _key_for(self, row: Row) -> tuple[Any, ...]:
        key = _key_of(self.schema, row)
        if key is not None:
            return key
        return self._fresh_rowid()

    def _fresh_rowid(self) -> tuple[Any, ...]:
        self._auto_rowid += 1
        return ("_rowid", self._auto_rowid)


def _key_of(schema: TableSchema, row: Row) -> tuple[Any, ...] | None:
    """Primary-key tuple of a validated row, or None if schema has no PK."""
    if not schema.primary_key:
        return None
    return tuple(row[c] for c in schema.primary_key)
