"""Relational schema objects: column types, columns, keys, table schemas.

The benchmark's schema-evolution pillar mutates these objects, so they are
immutable value types; every evolution step produces a *new*
:class:`TableSchema` and the registry keeps the full version history.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import SchemaError, TypeMismatchError


class ColumnType(enum.Enum):
    """The column types the benchmark generates and converts between."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    DATE = "date"  # stored as ISO-8601 text, validated on insert
    JSON = "json"  # nested value escape hatch used by conversions

    def validate(self, value: Any) -> None:
        """Raise :class:`TypeMismatchError` unless *value* fits this type."""
        if value is None:
            return
        expected: tuple[type, ...]
        if self is ColumnType.INTEGER:
            expected = (int,)
            if isinstance(value, bool):
                raise TypeMismatchError(f"boolean {value!r} is not INTEGER")
        elif self is ColumnType.FLOAT:
            expected = (int, float)
            if isinstance(value, bool):
                raise TypeMismatchError(f"boolean {value!r} is not FLOAT")
        elif self is ColumnType.TEXT:
            expected = (str,)
        elif self is ColumnType.BOOLEAN:
            expected = (bool,)
        elif self is ColumnType.DATE:
            expected = (str,)
            if isinstance(value, str) and not _looks_like_date(value):
                raise TypeMismatchError(f"{value!r} is not an ISO date")
        else:  # JSON accepts any JSON-representable value
            expected = (dict, list, str, int, float, bool)
        if not isinstance(value, expected):
            raise TypeMismatchError(
                f"value {value!r} ({type(value).__name__}) does not match "
                f"column type {self.value}"
            )


def _looks_like_date(text: str) -> bool:
    """Cheap ISO-8601 date check: YYYY-MM-DD prefix."""
    if len(text) < 10:
        return False
    y, m, d = text[0:4], text[5:7], text[8:10]
    return (
        y.isdigit()
        and m.isdigit()
        and d.isdigit()
        and text[4] == "-"
        and text[7] == "-"
        and 1 <= int(m) <= 12
        and 1 <= int(d) <= 31
    )


@dataclass(frozen=True)
class Column:
    """One typed column.  ``nullable`` defaults to True as in SQL."""

    name: str
    type: ColumnType
    nullable: bool = True
    default: Any = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")
        if self.default is not None:
            self.type.validate(self.default)

    def validate(self, value: Any) -> None:
        """Check nullability then the type."""
        if value is None:
            if not self.nullable:
                raise TypeMismatchError(f"column {self.name!r} is NOT NULL")
            return
        self.type.validate(value)


@dataclass(frozen=True)
class ForeignKey:
    """A single-column foreign key: ``column`` references ``ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str


@dataclass(frozen=True)
class TableSchema:
    """An immutable table schema with primary key and foreign keys.

    >>> schema = TableSchema(
    ...     "customer",
    ...     (Column("id", ColumnType.INTEGER, nullable=False),
    ...      Column("name", ColumnType.TEXT)),
    ...     primary_key=("id",))
    >>> schema.column("name").type is ColumnType.TEXT
    True
    """

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = ()
    foreign_keys: tuple[ForeignKey, ...] = ()
    version: int = 1

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have columns")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        known = set(names)
        for pk in self.primary_key:
            if pk not in known:
                raise SchemaError(f"primary key column {pk!r} not in {self.name!r}")
        for fk in self.foreign_keys:
            if fk.column not in known:
                raise SchemaError(f"foreign key column {fk.column!r} not in {self.name!r}")

    # -- lookups -------------------------------------------------------------

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    # -- validation ----------------------------------------------------------

    def validate_row(self, values: dict[str, Any]) -> dict[str, Any]:
        """Validate and normalise a row dict against this schema.

        Unknown keys raise; missing keys get the column default (or None
        for nullable columns).  Returns a complete, ordered dict.
        """
        unknown = set(values) - set(self.column_names)
        if unknown:
            raise SchemaError(
                f"unknown columns {sorted(unknown)} for table {self.name!r}"
            )
        normalised: dict[str, Any] = {}
        for col in self.columns:
            value = values.get(col.name, col.default)
            col.validate(value)
            normalised[col.name] = value
        return normalised

    def primary_key_of(self, values: dict[str, Any]) -> tuple[Any, ...]:
        """Extract the primary-key tuple from a validated row."""
        if not self.primary_key:
            raise SchemaError(f"table {self.name!r} has no primary key")
        return tuple(values[c] for c in self.primary_key)

    # -- evolution helpers (used by repro.schema.evolution) -------------------

    def with_column(self, column: Column) -> "TableSchema":
        """A new schema version with *column* appended."""
        if self.has_column(column.name):
            raise SchemaError(f"column {column.name!r} already exists")
        return replace(
            self, columns=self.columns + (column,), version=self.version + 1
        )

    def without_column(self, name: str) -> "TableSchema":
        """A new schema version with column *name* removed."""
        if name in self.primary_key:
            raise SchemaError(f"cannot drop primary-key column {name!r}")
        if not self.has_column(name):
            raise SchemaError(f"no column {name!r} in table {self.name!r}")
        return replace(
            self,
            columns=tuple(c for c in self.columns if c.name != name),
            foreign_keys=tuple(fk for fk in self.foreign_keys if fk.column != name),
            version=self.version + 1,
        )

    def with_renamed_column(self, old: str, new: str) -> "TableSchema":
        """A new schema version with column *old* renamed to *new*."""
        if not self.has_column(old):
            raise SchemaError(f"no column {old!r} in table {self.name!r}")
        if self.has_column(new):
            raise SchemaError(f"column {new!r} already exists")
        columns = tuple(
            replace(c, name=new) if c.name == old else c for c in self.columns
        )
        primary_key = tuple(new if c == old else c for c in self.primary_key)
        foreign_keys = tuple(
            replace(fk, column=new) if fk.column == old else fk
            for fk in self.foreign_keys
        )
        return replace(
            self,
            columns=columns,
            primary_key=primary_key,
            foreign_keys=foreign_keys,
            version=self.version + 1,
        )

    def with_retyped_column(self, name: str, new_type: ColumnType) -> "TableSchema":
        """A new schema version with column *name* retyped."""
        col = self.column(name)
        columns = tuple(
            replace(c, type=new_type, default=None) if c.name == name else c
            for c in self.columns
        )
        del col
        return replace(self, columns=columns, version=self.version + 1)


@dataclass(frozen=True)
class DatabaseSchema:
    """A named set of table schemas — the relational half of Figure 1."""

    tables: tuple[TableSchema, ...] = field(default_factory=tuple)

    def table(self, name: str) -> TableSchema:
        for tbl in self.tables:
            if tbl.name == name:
                return tbl
        raise SchemaError(f"no table {name!r} in database schema")

    def validate_foreign_keys(self) -> None:
        """Check every FK references an existing table and column."""
        names = {t.name for t in self.tables}
        for tbl in self.tables:
            for fk in tbl.foreign_keys:
                if fk.ref_table not in names:
                    raise SchemaError(
                        f"{tbl.name}.{fk.column} references missing table "
                        f"{fk.ref_table!r}"
                    )
                if not self.table(fk.ref_table).has_column(fk.ref_column):
                    raise SchemaError(
                        f"{tbl.name}.{fk.column} references missing column "
                        f"{fk.ref_table}.{fk.ref_column}"
                    )
