"""Row predicates: a tiny boolean algebra over column comparisons.

Predicates are used by the relational table scan API, by the polyglot
baseline's application-side filtering, and as the compiled form of MMQL
FILTER clauses that touch only one table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Mapping


class Predicate:
    """Base class; subclasses implement :meth:`matches`."""

    def matches(self, row: Mapping[str, Any]) -> bool:
        raise NotImplementedError

    # Composition sugar so call sites read naturally.
    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


class TruePredicate(Predicate):
    """Matches every row (full scan)."""

    def matches(self, row: Mapping[str, Any]) -> bool:
        return True

    def __repr__(self) -> str:
        return "TRUE"


class Op(enum.Enum):
    """Comparison operators; NULL semantics follow SQL (comparisons with None fail)."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    LIKE = "like"  # substring containment
    IN = "in"

    def apply(self, left: Any, right: Any) -> bool:
        if self is Op.IN:
            return left is not None and left in right
        if left is None or right is None:
            # SQL three-valued logic collapsed to False for filtering.
            return self is Op.NE and (left is None) != (right is None)
        if self is Op.EQ:
            return bool(left == right)
        if self is Op.NE:
            return bool(left != right)
        if self is Op.LIKE:
            return str(right) in str(left)
        try:
            if self is Op.LT:
                return bool(left < right)
            if self is Op.LE:
                return bool(left <= right)
            if self is Op.GT:
                return bool(left > right)
            if self is Op.GE:
                return bool(left >= right)
        except TypeError:
            return False
        raise AssertionError(f"unhandled operator {self}")


@dataclass
class Comparison(Predicate):
    """``column <op> value``.

    >>> Comparison("age", Op.GE, 18).matches({"age": 21})
    True
    """

    column: str
    op: Op
    value: Any

    def matches(self, row: Mapping[str, Any]) -> bool:
        return self.op.apply(row.get(self.column), self.value)

    def __repr__(self) -> str:
        return f"({self.column} {self.op.value} {self.value!r})"


@dataclass
class ColumnComparison(Predicate):
    """``left_column <op> right_column`` — used by join post-filters."""

    left_column: str
    op: Op
    right_column: str

    def matches(self, row: Mapping[str, Any]) -> bool:
        return self.op.apply(row.get(self.left_column), row.get(self.right_column))


@dataclass
class And(Predicate):
    left: Predicate
    right: Predicate

    def matches(self, row: Mapping[str, Any]) -> bool:
        return self.left.matches(row) and self.right.matches(row)

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


@dataclass
class Or(Predicate):
    left: Predicate
    right: Predicate

    def matches(self, row: Mapping[str, Any]) -> bool:
        return self.left.matches(row) or self.right.matches(row)

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


@dataclass
class Not(Predicate):
    inner: Predicate

    def matches(self, row: Mapping[str, Any]) -> bool:
        return not self.inner.matches(row)

    def __repr__(self) -> str:
        return f"(NOT {self.inner!r})"


@dataclass
class Lambda(Predicate):
    """Escape hatch wrapping an arbitrary row function."""

    fn: Callable[[Mapping[str, Any]], bool]

    def matches(self, row: Mapping[str, Any]) -> bool:
        return bool(self.fn(row))
