"""JSON document values and document collections.

A *document* is a JSON object with a mandatory ``_id`` field (string or
int).  Collections give point access by ``_id``, full scans, and simple
field filters; richer queries go through MMQL or :mod:`jsonpath`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.errors import DocumentError

JsonValue = Any  # dict | list | str | int | float | bool | None


def validate_json_value(value: JsonValue, path: str = "$") -> None:
    """Raise :class:`DocumentError` unless *value* is JSON-representable.

    Checks types recursively and requires dict keys to be strings.
    """
    if value is None or isinstance(value, (str, bool, int, float)):
        return
    if isinstance(value, list):
        for i, item in enumerate(value):
            validate_json_value(item, f"{path}[{i}]")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise DocumentError(
                    f"non-string key {key!r} at {path}"
                )
            validate_json_value(item, f"{path}.{key}")
        return
    raise DocumentError(
        f"value of type {type(value).__name__} at {path} is not JSON"
    )


def deep_copy_json(value: JsonValue) -> JsonValue:
    """Structure-preserving deep copy of a JSON value."""
    if isinstance(value, dict):
        return {k: deep_copy_json(v) for k, v in value.items()}
    if isinstance(value, list):
        return [deep_copy_json(v) for v in value]
    return value


def json_equal(a: JsonValue, b: JsonValue) -> bool:
    """Structural equality with int/float numeric coercion.

    Gold-standard comparison uses this so that a converter emitting
    ``10.0`` where the oracle says ``10`` still passes.
    """
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b or a == b and isinstance(a, bool) == isinstance(b, bool)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return float(a) == float(b)
    if isinstance(a, dict) and isinstance(b, dict):
        if a.keys() != b.keys():
            return False
        return all(json_equal(a[k], b[k]) for k in a)
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(json_equal(x, y) for x, y in zip(a, b))
    return a == b


class Document(dict):
    """A JSON object with a mandatory ``_id``.

    Subclassing dict keeps documents directly JSON-serialisable and lets
    MMQL treat them as plain objects.
    """

    def __init__(self, data: dict[str, JsonValue]) -> None:
        if "_id" not in data:
            raise DocumentError("document requires an '_id' field")
        if not isinstance(data["_id"], (str, int)) or isinstance(data["_id"], bool):
            raise DocumentError(f"document _id {data['_id']!r} must be str or int")
        validate_json_value(data)
        super().__init__(deep_copy_json(data))

    @property
    def id(self) -> str | int:
        return self["_id"]


class DocumentCollection:
    """A named collection of documents keyed by ``_id``.

    >>> orders = DocumentCollection("orders")
    >>> _ = orders.insert({"_id": "o1", "total": 9.5})
    >>> orders.get("o1")["total"]
    9.5
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._docs: dict[str | int, Document] = {}

    def __len__(self) -> int:
        return len(self._docs)

    def __iter__(self) -> Iterator[Document]:
        return self.scan()

    # -- mutation --------------------------------------------------------

    def insert(self, data: dict[str, JsonValue]) -> str | int:
        doc = Document(data)
        if doc.id in self._docs:
            raise DocumentError(
                f"duplicate _id {doc.id!r} in collection {self.name!r}"
            )
        self._docs[doc.id] = doc
        return doc.id

    def upsert(self, data: dict[str, JsonValue]) -> str | int:
        doc = Document(data)
        self._docs[doc.id] = doc
        return doc.id

    def update(self, doc_id: str | int, changes: dict[str, JsonValue]) -> Document:
        """Shallow-merge *changes* into the document (``_id`` immutable)."""
        existing = self._docs.get(doc_id)
        if existing is None:
            raise DocumentError(f"no document {doc_id!r} in {self.name!r}")
        if "_id" in changes and changes["_id"] != doc_id:
            raise DocumentError("cannot change a document's _id")
        merged = dict(existing)
        merged.update(changes)
        doc = Document(merged)
        self._docs[doc_id] = doc
        return doc

    def delete(self, doc_id: str | int) -> bool:
        return self._docs.pop(doc_id, None) is not None

    def clear(self) -> None:
        self._docs.clear()

    # -- reads ---------------------------------------------------------------

    def get(self, doc_id: str | int) -> Document | None:
        doc = self._docs.get(doc_id)
        return Document(doc) if doc is not None else None

    def scan(self, where: Callable[[Document], bool] | None = None) -> Iterator[Document]:
        for doc in list(self._docs.values()):
            if where is None or where(doc):
                yield Document(doc)

    def find(self, **equals: JsonValue) -> list[Document]:
        """All documents whose top-level fields equal the given values."""
        out = []
        for doc in self._docs.values():
            if all(doc.get(k) == v for k, v in equals.items()):
                out.append(Document(doc))
        return out

    def ids(self) -> list[str | int]:
        return list(self._docs.keys())
