"""Document (JSON) data model: document values, collections, JSONPath subset."""

from repro.models.document.document import (
    Document,
    DocumentCollection,
    deep_copy_json,
    json_equal,
    validate_json_value,
)
from repro.models.document.jsonpath import JsonPath, jsonpath

__all__ = [
    "Document",
    "DocumentCollection",
    "JsonPath",
    "deep_copy_json",
    "json_equal",
    "jsonpath",
    "validate_json_value",
]
