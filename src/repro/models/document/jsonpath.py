"""A JSONPath subset sufficient for the benchmark workload.

Supported grammar (documented subset, see DESIGN.md non-goals)::

    path       := '$' step*
    step       := '.' NAME            child member
                | '..' NAME           recursive descent to member
                | '[' INT ']'         array index (negative allowed)
                | '[*]'               all array elements
                | '.*'                all object members
    NAME       := [A-Za-z_][A-Za-z0-9_]* | quoted via ['name']

Evaluation always returns a *list* of matches (possibly empty), as in the
original JSONPath proposal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import DocumentError

JsonValue = Any


@dataclass(frozen=True)
class _Step:
    kind: str  # "member" | "index" | "wild_member" | "wild_index" | "descend"
    arg: Any = None


class JsonPath:
    """A parsed, reusable JSONPath expression.

    >>> JsonPath("$.items[0].name").find({"items": [{"name": "x"}]})
    ['x']
    >>> JsonPath("$..price").find({"a": {"price": 1}, "b": [{"price": 2}]})
    [1, 2]
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self._steps = _parse(text)

    def find(self, value: JsonValue) -> list[JsonValue]:
        """All matches of this path in *value*, in document order."""
        current: list[JsonValue] = [value]
        for step in self._steps:
            nxt: list[JsonValue] = []
            for node in current:
                nxt.extend(_apply(step, node))
            current = nxt
        return current

    def first(self, value: JsonValue, default: JsonValue = None) -> JsonValue:
        """First match or *default*."""
        matches = self.find(value)
        return matches[0] if matches else default

    def exists(self, value: JsonValue) -> bool:
        return bool(self.find(value))

    def __repr__(self) -> str:
        return f"JsonPath({self.text!r})"


def jsonpath(text: str, value: JsonValue) -> list[JsonValue]:
    """One-shot evaluation; parse-once callers should keep a JsonPath."""
    return JsonPath(text).find(value)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def _parse(text: str) -> list[_Step]:
    if not text.startswith("$"):
        raise DocumentError(f"JSONPath must start with '$': {text!r}")
    steps: list[_Step] = []
    i = 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == ".":
            if i + 1 < n and text[i + 1] == ".":
                # recursive descent: '..name' or '..*'
                i += 2
                if i < n and text[i] == "*":
                    steps.append(_Step("descend", "*"))
                    i += 1
                else:
                    name, i = _read_name(text, i)
                    steps.append(_Step("descend", name))
            else:
                i += 1
                if i < n and text[i] == "*":
                    steps.append(_Step("wild_member"))
                    i += 1
                else:
                    name, i = _read_name(text, i)
                    steps.append(_Step("member", name))
        elif ch == "[":
            close = text.find("]", i)
            if close == -1:
                raise DocumentError(f"unclosed '[' in JSONPath {text!r}")
            inner = text[i + 1 : close].strip()
            if inner == "*":
                steps.append(_Step("wild_index"))
            elif inner.startswith(("'", '"')) and inner.endswith(inner[0]) and len(inner) >= 2:
                steps.append(_Step("member", inner[1:-1]))
            else:
                try:
                    steps.append(_Step("index", int(inner)))
                except ValueError as exc:
                    raise DocumentError(
                        f"bad index {inner!r} in JSONPath {text!r}"
                    ) from exc
            i = close + 1
        else:
            raise DocumentError(
                f"unexpected character {ch!r} at {i} in JSONPath {text!r}"
            )
    return steps


def _read_name(text: str, i: int) -> tuple[str, int]:
    start = i
    n = len(text)
    while i < n and (text[i].isalnum() or text[i] == "_"):
        i += 1
    if i == start:
        raise DocumentError(f"expected name at {start} in JSONPath {text!r}")
    return text[start:i], i


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


def _apply(step: _Step, node: JsonValue) -> Iterable[JsonValue]:
    if step.kind == "member":
        if isinstance(node, dict) and step.arg in node:
            yield node[step.arg]
    elif step.kind == "index":
        if isinstance(node, list):
            idx = step.arg
            if -len(node) <= idx < len(node):
                yield node[idx]
    elif step.kind == "wild_member":
        if isinstance(node, dict):
            yield from node.values()
    elif step.kind == "wild_index":
        if isinstance(node, list):
            yield from node
    elif step.kind == "descend":
        yield from _descend(step.arg, node)
    else:  # pragma: no cover - parser only emits the kinds above
        raise AssertionError(f"unknown step {step.kind}")


def _descend(name: str, node: JsonValue) -> Iterable[JsonValue]:
    """Document-order recursive descent collecting members called *name*."""
    if isinstance(node, dict):
        for key, value in node.items():
            if name == "*" or key == name:
                yield value
            yield from _descend(name, value)
    elif isinstance(node, list):
        for item in node:
            yield from _descend(name, item)
