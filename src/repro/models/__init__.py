"""The five data-model substrates of the UDBMS benchmark (Figure 1).

Each subpackage is a pure value layer — no transactions, no durability —
that the multi-model engine (:mod:`repro.engine`) stores behind a single
transactional backend:

- :mod:`repro.models.relational` — typed tables, rows, predicates
- :mod:`repro.models.document`   — JSON values and a JSONPath subset
- :mod:`repro.models.xml`        — XML trees, parser, XPath subset
- :mod:`repro.models.graph`      — property graphs and traversals
- :mod:`repro.models.kv`         — ordered key-value namespaces
"""
