"""XML tree nodes.

Two node kinds are enough for the benchmark's invoices: elements (with
attributes and ordered children) and text.  Comments and processing
instructions are skipped by the parser.
"""

from __future__ import annotations

from typing import Iterator, Union

from repro.errors import XmlError

XmlNode = Union["XmlElement", "XmlText"]


class XmlText:
    """A text node."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        if not isinstance(value, str):
            raise XmlError(f"text node requires str, got {type(value).__name__}")
        self.value = value

    def __repr__(self) -> str:
        return f"XmlText({self.value!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, XmlText) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("XmlText", self.value))


class XmlElement:
    """An element with a tag, attributes, and ordered children.

    >>> inv = element("invoice", {"id": "I1"}, element("total", {}, text("9.50")))
    >>> inv.child("total").text_content()
    '9.50'
    """

    __slots__ = ("tag", "attributes", "children")

    def __init__(
        self,
        tag: str,
        attributes: dict[str, str] | None = None,
        children: list[XmlNode] | None = None,
    ) -> None:
        if not tag or not _valid_name(tag):
            raise XmlError(f"invalid element tag {tag!r}")
        self.tag = tag
        self.attributes = dict(attributes or {})
        for key, value in self.attributes.items():
            if not _valid_name(key):
                raise XmlError(f"invalid attribute name {key!r}")
            if not isinstance(value, str):
                raise XmlError(f"attribute {key!r} must be str")
        self.children = list(children or [])

    # -- construction -------------------------------------------------------

    def append(self, node: XmlNode) -> XmlNode:
        """Append a child and return it (for chaining)."""
        if not isinstance(node, (XmlElement, XmlText)):
            raise XmlError(f"cannot append {type(node).__name__}")
        self.children.append(node)
        return node

    def set(self, name: str, value: str) -> None:
        if not _valid_name(name):
            raise XmlError(f"invalid attribute name {name!r}")
        self.attributes[name] = str(value)

    def get(self, name: str, default: str | None = None) -> str | None:
        return self.attributes.get(name, default)

    # -- navigation -----------------------------------------------------------

    def element_children(self) -> list["XmlElement"]:
        """Child elements (text nodes skipped), in document order."""
        return [c for c in self.children if isinstance(c, XmlElement)]

    def child(self, tag: str) -> "XmlElement":
        """First child element with *tag*; raises if absent."""
        for c in self.children:
            if isinstance(c, XmlElement) and c.tag == tag:
                return c
        raise XmlError(f"element <{self.tag}> has no <{tag}> child")

    def find(self, tag: str) -> "XmlElement | None":
        """First child element with *tag*, or None."""
        for c in self.children:
            if isinstance(c, XmlElement) and c.tag == tag:
                return c
        return None

    def find_all(self, tag: str) -> list["XmlElement"]:
        """All child elements with *tag*."""
        return [c for c in self.children if isinstance(c, XmlElement) and c.tag == tag]

    def iter(self) -> Iterator["XmlElement"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for c in self.children:
            if isinstance(c, XmlElement):
                yield from c.iter()

    def text_content(self) -> str:
        """Concatenated text of all descendant text nodes."""
        parts: list[str] = []
        for c in self.children:
            if isinstance(c, XmlText):
                parts.append(c.value)
            else:
                parts.append(c.text_content())
        return "".join(parts)

    # -- equality --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, XmlElement)
            and self.tag == other.tag
            and self.attributes == other.attributes
            and self.children == other.children
        )

    def __hash__(self) -> int:
        return hash((self.tag, tuple(sorted(self.attributes.items()))))

    def __repr__(self) -> str:
        return (
            f"XmlElement({self.tag!r}, attrs={len(self.attributes)}, "
            f"children={len(self.children)})"
        )


def element(
    tag: str, attributes: dict[str, str] | None = None, *children: XmlNode
) -> XmlElement:
    """Convenience constructor: ``element("a", {"x": "1"}, text("hi"))``."""
    return XmlElement(tag, attributes, list(children))


def text(value: str) -> XmlText:
    """Convenience constructor for a text node."""
    return XmlText(value)


def _valid_name(name: str) -> bool:
    """XML-name check (ASCII subset: letters, digits, '_', '-', '.', ':')."""
    if not name or name[0].isdigit():
        return False
    return all(ch.isalnum() or ch in "_-.:" for ch in name)
