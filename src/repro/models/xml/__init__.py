"""XML data model: element trees, parser, serializer, XPath subset."""

from repro.models.xml.node import XmlElement, XmlText, element, text
from repro.models.xml.parser import parse_xml
from repro.models.xml.serializer import serialize_xml
from repro.models.xml.xpath import XPath, xpath

__all__ = [
    "XPath",
    "XmlElement",
    "XmlText",
    "element",
    "parse_xml",
    "serialize_xml",
    "text",
    "xpath",
]
