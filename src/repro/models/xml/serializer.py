"""XML serialisation: trees back to text, with optional pretty-printing.

``parse_xml(serialize_xml(tree)) == tree`` holds for every tree whose text
nodes survive whitespace stripping — the property tests in
``tests/models/test_xml_roundtrip.py`` pin this down.
"""

from __future__ import annotations

from repro.models.xml.node import XmlElement, XmlNode, XmlText


def escape_text(value: str) -> str:
    """Escape character data."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape an attribute value for double-quoted serialisation."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def serialize_xml(
    node: XmlNode, pretty: bool = False, declaration: bool = False
) -> str:
    """Serialise a tree to text.

    With ``pretty=True``, elements containing only element children are
    indented; mixed content is emitted inline to preserve text exactly.
    """
    parts: list[str] = []
    if declaration:
        parts.append('<?xml version="1.0" encoding="UTF-8"?>')
        if not pretty:
            parts.append("\n")
    _serialize(node, parts, pretty, 0)
    if pretty:
        return "\n".join(parts)
    return "".join(parts)


def _serialize(node: XmlNode, parts: list[str], pretty: bool, depth: int) -> None:
    if isinstance(node, XmlText):
        if pretty:
            parts.append("  " * depth + escape_text(node.value))
        else:
            parts.append(escape_text(node.value))
        return
    _serialize_element(node, parts, pretty, depth)


def _serialize_element(
    elem: XmlElement, parts: list[str], pretty: bool, depth: int
) -> None:
    attrs = "".join(
        f' {name}="{escape_attribute(value)}"'
        for name, value in elem.attributes.items()
    )
    indent = "  " * depth if pretty else ""
    if not elem.children:
        parts.append(f"{indent}<{elem.tag}{attrs}/>")
        return
    only_text = all(isinstance(c, XmlText) for c in elem.children)
    if only_text or not pretty:
        inner: list[str] = []
        for child in elem.children:
            _serialize(child, inner, False, 0)
        parts.append(f"{indent}<{elem.tag}{attrs}>{''.join(inner)}</{elem.tag}>")
        return
    # Pretty block form: children each on their own line.
    parts.append(f"{indent}<{elem.tag}{attrs}>")
    for child in elem.children:
        _serialize(child, parts, True, depth + 1)
    parts.append(f"{indent}</{elem.tag}>")
