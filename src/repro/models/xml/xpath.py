"""An XPath subset for the benchmark's invoice queries.

Supported grammar (documented subset, see DESIGN.md non-goals)::

    path      := ('/' step)+ | ('//' step) path?
    step      := NAME predicate?                element child axis
               | '*' predicate?                 any element
               | '@' NAME                       attribute (terminal)
               | 'text()'                       text content (terminal)
    predicate := '[' INT ']'                    positional (1-based)
               | '[@' NAME '=' STRING ']'       attribute equality
               | '[' NAME '=' STRING ']'        child text equality

``//step`` selects descendants-or-self before matching, as in XPath.
Evaluation returns a list of :class:`XmlElement` or strings (for ``@attr``
and ``text()``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import XPathError
from repro.models.xml.node import XmlElement

XPathResult = Union[XmlElement, str]


@dataclass(frozen=True)
class _Pred:
    kind: str  # "position" | "attr_eq" | "child_eq"
    name: str = ""
    value: str = ""
    position: int = 0


@dataclass(frozen=True)
class _XStep:
    axis: str  # "child" | "descendant"
    kind: str  # "element" | "any" | "attribute" | "text"
    name: str = ""
    predicate: _Pred | None = None


class XPath:
    """A parsed, reusable XPath expression.

    >>> from repro.models.xml import parse_xml
    >>> doc = parse_xml('<inv><line n="1"><amt>5</amt></line></inv>')
    >>> XPath('/inv/line/@n').find(doc)
    ['1']
    >>> XPath('//amt/text()').find(doc)
    ['5']
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self._steps = _parse(text)

    def find(self, root: XmlElement) -> list[XPathResult]:
        """Evaluate against *root*; the leading '/' selects root itself."""
        current: list[XPathResult] = [root]
        for i, step in enumerate(self._steps):
            nxt: list[XPathResult] = []
            for node in current:
                if not isinstance(node, XmlElement):
                    raise XPathError(
                        f"step {i} of {self.text!r} applied to a non-element"
                    )
                nxt.extend(_apply(step, node, is_first=(i == 0)))
            current = nxt
        return current

    def first(self, root: XmlElement, default: XPathResult | None = None):
        matches = self.find(root)
        return matches[0] if matches else default

    def __repr__(self) -> str:
        return f"XPath({self.text!r})"


def xpath(text: str, root: XmlElement) -> list[XPathResult]:
    """One-shot evaluation."""
    return XPath(text).find(root)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def _parse(text: str) -> list[_XStep]:
    if not text.startswith("/"):
        raise XPathError(f"XPath must start with '/': {text!r}")
    steps: list[_XStep] = []
    i = 0
    n = len(text)
    while i < n:
        if text.startswith("//", i):
            axis = "descendant"
            i += 2
        elif text[i] == "/":
            axis = "child"
            i += 1
        else:
            raise XPathError(f"expected '/' at {i} in {text!r}")
        if i >= n:
            raise XPathError(f"dangling '/' in {text!r}")
        if text[i] == "@":
            i += 1
            name, i = _read_name(text, i)
            steps.append(_XStep(axis, "attribute", name))
            continue
        if text.startswith("text()", i):
            steps.append(_XStep(axis, "text"))
            i += 6
            continue
        if text[i] == "*":
            kind, name = "any", ""
            i += 1
        else:
            name, i = _read_name(text, i)
            kind = "element"
        predicate = None
        if i < n and text[i] == "[":
            predicate, i = _read_predicate(text, i)
        steps.append(_XStep(axis, kind, name, predicate))
    # attribute / text() steps must be terminal
    for step in steps[:-1]:
        if step.kind in ("attribute", "text"):
            raise XPathError(f"@attr/text() must be the last step in {text!r}")
    return steps


def _read_name(text: str, i: int) -> tuple[str, int]:
    start = i
    while i < len(text) and (text[i].isalnum() or text[i] in "_-.:"):
        i += 1
    if i == start:
        raise XPathError(f"expected a name at {start} in {text!r}")
    return text[start:i], i


def _read_predicate(text: str, i: int) -> tuple[_Pred, int]:
    close = text.find("]", i)
    if close == -1:
        raise XPathError(f"unclosed '[' in {text!r}")
    inner = text[i + 1 : close].strip()
    i = close + 1
    if inner.isdigit():
        pos = int(inner)
        if pos < 1:
            raise XPathError("positional predicates are 1-based")
        return _Pred("position", position=pos), i
    if "=" in inner:
        lhs, _, rhs = inner.partition("=")
        lhs = lhs.strip()
        rhs = rhs.strip()
        if not (rhs.startswith(("'", '"')) and rhs.endswith(rhs[0]) and len(rhs) >= 2):
            raise XPathError(f"predicate value must be quoted in {text!r}")
        value = rhs[1:-1]
        if lhs.startswith("@"):
            return _Pred("attr_eq", name=lhs[1:], value=value), i
        return _Pred("child_eq", name=lhs, value=value), i
    raise XPathError(f"unsupported predicate [{inner}] in {text!r}")


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


def _candidates(step: _XStep, node: XmlElement, is_first: bool) -> list[XmlElement]:
    """The elements a step filters, given its axis."""
    if step.axis == "descendant":
        return list(node.iter())
    if is_first:
        # Leading '/name' addresses the root element itself.
        return [node]
    return node.element_children()


def _apply(step: _XStep, node: XmlElement, is_first: bool) -> list[XPathResult]:
    if step.kind == "attribute":
        # '@name' reads the *context* node's attribute; '//@name' reads it
        # from every descendant-or-self element.
        elems = list(node.iter()) if step.axis == "descendant" else [node]
        return [e.get(step.name) for e in elems if e.get(step.name) is not None]
    if step.kind == "text":
        elems = list(node.iter()) if step.axis == "descendant" else [node]
        return [e.text_content() for e in elems]
    matched = [
        elem
        for elem in _candidates(step, node, is_first)
        if step.kind == "any" or elem.tag == step.name
    ]
    if step.predicate is not None:
        matched = _filter(step.predicate, matched)
    return list(matched)


def _filter(pred: _Pred, elems: list[XmlElement]) -> list[XmlElement]:
    if pred.kind == "position":
        idx = pred.position - 1
        return [elems[idx]] if idx < len(elems) else []
    if pred.kind == "attr_eq":
        return [e for e in elems if e.get(pred.name) == pred.value]
    if pred.kind == "child_eq":
        out = []
        for e in elems:
            child = e.find(pred.name)
            if child is not None and child.text_content() == pred.value:
                out.append(e)
        return out
    raise AssertionError(f"unknown predicate kind {pred.kind}")
