"""A small, strict, from-scratch XML parser.

Handles the XML subset the benchmark emits: elements, attributes
(single- or double-quoted), text, self-closing tags, comments, CDATA,
an optional XML declaration, and the five predefined entities.  It does
not handle DTDs, namespaces-as-scoping, or processing instructions
beyond skipping the declaration.
"""

from __future__ import annotations

from repro.errors import XmlError
from repro.models.xml.node import XmlElement, XmlText

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}


def parse_xml(source: str) -> XmlElement:
    """Parse *source* and return the root element.

    >>> parse_xml('<a x="1"><b>hi</b></a>').child("b").text_content()
    'hi'
    """
    parser = _Parser(source)
    return parser.parse()


class _Parser:
    def __init__(self, source: str) -> None:
        self.src = source
        self.pos = 0
        self.n = len(source)

    # -- entry ---------------------------------------------------------------

    def parse(self) -> XmlElement:
        self._skip_prolog()
        root = self._parse_element()
        self._skip_misc()
        if self.pos != self.n:
            raise self._error("content after document element")
        return root

    # -- prolog / misc ---------------------------------------------------------

    def _skip_prolog(self) -> None:
        self._skip_whitespace()
        if self.src.startswith("<?xml", self.pos):
            end = self.src.find("?>", self.pos)
            if end == -1:
                raise self._error("unterminated XML declaration")
            self.pos = end + 2
        self._skip_misc()

    def _skip_misc(self) -> None:
        while True:
            self._skip_whitespace()
            if self.src.startswith("<!--", self.pos):
                end = self.src.find("-->", self.pos + 4)
                if end == -1:
                    raise self._error("unterminated comment")
                self.pos = end + 3
            elif self.src.startswith("<!DOCTYPE", self.pos):
                end = self.src.find(">", self.pos)
                if end == -1:
                    raise self._error("unterminated DOCTYPE")
                self.pos = end + 1
            else:
                return

    def _skip_whitespace(self) -> None:
        while self.pos < self.n and self.src[self.pos].isspace():
            self.pos += 1

    # -- elements ----------------------------------------------------------------

    def _parse_element(self) -> XmlElement:
        if self.pos >= self.n or self.src[self.pos] != "<":
            raise self._error("expected '<'")
        self.pos += 1
        tag = self._read_name()
        attributes = self._parse_attributes()
        self._skip_whitespace()
        if self.src.startswith("/>", self.pos):
            self.pos += 2
            return XmlElement(tag, attributes)
        if self.pos >= self.n or self.src[self.pos] != ">":
            raise self._error(f"malformed start tag <{tag}>")
        self.pos += 1
        elem = XmlElement(tag, attributes)
        self._parse_content(elem)
        return elem

    def _parse_attributes(self) -> dict[str, str]:
        attributes: dict[str, str] = {}
        while True:
            self._skip_whitespace()
            if self.pos >= self.n:
                raise self._error("unterminated start tag")
            ch = self.src[self.pos]
            if ch in (">", "/"):
                return attributes
            name = self._read_name()
            self._skip_whitespace()
            if self.pos >= self.n or self.src[self.pos] != "=":
                raise self._error(f"attribute {name!r} missing '='")
            self.pos += 1
            self._skip_whitespace()
            if self.pos >= self.n or self.src[self.pos] not in "'\"":
                raise self._error(f"attribute {name!r} value must be quoted")
            quote = self.src[self.pos]
            self.pos += 1
            end = self.src.find(quote, self.pos)
            if end == -1:
                raise self._error(f"unterminated value for attribute {name!r}")
            raw = self.src[self.pos : end]
            self.pos = end + 1
            if name in attributes:
                raise self._error(f"duplicate attribute {name!r}")
            attributes[name] = _decode_entities(raw, self)

    def _parse_content(self, parent: XmlElement) -> None:
        buffer: list[str] = []

        def flush() -> None:
            if buffer:
                merged = "".join(buffer)
                if merged.strip():
                    parent.append(XmlText(_decode_entities(merged, self)))
                buffer.clear()

        while True:
            if self.pos >= self.n:
                raise self._error(f"unterminated element <{parent.tag}>")
            ch = self.src[self.pos]
            if ch == "<":
                if self.src.startswith("</", self.pos):
                    flush()
                    self.pos += 2
                    closing = self._read_name()
                    self._skip_whitespace()
                    if self.pos >= self.n or self.src[self.pos] != ">":
                        raise self._error(f"malformed end tag </{closing}>")
                    self.pos += 1
                    if closing != parent.tag:
                        raise self._error(
                            f"mismatched end tag </{closing}> for <{parent.tag}>"
                        )
                    return
                if self.src.startswith("<!--", self.pos):
                    flush()
                    end = self.src.find("-->", self.pos + 4)
                    if end == -1:
                        raise self._error("unterminated comment")
                    self.pos = end + 3
                elif self.src.startswith("<![CDATA[", self.pos):
                    end = self.src.find("]]>", self.pos + 9)
                    if end == -1:
                        raise self._error("unterminated CDATA")
                    cdata = self.src[self.pos + 9 : end]
                    if cdata:
                        # CDATA is literal text; bypass entity decoding.
                        flushed = "".join(buffer)
                        buffer.clear()
                        if flushed.strip():
                            parent.append(XmlText(_decode_entities(flushed, self)))
                        parent.append(XmlText(cdata))
                    self.pos = end + 3
                else:
                    flush()
                    parent.append(self._parse_element())
            else:
                buffer.append(ch)
                self.pos += 1

    # -- lexical helpers -----------------------------------------------------------

    def _read_name(self) -> str:
        start = self.pos
        while self.pos < self.n and (
            self.src[self.pos].isalnum() or self.src[self.pos] in "_-.:"
        ):
            self.pos += 1
        if self.pos == start:
            raise self._error("expected a name")
        name = self.src[start : self.pos]
        if name[0].isdigit():
            raise self._error(f"name {name!r} cannot start with a digit")
        return name

    def _error(self, message: str) -> XmlError:
        line = self.src.count("\n", 0, self.pos) + 1
        col = self.pos - (self.src.rfind("\n", 0, self.pos) + 1) + 1
        return XmlError(f"{message} at line {line}, column {col}")


def _decode_entities(raw: str, parser: _Parser) -> str:
    """Replace &lt; &gt; &amp; &apos; &quot; and numeric references."""
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    n = len(raw)
    while i < n:
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end == -1:
            raise parser._error("unterminated entity reference")
        entity = raw[i + 1 : end]
        if entity.startswith("#x") or entity.startswith("#X"):
            out.append(chr(int(entity[2:], 16)))
        elif entity.startswith("#"):
            out.append(chr(int(entity[1:])))
        elif entity in _ENTITIES:
            out.append(_ENTITIES[entity])
        else:
            raise parser._error(f"unknown entity &{entity};")
        i = end + 1
    return "".join(out)
