"""A directed, labelled property graph.

Vertices and edges both carry a label and a property dict, as in the
property-graph model used by multi-model systems.  Adjacency is indexed
both ways so traversals in either direction are O(degree).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import GraphError

VertexId = Any  # hashable
Properties = dict[str, Any]


@dataclass
class Vertex:
    """A labelled vertex with properties."""

    id: VertexId
    label: str
    properties: Properties = field(default_factory=dict)

    def copy(self) -> "Vertex":
        return Vertex(self.id, self.label, dict(self.properties))


@dataclass
class Edge:
    """A directed, labelled edge with properties."""

    id: int
    src: VertexId
    dst: VertexId
    label: str
    properties: Properties = field(default_factory=dict)

    def copy(self) -> "Edge":
        return Edge(self.id, self.src, self.dst, self.label, dict(self.properties))


class PropertyGraph:
    """A directed multigraph of labelled vertices and edges.

    >>> g = PropertyGraph("social")
    >>> _ = g.add_vertex(1, "person", name="Ada")
    >>> _ = g.add_vertex(2, "person", name="Bob")
    >>> _ = g.add_edge(1, 2, "knows", since=2015)
    >>> [v.properties["name"] for v in g.out_neighbors(1)]
    ['Bob']
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._vertices: dict[VertexId, Vertex] = {}
        self._edges: dict[int, Edge] = {}
        self._out: dict[VertexId, list[int]] = {}
        self._in: dict[VertexId, list[int]] = {}
        self._next_edge_id = 1

    # -- size -------------------------------------------------------------

    def vertex_count(self) -> int:
        return len(self._vertices)

    def edge_count(self) -> int:
        return len(self._edges)

    # -- vertices ------------------------------------------------------------

    def add_vertex(self, vertex_id: VertexId, label: str, **properties: Any) -> Vertex:
        if vertex_id in self._vertices:
            raise GraphError(f"vertex {vertex_id!r} already exists in {self.name!r}")
        vertex = Vertex(vertex_id, label, dict(properties))
        self._vertices[vertex_id] = vertex
        self._out[vertex_id] = []
        self._in[vertex_id] = []
        return vertex.copy()

    def has_vertex(self, vertex_id: VertexId) -> bool:
        return vertex_id in self._vertices

    def vertex(self, vertex_id: VertexId) -> Vertex:
        v = self._vertices.get(vertex_id)
        if v is None:
            raise GraphError(f"no vertex {vertex_id!r} in graph {self.name!r}")
        return v.copy()

    def update_vertex(self, vertex_id: VertexId, **changes: Any) -> Vertex:
        v = self._vertices.get(vertex_id)
        if v is None:
            raise GraphError(f"no vertex {vertex_id!r} in graph {self.name!r}")
        v.properties.update(changes)
        return v.copy()

    def remove_vertex(self, vertex_id: VertexId) -> None:
        """Remove a vertex and every incident edge."""
        if vertex_id not in self._vertices:
            raise GraphError(f"no vertex {vertex_id!r} in graph {self.name!r}")
        for edge_id in list(self._out[vertex_id]) + list(self._in[vertex_id]):
            if edge_id in self._edges:
                self.remove_edge(edge_id)
        del self._vertices[vertex_id]
        del self._out[vertex_id]
        del self._in[vertex_id]

    def vertices(self, label: str | None = None) -> Iterator[Vertex]:
        for v in list(self._vertices.values()):
            if label is None or v.label == label:
                yield v.copy()

    # -- edges -------------------------------------------------------------------

    def add_edge(
        self, src: VertexId, dst: VertexId, label: str, **properties: Any
    ) -> Edge:
        if src not in self._vertices:
            raise GraphError(f"edge source {src!r} does not exist")
        if dst not in self._vertices:
            raise GraphError(f"edge target {dst!r} does not exist")
        edge = Edge(self._next_edge_id, src, dst, label, dict(properties))
        self._next_edge_id += 1
        self._edges[edge.id] = edge
        self._out[src].append(edge.id)
        self._in[dst].append(edge.id)
        return edge.copy()

    def edge(self, edge_id: int) -> Edge:
        e = self._edges.get(edge_id)
        if e is None:
            raise GraphError(f"no edge {edge_id!r} in graph {self.name!r}")
        return e.copy()

    def remove_edge(self, edge_id: int) -> None:
        e = self._edges.pop(edge_id, None)
        if e is None:
            raise GraphError(f"no edge {edge_id!r} in graph {self.name!r}")
        self._out[e.src].remove(edge_id)
        self._in[e.dst].remove(edge_id)

    def edges(self, label: str | None = None) -> Iterator[Edge]:
        for e in list(self._edges.values()):
            if label is None or e.label == label:
                yield e.copy()

    def edges_between(self, src: VertexId, dst: VertexId) -> list[Edge]:
        if src not in self._out:
            return []
        return [
            self._edges[eid].copy()
            for eid in self._out[src]
            if self._edges[eid].dst == dst
        ]

    # -- adjacency ----------------------------------------------------------------

    def out_edges(self, vertex_id: VertexId, label: str | None = None) -> list[Edge]:
        if vertex_id not in self._vertices:
            raise GraphError(f"no vertex {vertex_id!r} in graph {self.name!r}")
        return [
            self._edges[eid].copy()
            for eid in self._out[vertex_id]
            if label is None or self._edges[eid].label == label
        ]

    def in_edges(self, vertex_id: VertexId, label: str | None = None) -> list[Edge]:
        if vertex_id not in self._vertices:
            raise GraphError(f"no vertex {vertex_id!r} in graph {self.name!r}")
        return [
            self._edges[eid].copy()
            for eid in self._in[vertex_id]
            if label is None or self._edges[eid].label == label
        ]

    def out_neighbors(
        self, vertex_id: VertexId, label: str | None = None
    ) -> list[Vertex]:
        return [self.vertex(e.dst) for e in self.out_edges(vertex_id, label)]

    def in_neighbors(
        self, vertex_id: VertexId, label: str | None = None
    ) -> list[Vertex]:
        return [self.vertex(e.src) for e in self.in_edges(vertex_id, label)]

    def degree(self, vertex_id: VertexId) -> int:
        """Total degree (in + out)."""
        if vertex_id not in self._vertices:
            raise GraphError(f"no vertex {vertex_id!r} in graph {self.name!r}")
        return len(self._out[vertex_id]) + len(self._in[vertex_id])

    # -- bulk ------------------------------------------------------------------------

    def subgraph(self, vertex_ids: set[VertexId]) -> "PropertyGraph":
        """The induced subgraph on *vertex_ids*."""
        sub = PropertyGraph(f"{self.name}_sub")
        for vid in vertex_ids:
            v = self.vertex(vid)
            sub.add_vertex(v.id, v.label, **v.properties)
        for e in self._edges.values():
            if e.src in vertex_ids and e.dst in vertex_ids:
                sub.add_edge(e.src, e.dst, e.label, **e.properties)
        return sub

    def copy(self) -> "PropertyGraph":
        clone = PropertyGraph(self.name)
        for v in self._vertices.values():
            clone.add_vertex(v.id, v.label, **v.properties)
        for e in self._edges.values():
            clone.add_edge(e.src, e.dst, e.label, **e.properties)
        return clone
