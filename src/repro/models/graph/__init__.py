"""Property-graph data model: vertices, edges, traversals, algorithms."""

from repro.models.graph.property_graph import Edge, PropertyGraph, Vertex
from repro.models.graph.traversal import (
    bfs_layers,
    neighbors_within,
    shortest_path,
    weighted_shortest_path,
)
from repro.models.graph.algorithms import connected_components, pagerank, triangle_count

__all__ = [
    "Edge",
    "PropertyGraph",
    "Vertex",
    "bfs_layers",
    "connected_components",
    "neighbors_within",
    "pagerank",
    "shortest_path",
    "triangle_count",
    "weighted_shortest_path",
]
