"""Graph traversals: BFS, bounded neighbourhoods, shortest paths.

These are the primitives behind MMQL's ``TRAVERSE`` clause and the
benchmark's social-network queries ("friends of friends who bought X").
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable

from repro.errors import GraphError
from repro.models.graph.property_graph import Edge, PropertyGraph, VertexId


def bfs_layers(
    graph: PropertyGraph,
    start: VertexId,
    max_depth: int,
    edge_label: str | None = None,
    direction: str = "out",
) -> list[list[VertexId]]:
    """Breadth-first layers from *start* up to *max_depth* hops.

    ``layers[0] == [start]``; ``layers[d]`` holds vertices first reached
    at exactly depth *d*.  ``direction`` is ``out``, ``in`` or ``both``.
    """
    if not graph.has_vertex(start):
        raise GraphError(f"no vertex {start!r}")
    if direction not in ("out", "in", "both"):
        raise GraphError(f"bad direction {direction!r}")
    seen = {start}
    layers = [[start]]
    frontier = [start]
    for _ in range(max_depth):
        nxt: list[VertexId] = []
        for vid in frontier:
            for neighbor in _step(graph, vid, edge_label, direction):
                if neighbor not in seen:
                    seen.add(neighbor)
                    nxt.append(neighbor)
        if not nxt:
            break
        layers.append(nxt)
        frontier = nxt
    return layers


def bfs_depth_range(
    start: Any,
    min_depth: int,
    max_depth: int,
    out_edges: Callable[[Any], Any],
) -> list[Any]:
    """Vertex ids whose BFS depth from *start* is in [min_depth, max_depth],
    fetching adjacency through an *out_edges(vertex_id) -> iterable[Edge]*
    callback rather than a PropertyGraph.

    This is the storage-agnostic core of MMQL's TRAVERSE: the engine
    session feeds it transactional adjacency, the cluster layer feeds it
    routed per-shard lookups — one BFS, several adjacency sources.
    """
    if min_depth < 0 or max_depth < min_depth:
        raise GraphError(f"bad depth range {min_depth}..{max_depth}")
    seen = {start}
    frontier = [start]
    result: list[Any] = [start] if min_depth == 0 else []
    for depth in range(1, max_depth + 1):
        nxt: list[Any] = []
        for vid in frontier:
            for edge in out_edges(vid):
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    nxt.append(edge.dst)
        if not nxt:
            break
        if depth >= min_depth:
            result.extend(nxt)
        frontier = nxt
    return result


def neighbors_within(
    graph: PropertyGraph,
    start: VertexId,
    min_depth: int,
    max_depth: int,
    edge_label: str | None = None,
    direction: str = "out",
) -> list[VertexId]:
    """Vertices whose BFS depth from *start* is in [min_depth, max_depth].

    This is MMQL's ``TRAVERSE v IN min..max label FROM start`` semantics.
    """
    if min_depth < 0 or max_depth < min_depth:
        raise GraphError(f"bad depth range {min_depth}..{max_depth}")
    layers = bfs_layers(graph, start, max_depth, edge_label, direction)
    out: list[VertexId] = []
    for depth in range(min_depth, min(max_depth, len(layers) - 1) + 1):
        out.extend(layers[depth])
    return out


def shortest_path(
    graph: PropertyGraph,
    start: VertexId,
    goal: VertexId,
    edge_label: str | None = None,
    direction: str = "out",
) -> list[VertexId] | None:
    """Unweighted shortest path as a vertex list, or None if unreachable."""
    if not graph.has_vertex(start):
        raise GraphError(f"no vertex {start!r}")
    if not graph.has_vertex(goal):
        raise GraphError(f"no vertex {goal!r}")
    if start == goal:
        return [start]
    parents: dict[VertexId, VertexId] = {start: start}
    queue: deque[VertexId] = deque([start])
    while queue:
        vid = queue.popleft()
        for neighbor in _step(graph, vid, edge_label, direction):
            if neighbor in parents:
                continue
            parents[neighbor] = vid
            if neighbor == goal:
                return _reconstruct(parents, start, goal)
            queue.append(neighbor)
    return None


def weighted_shortest_path(
    graph: PropertyGraph,
    start: VertexId,
    goal: VertexId,
    weight: Callable[[Edge], float],
    edge_label: str | None = None,
) -> tuple[list[VertexId], float] | None:
    """Dijkstra over out-edges; returns (path, cost) or None.

    *weight* maps an edge to a non-negative cost (e.g. shipping time on a
    'supplies' edge).
    """
    if not graph.has_vertex(start) or not graph.has_vertex(goal):
        raise GraphError("both endpoints must exist")
    dist: dict[VertexId, float] = {start: 0.0}
    parents: dict[VertexId, VertexId] = {start: start}
    heap: list[tuple[float, int, VertexId]] = [(0.0, 0, start)]
    counter = 1  # tie-breaker so heterogeneous vertex ids never compare
    settled: set[VertexId] = set()
    while heap:
        d, _, vid = heapq.heappop(heap)
        if vid in settled:
            continue
        settled.add(vid)
        if vid == goal:
            return _reconstruct(parents, start, goal), d
        for edge in graph.out_edges(vid, edge_label):
            w = weight(edge)
            if w < 0:
                raise GraphError(f"negative edge weight on edge {edge.id}")
            nd = d + w
            if nd < dist.get(edge.dst, float("inf")):
                dist[edge.dst] = nd
                parents[edge.dst] = vid
                heapq.heappush(heap, (nd, counter, edge.dst))
                counter += 1
    return None


def _step(
    graph: PropertyGraph, vid: VertexId, edge_label: str | None, direction: str
) -> list[VertexId]:
    out: list[VertexId] = []
    if direction in ("out", "both"):
        out.extend(e.dst for e in graph.out_edges(vid, edge_label))
    if direction in ("in", "both"):
        out.extend(e.src for e in graph.in_edges(vid, edge_label))
    return out


def _reconstruct(
    parents: dict[VertexId, VertexId], start: VertexId, goal: VertexId
) -> list[VertexId]:
    path = [goal]
    while path[-1] != start:
        path.append(parents[path[-1]])
    path.reverse()
    return path


def paths_up_to(
    graph: PropertyGraph,
    start: VertexId,
    max_depth: int,
    edge_label: str | None = None,
) -> list[list[Any]]:
    """All simple out-paths from *start* of length 1..max_depth.

    Used by the graph pattern queries; bounded by depth so the expansion
    stays polynomial on the benchmark's sparse social graphs.
    """
    if not graph.has_vertex(start):
        raise GraphError(f"no vertex {start!r}")
    results: list[list[Any]] = []
    stack: list[list[Any]] = [[start]]
    while stack:
        path = stack.pop()
        if len(path) - 1 >= max_depth:
            continue
        for edge in graph.out_edges(path[-1], edge_label):
            if edge.dst in path:
                continue  # simple paths only
            extended = path + [edge.dst]
            results.append(extended)
            stack.append(extended)
    return results
