"""Whole-graph algorithms used by the analytic benchmark queries.

PageRank ranks influencers in the social graph (query Q9); connected
components and triangle count are dataset sanity statistics reported in
the Figure 1 reproduction.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.models.graph.property_graph import PropertyGraph, VertexId


def pagerank(
    graph: PropertyGraph,
    damping: float = 0.85,
    iterations: int = 30,
    tolerance: float = 1e-9,
    edge_label: str | None = None,
) -> dict[VertexId, float]:
    """Power-iteration PageRank over out-edges.

    Dangling mass is redistributed uniformly, so ranks always sum to 1.
    """
    if not 0.0 < damping < 1.0:
        raise GraphError("damping must be in (0, 1)")
    vertices = [v.id for v in graph.vertices()]
    n = len(vertices)
    if n == 0:
        return {}
    rank = {vid: 1.0 / n for vid in vertices}
    out_lists = {
        vid: [e.dst for e in graph.out_edges(vid, edge_label)] for vid in vertices
    }
    base = (1.0 - damping) / n
    for _ in range(iterations):
        nxt = {vid: 0.0 for vid in vertices}
        dangling = 0.0
        for vid in vertices:
            targets = out_lists[vid]
            if not targets:
                dangling += rank[vid]
                continue
            share = rank[vid] / len(targets)
            for dst in targets:
                nxt[dst] += share
        dangling_share = damping * dangling / n
        delta = 0.0
        for vid in vertices:
            new = base + damping * nxt[vid] + dangling_share
            delta += abs(new - rank[vid])
            rank[vid] = new
        if delta < tolerance:
            break
    return rank


def connected_components(graph: PropertyGraph) -> list[set[VertexId]]:
    """Weakly connected components, largest first."""
    seen: set[VertexId] = set()
    components: list[set[VertexId]] = []
    for v in graph.vertices():
        if v.id in seen:
            continue
        component: set[VertexId] = set()
        stack = [v.id]
        while stack:
            vid = stack.pop()
            if vid in component:
                continue
            component.add(vid)
            for e in graph.out_edges(vid):
                if e.dst not in component:
                    stack.append(e.dst)
            for e in graph.in_edges(vid):
                if e.src not in component:
                    stack.append(e.src)
        seen |= component
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def triangle_count(graph: PropertyGraph, edge_label: str | None = None) -> int:
    """Number of undirected triangles (each counted once).

    Edges are treated as undirected; parallel edges and self-loops are
    ignored.  Uses the standard ordered-neighbour intersection.
    """
    neighbors: dict[VertexId, set[VertexId]] = {}
    for v in graph.vertices():
        ns: set[VertexId] = set()
        for e in graph.out_edges(v.id, edge_label):
            if e.dst != v.id:
                ns.add(e.dst)
        for e in graph.in_edges(v.id, edge_label):
            if e.src != v.id:
                ns.add(e.src)
        neighbors[v.id] = ns
    order = {vid: i for i, vid in enumerate(neighbors)}
    count = 0
    for u, ns in neighbors.items():
        higher = {w for w in ns if order[w] > order[u]}
        for w in higher:
            count += len(higher & neighbors[w] & {x for x in neighbors[w] if order[x] > order[w]})
    return count


def degree_histogram(graph: PropertyGraph) -> dict[int, int]:
    """Map total degree -> number of vertices with that degree."""
    hist: dict[int, int] = {}
    for v in graph.vertices():
        d = graph.degree(v.id)
        hist[d] = hist.get(d, 0) + 1
    return dict(sorted(hist.items()))
