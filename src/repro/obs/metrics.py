"""A thread-safe metrics registry: counters, gauges, log-scale histograms.

The registry is the pull/push seam between engine internals and the
exposition surface (:meth:`~repro.drivers.base.Driver.metrics`, the
Prometheus text rendering, the ``python -m repro metrics`` CLI):

- **Push instruments** (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) are created once via :meth:`MetricsRegistry.counter`
  / :meth:`~MetricsRegistry.gauge` / :meth:`~MetricsRegistry.histogram`
  and mutated from any thread.  Every mutation takes the instrument's own
  lock — plain ``+=`` on a Python int is three bytecodes and *does* lose
  increments under free-threaded contention, which the thread-safety
  suite asserts against.  Instruments are cheap enough for per-query and
  per-batch granularity; nothing in the engine pushes per *row*.
- **Collectors** are zero-overhead pull sources: a callable returning a
  flat ``{key: number}`` dict, registered under a section name and
  invoked only at snapshot time.  Engine layers that already keep cheap
  local counters (the WAL's ``appends``, the lock manager's waits, the
  plan cache's hit/miss tallies) register a collector instead of paying
  for registry pushes on their hot paths.

Histograms use **fixed log-scale latency buckets**
(:data:`LATENCY_BUCKETS`, a 1–2.5–5 decade ladder from 100µs to 10s in
seconds) so two snapshots — or two processes — are always mergeable and
renderable as Prometheus cumulative ``_bucket`` series.

Naming convention: instrument names are Prometheus-style
(``repro_plan_cache_hits_total``); optional labels are fixed at creation
(``registry.counter("repro_txn_2pc_outcomes_total", outcome="commit")``)
and render as ``name{outcome="commit"}``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Callable

# 1-2.5-5 log ladder, 100µs .. 10s, in seconds.  Fixed so histograms from
# different shards/processes/snapshots merge bucket-for-bucket.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

# Small-integer ladder for count-shaped histograms (e.g. shard fanout).
COUNT_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


def _render_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count; ``inc`` is atomic."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, by: int | float = 1) -> None:
        if by < 0:
            raise ValueError(f"counter {self.name} cannot decrease (by={by})")
        with self._lock:
            self._value += by

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depths, cache sizes)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value

    def inc(self, by: int | float = 1) -> None:
        with self._lock:
            self._value += by

    def dec(self, by: int | float = 1) -> None:
        with self._lock:
            self._value -= by

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution with count and sum; ``observe`` is atomic.

    Buckets are upper bounds (``le`` semantics); an observation beyond the
    last bound lands in the implicit ``+Inf`` bucket.  The snapshot emits
    *cumulative* bucket counts, Prometheus-style, so renderings never
    need the raw per-bucket tallies.
    """

    __slots__ = ("name", "labels", "buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
        labels: tuple[tuple[str, str], ...] = (),
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name} buckets must be sorted and non-empty")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: int | float) -> None:
        slot = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> dict[str, Any]:
        """``{"count", "sum", "buckets": {le: cumulative_count}}``."""
        with self._lock:
            counts = list(self._counts)
            total, summed = self._count, self._sum
        cumulative: dict[str, int] = {}
        running = 0
        for bound, n in zip(self.buckets, counts):
            running += n
            cumulative[repr(bound)] = running
        cumulative["+Inf"] = total
        return {"count": total, "sum": round(summed, 9), "buckets": cumulative}


class MetricsRegistry:
    """Thread-safe home for push instruments and pull collectors.

    ``counter``/``gauge``/``histogram`` are get-or-create: the same
    (name, labels) pair always returns the same instrument, so engine
    layers can resolve handles lazily without coordination.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}
        self._collectors: dict[str, Callable[[], dict[str, Any]]] = {}

    # -- instrument creation --------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = Counter(name, key[1])
                self._counters[key] = instrument
            return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = Gauge(name, key[1])
                self._gauges[key] = instrument
            return instrument

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = Histogram(name, buckets, key[1])
            elif instrument.buckets != tuple(float(b) for b in buckets):
                raise ValueError(f"histogram {name} re-registered with other buckets")
            self._histograms[key] = instrument
            return instrument

    def register_collector(
        self, section: str, fn: Callable[[], dict[str, Any]]
    ) -> None:
        """Register a pull source; *fn* runs only at snapshot time.

        Re-registering a section replaces the previous collector (drivers
        that rebuild their internals after crash recovery re-point the
        section at the fresh objects).
        """
        with self._lock:
            self._collectors[section] = fn

    # -- exposition -----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """One stable, sorted, JSON-ready view of every metric.

        ``{"counters": {...}, "gauges": {...}, "histograms": {...},
        "collected": {section: {...}}}`` — instrument keys are
        ``name{label="v"}`` strings so the dict stays flat and ordered.
        """
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
            collectors = dict(self._collectors)
        out: dict[str, Any] = {
            "counters": {
                c.name + _render_labels(c.labels): c.value
                for c in sorted(counters, key=lambda c: (c.name, c.labels))
            },
            "gauges": {
                g.name + _render_labels(g.labels): g.value
                for g in sorted(gauges, key=lambda g: (g.name, g.labels))
            },
            "histograms": {
                h.name + _render_labels(h.labels): h.snapshot()
                for h in sorted(histograms, key=lambda h: (h.name, h.labels))
            },
            "collected": {
                section: dict(sorted(collectors[section]().items()))
                for section in sorted(collectors)
            },
        }
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition of :meth:`snapshot`.

        Collector sections render as gauges named
        ``repro_<section>_<key>`` — their values are engine-internal
        counters, but without monotonicity guarantees from arbitrary
        callables the conservative type is gauge.
        """
        with self._lock:
            counters = sorted(self._counters.values(), key=lambda c: (c.name, c.labels))
            gauges = sorted(self._gauges.values(), key=lambda g: (g.name, g.labels))
            histograms = sorted(
                self._histograms.values(), key=lambda h: (h.name, h.labels)
            )
            collectors = dict(self._collectors)
        lines: list[str] = []
        seen_types: set[str] = set()

        def type_line(name: str, kind: str) -> None:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for c in counters:
            type_line(c.name, "counter")
            lines.append(f"{c.name}{_render_labels(c.labels)} {c.value}")
        for g in gauges:
            type_line(g.name, "gauge")
            lines.append(f"{g.name}{_render_labels(g.labels)} {g.value}")
        for h in histograms:
            type_line(h.name, "histogram")
            snap = h.snapshot()
            base = dict(h.labels)
            for le, n in snap["buckets"].items():
                labels = _render_labels(_label_key({**base, "le": le}))
                lines.append(f"{h.name}_bucket{labels} {n}")
            plain = _render_labels(h.labels)
            lines.append(f"{h.name}_sum{plain} {snap['sum']}")
            lines.append(f"{h.name}_count{plain} {snap['count']}")
        for section in sorted(collectors):
            for key, value in sorted(collectors[section]().items()):
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    continue  # non-numeric collector values are dict-only
                name = f"repro_{section}_{key}".replace(".", "_")
                type_line(name, "gauge")
                lines.append(f"{name} {value}")
        return "\n".join(lines) + "\n"
