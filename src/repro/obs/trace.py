"""Per-query tracing: a lightweight span tree threaded through execution.

A :class:`Tracer` owns one query's :class:`Span` tree::

    query [trace=17] 4.812ms query="FOR o IN orders ..."
      plan 0.102ms cached=True epoch=3
      execute 4.501ms rows=5
        ShardExec 4.320ms fanout=4 collection='orders'
          shard-0 1.034ms rows=38
          shard-1 0.988ms rows=41
          shard-2 1.101ms rows=35
          shard-3 0.954ms rows=36
          gather 0.310ms rows=150 mode=concat

The executor carries the tracer (``executor.tracer``) the same way the
``executor.observed`` channel carries EXPLAIN ANALYZE actuals — one
instrumentation channel shared by the trace API, the slow-query log and
the cluster scatter.  Operators that never see a tracer pay one
``getattr`` per *run* (not per row); when tracing is off the plan
executes on the exact pre-observability path.

Threading model: the span *stack* (``Tracer.span`` context managers) is
only touched by the query's driving thread.  Scatter workers never push
onto the stack — the scatter span is created before dispatch and each
worker fills in its own pre-created child via :meth:`Span.child` /
:meth:`Span.finish_at`, which mutate only that worker's span object
(plus a GIL-atomic ``list.append`` for attachment).
"""

from __future__ import annotations

import contextlib
from time import perf_counter
from typing import Any, Iterator


class Span:
    """One timed node in a trace tree."""

    __slots__ = ("name", "attrs", "children", "started", "elapsed_ms")

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        self.attrs: dict[str, Any] = attrs
        self.children: list[Span] = []
        self.started = perf_counter()
        self.elapsed_ms: float | None = None

    def child(self, name: str, **attrs: Any) -> "Span":
        span = Span(name, **attrs)
        self.children.append(span)
        return span

    def finish(self) -> None:
        """Close the span at *now*; idempotent (first close wins)."""
        if self.elapsed_ms is None:
            self.elapsed_ms = (perf_counter() - self.started) * 1000.0

    def finish_at(self, elapsed_s: float) -> None:
        """Close the span with an externally measured duration (workers)."""
        if self.elapsed_ms is None:
            self.elapsed_ms = elapsed_s * 1000.0

    # -- views ----------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "elapsed_ms": round(self.elapsed_ms, 4)
            if self.elapsed_ms is not None else None,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    def render(self, depth: int = 0) -> list[str]:
        elapsed = (
            f"{self.elapsed_ms:.3f}ms" if self.elapsed_ms is not None else "open"
        )
        attrs = " ".join(f"{k}={v!r}" for k, v in self.attrs.items())
        line = "  " * depth + f"{self.name} {elapsed}"
        if attrs:
            line += " " + attrs
        lines = [line]
        for child in self.children:
            lines.extend(child.render(depth + 1))
        return lines

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()


class Tracer:
    """One query's span tree plus the driving thread's span stack."""

    __slots__ = ("trace_id", "root", "_stack")

    def __init__(self, trace_id: int, name: str = "query", **attrs: Any) -> None:
        self.trace_id = trace_id
        self.root = Span(name, **attrs)
        self._stack: list[Span] = [self.root]

    @property
    def current(self) -> Span:
        return self._stack[-1]

    @contextlib.contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child of the current span for the duration of the block."""
        span = self.current.child(name, **attrs)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.finish()
            self._stack.pop()

    def push(self, name: str) -> Span:
        """Open a child of the current span; pair with :meth:`pop`.

        The bare-metal twin of :meth:`span` for per-query hot paths —
        a generator contextmanager costs a few µs per use, which the
        <5% tracing-overhead budget cannot spare on the two spans every
        traced query opens.
        """
        span = self.current.child(name)
        self._stack.append(span)
        return span

    def pop(self) -> None:
        self._stack.pop().finish()

    def finish(self) -> None:
        self.root.finish()

    def to_dict(self) -> dict[str, Any]:
        out = self.root.to_dict()
        out["trace_id"] = self.trace_id
        return out

    def render(self) -> str:
        lines = self.root.render()
        lines[0] += f" [trace={self.trace_id}]"
        return "\n".join(lines)
