"""A ring-buffered slow-query log.

Queries whose end-to-end latency crosses ``threshold_ms`` are captured
as plain dicts — query text, the plan cache's normalized shape id (so
literal-differing instances of one query shape aggregate), the
executor's access-path stats, row count and, when tracing was on, the
full span tree.  The buffer is a bounded deque: the log can run forever
in a serving process without growing, at the cost of forgetting the
oldest entries.  ``Driver.slow_queries()`` is the query surface.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any


class SlowQueryLog:
    """Bounded, thread-safe buffer of slow-query capture dicts."""

    def __init__(self, capacity: int = 128, threshold_ms: float = 100.0) -> None:
        if capacity < 1:
            raise ValueError(f"slow-query log capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.threshold_ms = threshold_ms
        self._entries: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.captured = 0  # lifetime total, unlike len() which is bounded

    def should_capture(self, duration_ms: float) -> bool:
        return duration_ms >= self.threshold_ms

    def record(self, entry: dict[str, Any]) -> None:
        with self._lock:
            self._entries.append(entry)
            self.captured += 1

    def entries(self) -> list[dict[str, Any]]:
        """Captured entries, oldest first."""
        with self._lock:
            return list(self._entries)

    def slowest(self, n: int | None = None) -> list[dict[str, Any]]:
        """Captured entries sorted by duration, slowest first."""
        ranked = sorted(
            self.entries(), key=lambda e: e.get("duration_ms", 0.0), reverse=True
        )
        return ranked if n is None else ranked[:n]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
