"""Observability: one object wiring metrics, tracing and the slow log.

Every :class:`~repro.drivers.base.Driver` owns one (lazily created, like
its plan cache).  The object bundles:

- a :class:`~repro.obs.metrics.MetricsRegistry` the driver's engine
  layers register collectors into (WAL, lock manager, plan cache, 2PC
  coordinator) and whose push instruments the query/commit paths feed;
- a :class:`~repro.obs.slowlog.SlowQueryLog`;
- the **switches**: ``enabled`` gates all push instrumentation (when
  off, ``Driver.query`` runs the exact pre-observability path — the
  CI overhead smoke holds the enabled path within 5% of this);
  ``tracing`` additionally builds a :class:`~repro.obs.trace.Tracer`
  span tree per query and threads it through the executor into
  scatter workers.

The per-query cost with ``enabled=True, tracing=False`` is two
``perf_counter`` calls, one histogram observe, and a handful of counter
increments — all per *query*, never per row.  Tracing adds one span per
pipeline stage and per shard, still O(operators + shards) per query.
"""

from __future__ import annotations

import threading
from datetime import datetime, timezone
from time import perf_counter
from typing import Any

from repro.obs.metrics import COUNT_BUCKETS, MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import Tracer

# Executor access-path stats mirrored into registry counters per query.
_STAT_COUNTERS = {
    "index_lookups": "repro_exec_index_lookups_total",
    "range_lookups": "repro_exec_range_lookups_total",
    "scans": "repro_exec_scans_total",
    "rows_scanned": "repro_exec_rows_scanned_total",
    "scan_cache_hits": "repro_exec_scan_cache_hits_total",
    "shard_fanout": "repro_exec_shard_fanout_total",
}


def _first_line(text: str, limit: int = 120) -> str:
    squeezed = " ".join(text.split())
    return squeezed if len(squeezed) <= limit else squeezed[: limit - 1] + "…"


class Observability:
    """Metrics + tracing + slow-query log for one driver/cluster."""

    def __init__(
        self,
        enabled: bool = True,
        tracing: bool = False,
        slow_query_ms: float = 100.0,
        slow_log_capacity: int = 128,
    ) -> None:
        self.enabled = enabled
        self.tracing = tracing
        self.registry = MetricsRegistry()
        self.slow_log = SlowQueryLog(slow_log_capacity, slow_query_ms)
        self.last_trace: Tracer | None = None
        self._id_lock = threading.Lock()
        self._next_trace_id = 1
        # Pre-resolved hot-path instruments (get-or-create is locked;
        # resolving once here keeps the per-query path to pure pushes).
        reg = self.registry
        self.queries_total = reg.counter("repro_queries_total")
        self.query_errors_total = reg.counter("repro_query_errors_total")
        self.query_seconds = reg.histogram("repro_query_seconds")
        self.query_rows_total = reg.counter("repro_query_rows_returned_total")
        self.shard_seconds = reg.histogram("repro_shard_scatter_seconds")
        # Time a scatter task spent waiting for a pool slot (thread or
        # worker-process) before it started executing — the signal that
        # pool_workers is undersized for the shard fanout.
        self.shard_queue_seconds = reg.histogram("repro_shard_queue_seconds")
        self.shard_fanout = reg.histogram(
            "repro_shard_fanout", buckets=COUNT_BUCKETS
        )
        self.twopc_commit_seconds = reg.histogram("repro_txn_2pc_commit_seconds")
        self.twopc_prepare_seconds = reg.histogram("repro_txn_2pc_prepare_seconds")
        # Replication (populated only by a cluster with replica sets):
        # time a commit waited for its write-ack quorum, plus election
        # and failover totals pushed at promotion time.  Per-follower
        # lag gauges come from the cluster's "replication" collector.
        self.replication_quorum_seconds = reg.histogram(
            "repro_replication_quorum_wait_seconds"
        )
        self.replication_elections_total = reg.counter(
            "repro_replication_elections_total"
        )
        self.replication_failovers_total = reg.counter(
            "repro_replication_failovers_total"
        )
        # Degraded (read-only) shards: the gauge tracks how many replica
        # sets currently cannot reach their write quorum; the entry/exit
        # counters record every transition for alerting on flapping.
        self.replication_degraded_shards = reg.gauge(
            "repro_replication_degraded_shards"
        )
        self.replication_degraded_entries_total = reg.counter(
            "repro_replication_degraded_entries_total"
        )
        self.replication_degraded_exits_total = reg.counter(
            "repro_replication_degraded_exits_total"
        )
        self._stat_counters = {
            stat: reg.counter(name) for stat, name in _STAT_COUNTERS.items()
        }
        self._outcomes = {
            outcome: reg.counter("repro_txn_2pc_outcomes_total", outcome=outcome)
            for outcome in ("commit", "abort", "in_doubt")
        }

    # -- switches -------------------------------------------------------------

    def enable(self, tracing: bool | None = None) -> None:
        self.enabled = True
        if tracing is not None:
            self.tracing = tracing

    def disable(self) -> None:
        self.enabled = False
        self.tracing = False

    def next_trace_id(self) -> int:
        with self._id_lock:
            trace_id = self._next_trace_id
            self._next_trace_id += 1
            return trace_id

    # -- the per-query hot path ----------------------------------------------

    def observe_query(
        self, executor: Any, text: str, params: dict[str, Any] | None
    ) -> list[Any]:
        """Run *text* on *executor* with instrumentation attached.

        Only called when :attr:`enabled` is true; the disabled path in
        ``Driver.query`` never reaches here.
        """
        tracer: Tracer | None = None
        executor.obs = self
        if self.tracing:
            tracer = Tracer(
                self.next_trace_id(), "query", query=_first_line(str(text))
            )
            executor.tracer = tracer
            executor.trace_id = tracer.trace_id
        started_wall = datetime.now(timezone.utc)
        started = perf_counter()
        try:
            result = executor.execute(text, params)
        except BaseException:
            self.query_errors_total.inc()
            raise
        elapsed = perf_counter() - started
        if tracer is not None:
            tracer.finish()
            self.last_trace = tracer
        self.queries_total.inc()
        self.query_seconds.observe(elapsed)
        self.query_rows_total.inc(len(result))
        for stat, counter in self._stat_counters.items():
            value = executor.stats.get(stat, 0)
            if value:
                counter.inc(value)
        duration_ms = elapsed * 1000.0
        if self.slow_log.should_capture(duration_ms):
            shape = None
            if isinstance(text, str):
                shape = executor.plans.shape_id(
                    text, executor.epoch, executor.use_indexes
                )
            self.slow_log.record({
                "query": _first_line(str(text)),
                "shape": shape,
                "duration_ms": round(duration_ms, 4),
                "rows": len(result),
                "stats": dict(executor.stats),
                "trace_id": tracer.trace_id if tracer is not None else None,
                "trace": tracer.to_dict() if tracer is not None else None,
                "started_at": started_wall.isoformat(),
            })
        return result

    # -- commit-protocol instruments (2PC coordinator) ------------------------

    def observe_2pc_outcome(self, outcome: str) -> None:
        self._outcomes[outcome].inc()

    # -- exposition -----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Stable dict of every metric — ``Driver.metrics()``'s payload."""
        snap = self.registry.snapshot()
        snap["slow_log"] = {
            "captured": self.slow_log.captured,
            "buffered": len(self.slow_log),
            "capacity": self.slow_log.capacity,
            "threshold_ms": self.slow_log.threshold_ms,
        }
        snap["config"] = {"enabled": self.enabled, "tracing": self.tracing}
        return snap

    def to_prometheus(self) -> str:
        return self.registry.to_prometheus()
