"""``python -m repro metrics`` — exercise a cluster, print its telemetry.

Builds a sharded cluster at a small scale, runs the benchmark query mix
with full observability on (tracing enabled, slow-query threshold zero
so every query is captured), then prints:

1. the Prometheus text exposition of every registered metric —
   push instruments and engine collectors (plan cache, WAL, locks,
   2PC) alike;
2. the top-N slowest queries with their rendered span trees.

Usage::

    python -m repro metrics
    python -m repro metrics --sf 0.05 --shards 8 --rounds 5 --top 5
    python -m repro metrics --queries Q7,Q8 --no-tracing
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro metrics",
        description="Run the benchmark query mix on a sharded cluster "
        "with observability on; print Prometheus metrics and the "
        "slowest query traces.",
    )
    parser.add_argument(
        "--sf", type=float, default=0.01, metavar="SCALE",
        help="dataset scale factor (default 0.01)",
    )
    parser.add_argument(
        "--shards", type=int, default=4, help="shard count (default 4)"
    )
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="times to run each query (default 3; round 1 is the cold plan)",
    )
    parser.add_argument(
        "--top", type=int, default=3,
        help="slow-log entries to print with trace trees (default 3)",
    )
    parser.add_argument(
        "--queries", metavar="IDS", default=None,
        help="comma-separated query ids (default: the core Q1-Q8 mix)",
    )
    parser.add_argument(
        "--no-tracing", action="store_true",
        help="metrics only — skip span trees (the production posture)",
    )
    args = parser.parse_args(argv)

    # Imports deferred so `--help` stays instant.
    from repro.cluster.sharded import ShardedDatabase
    from repro.core.workloads import QUERIES, QUERY_BY_ID
    from repro.datagen.config import GeneratorConfig
    from repro.datagen.generator import DatasetGenerator
    from repro.datagen.load import load_dataset

    if args.queries:
        wanted = [q.strip() for q in args.queries.split(",") if q.strip()]
        unknown = [q for q in wanted if q not in QUERY_BY_ID]
        if unknown:
            parser.error(f"unknown query id(s): {', '.join(unknown)}")
        mix = [QUERY_BY_ID[q] for q in wanted]
    else:
        mix = list(QUERIES)

    dataset = DatasetGenerator(
        GeneratorConfig(seed=42, scale_factor=args.sf)
    ).generate()
    driver = ShardedDatabase(n_shards=args.shards)
    load_dataset(driver, dataset)
    obs = driver.observability
    obs.enable(tracing=not args.no_tracing)
    obs.slow_log.threshold_ms = 0.0  # capture every query

    print(
        f"# running {len(mix)} queries x {args.rounds} rounds on "
        f"{args.shards} shards (SF={args.sf}, "
        f"tracing={'off' if args.no_tracing else 'on'})",
        file=sys.stderr,
    )
    for qdef in mix:
        params = qdef.params(dataset)
        try:
            for _ in range(args.rounds):
                driver.query(qdef.text, params)
        except Exception as exc:  # noqa: BLE001 - survey tool, keep going
            print(f"# {qdef.query_id} failed: {exc}", file=sys.stderr)

    print(driver.metrics_text())
    slowest = driver.slow_queries(args.top)
    if slowest:
        print(f"# -- top {len(slowest)} slowest queries " + "-" * 34)
        for entry in slowest:
            print(
                f"# {entry['duration_ms']}ms rows={entry['rows']} "
                f"shape={entry['shape']} query={entry['query']!r}"
            )
            trace = entry.get("trace")
            if trace is not None:
                for line in _render_trace_dict(trace):
                    print(f"#   {line}")
    driver.close()
    return 0


def _render_trace_dict(node: dict, depth: int = 0) -> list[str]:
    """Render a ``Span.to_dict`` tree (the slow log stores dicts, not
    live spans) in the same indented format as ``Tracer.render``."""
    elapsed = node.get("elapsed_ms")
    line = "  " * depth + node["name"]
    line += f" {elapsed}ms" if elapsed is not None else " open"
    attrs = " ".join(f"{k}={v!r}" for k, v in node.get("attrs", {}).items())
    if attrs:
        line += " " + attrs
    lines = [line]
    for child in node.get("children", ()):
        lines.extend(_render_trace_dict(child, depth + 1))
    return lines


if __name__ == "__main__":
    sys.exit(main())
