"""End-to-end observability: metrics registry, trace spans, slow-query log.

The operational substrate under the multi-model engine — see
:mod:`repro.obs.core` for the wiring overview.  Public surface:

- :class:`Observability` — per-driver bundle of everything below
- :class:`MetricsRegistry` / :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` (+ the fixed :data:`LATENCY_BUCKETS` ladder)
- :class:`Tracer` / :class:`Span` — per-query span trees
- :class:`SlowQueryLog` — ring-buffered capture over a latency threshold
"""

from repro.obs.core import Observability
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import Span, Tracer

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "Observability",
    "SlowQueryLog",
    "Span",
    "Tracer",
]
