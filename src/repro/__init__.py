"""UDBMS-benchmark: a benchmark suite for multi-model databases.

Reproduction of Jiaheng Lu, *Towards Benchmarking Multi-Model Databases*
(CIDR 2017).  The package contains both the benchmark (data generation,
workloads, metrics, experiments) and the systems it evaluates (a
from-scratch transactional multi-model engine and a polyglot-persistence
baseline).

Quickstart::

    from repro import (
        BenchmarkConfig, DatasetGenerator, GeneratorConfig,
        UnifiedDriver, load_dataset,
    )

    dataset = DatasetGenerator(GeneratorConfig(scale_factor=0.1)).generate()
    driver = UnifiedDriver()
    load_dataset(driver, dataset)
    rows = driver.query(
        'FOR c IN customers FILTER c.country == @c RETURN c.last_name',
        {"c": "Finland"},
    )

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.cluster.sharded import ShardedDatabase
from repro.core.config import BenchmarkConfig
from repro.core.workloads import QUERIES, TRANSACTIONS
from repro.datagen.config import GeneratorConfig
from repro.datagen.generator import Dataset, DatasetGenerator
from repro.datagen.load import load_dataset
from repro.drivers.polyglot import PolyglotDriver
from repro.drivers.unified import UnifiedDriver
from repro.engine.database import MultiModelDatabase
from repro.engine.transactions import IsolationLevel
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "BenchmarkConfig",
    "Dataset",
    "DatasetGenerator",
    "GeneratorConfig",
    "IsolationLevel",
    "MultiModelDatabase",
    "PolyglotDriver",
    "QUERIES",
    "ReproError",
    "ShardedDatabase",
    "TRANSACTIONS",
    "UnifiedDriver",
    "__version__",
    "load_dataset",
]
