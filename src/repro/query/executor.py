"""MMQL execution: expression evaluation + the clause pipeline.

Execution is a stream of *bindings* (dicts var -> value) flowing through
the clause list; RETURN maps each surviving binding to an output value.
The executor consults :class:`~repro.query.ast.IndexHint` annotations
placed by the planner, falling back to scans when the context has no
matching index — so the same plan runs on indexed and unindexed stores
(the E1 index ablation flips ``use_indexes``).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import ExecutionError, PlanError
from repro.query import functions
from repro.query.ast import (
    Binary,
    CollectClause,
    Expr,
    FieldAccess,
    FilterClause,
    ForClause,
    FunctionCall,
    IndexAccess,
    LetClause,
    LimitClause,
    ListExpr,
    Literal,
    ObjectExpr,
    ParamRef,
    Query,
    SortClause,
    Subquery,
    Unary,
    VarRef,
)
from repro.query.context import QueryContext
from repro.query.parser import parse
from repro.query.planner import plan

Binding = dict[str, Any]


class Executor:
    """Runs planned MMQL queries against a :class:`QueryContext`."""

    def __init__(self, ctx: QueryContext, use_indexes: bool = True) -> None:
        self.ctx = ctx
        self.use_indexes = use_indexes
        self.stats = {
            "index_lookups": 0, "range_lookups": 0, "scans": 0, "rows_scanned": 0,
        }

    # -- public ---------------------------------------------------------------

    def execute(
        self, query: Query | str, params: dict[str, Any] | None = None
    ) -> list[Any]:
        """Execute and materialise all result values."""
        if isinstance(query, str):
            query = parse(query)
        planned = plan(query).query
        params = params or {}
        bindings: Iterator[Binding] = iter([{}])
        for clause in planned.clauses:
            bindings = self._apply(clause, bindings, params)
        out: list[Any] = []
        seen: set[str] = set()
        for binding in bindings:
            value = self._eval(planned.returning.expr, binding, params)
            if planned.returning.distinct:
                marker = repr(value)
                if marker in seen:
                    continue
                seen.add(marker)
            out.append(value)
        return out

    # -- clause dispatch ----------------------------------------------------------

    def _apply(
        self, clause: Any, bindings: Iterator[Binding], params: dict[str, Any]
    ) -> Iterator[Binding]:
        if isinstance(clause, ForClause):
            return self._apply_for(clause, bindings, params)
        if isinstance(clause, FilterClause):
            return (
                b for b in bindings
                if _truthy(self._eval(clause.condition, b, params))
            )
        if isinstance(clause, LetClause):
            return self._apply_let(clause, bindings, params)
        if isinstance(clause, SortClause):
            return self._apply_sort(clause, bindings, params)
        if isinstance(clause, LimitClause):
            return self._apply_limit(clause, bindings, params)
        if isinstance(clause, CollectClause):
            return self._apply_collect(clause, bindings, params)
        raise PlanError(f"unknown clause {type(clause).__name__}")

    def _apply_for(
        self, clause: ForClause, bindings: Iterator[Binding], params: dict[str, Any]
    ) -> Iterator[Binding]:
        for binding in bindings:
            for item in self._for_items(clause, binding, params):
                child = dict(binding)
                child[clause.var] = item
                yield child

    def _for_items(
        self, clause: ForClause, binding: Binding, params: dict[str, Any]
    ) -> Iterator[Any]:
        source = clause.source
        # A bound variable holding a list shadows any collection name.
        if isinstance(source, VarRef) and source.name in binding:
            value = binding[source.name]
            if not isinstance(value, list):
                raise ExecutionError(
                    f"FOR over variable {source.name!r} requires a list, "
                    f"got {type(value).__name__}"
                )
            yield from value
            return
        if isinstance(source, VarRef):
            hint = clause.index_hint
            if hint is not None and self.use_indexes:
                key = self._eval(hint.key_expr, binding, params)
                matches = self.ctx.index_lookup(hint.collection, hint.field, key)
                if matches is not None:
                    self.stats["index_lookups"] += 1
                    yield from matches
                    return
            range_hint = clause.range_hint
            range_lookup = getattr(self.ctx, "range_lookup", None)
            if range_hint is not None and self.use_indexes and range_lookup is not None:
                low = (
                    self._eval(range_hint.low_expr, binding, params)
                    if range_hint.low_expr is not None else None
                )
                high = (
                    self._eval(range_hint.high_expr, binding, params)
                    if range_hint.high_expr is not None else None
                )
                matches = range_lookup(
                    range_hint.collection, range_hint.field,
                    low, high, range_hint.include_low, range_hint.include_high,
                )
                if matches is not None:
                    self.stats["range_lookups"] += 1
                    yield from matches
                    return
            self.stats["scans"] += 1
            for item in self.ctx.iter_collection(source.name):
                self.stats["rows_scanned"] += 1
                yield item
            return
        value = self._eval(source, binding, params)
        if value is None:
            return
        if not isinstance(value, list):
            raise ExecutionError(
                f"FOR source must evaluate to a list, got {type(value).__name__}"
            )
        yield from value

    def _apply_let(
        self, clause: LetClause, bindings: Iterator[Binding], params: dict[str, Any]
    ) -> Iterator[Binding]:
        for binding in bindings:
            child = dict(binding)
            child[clause.var] = self._eval(clause.value, binding, params)
            yield child

    def _apply_sort(
        self, clause: SortClause, bindings: Iterator[Binding], params: dict[str, Any]
    ) -> Iterator[Binding]:
        materialised = list(bindings)

        def sort_key(binding: Binding) -> tuple:
            key = []
            for sk in clause.keys:
                value = self._eval(sk.expr, binding, params)
                key.append(_Orderable(value, sk.ascending))
            return tuple(key)

        materialised.sort(key=sort_key)
        return iter(materialised)

    def _apply_limit(
        self, clause: LimitClause, bindings: Iterator[Binding], params: dict[str, Any]
    ) -> Iterator[Binding]:
        count = self._eval(clause.count, {}, params)
        offset = (
            self._eval(clause.offset, {}, params) if clause.offset is not None else 0
        )
        if not isinstance(count, int) or count < 0:
            raise ExecutionError(f"LIMIT count must be a non-negative int, got {count!r}")
        if not isinstance(offset, int) or offset < 0:
            raise ExecutionError(f"LIMIT offset must be a non-negative int, got {offset!r}")
        emitted = 0
        skipped = 0
        for binding in bindings:
            if skipped < offset:
                skipped += 1
                continue
            if emitted >= count:
                return
            emitted += 1
            yield binding

    def _apply_collect(
        self, clause: CollectClause, bindings: Iterator[Binding], params: dict[str, Any]
    ) -> Iterator[Binding]:
        groups: dict[str, dict[str, Any]] = {}
        for binding in bindings:
            key_values = [
                (name, self._eval(expr, binding, params)) for name, expr in clause.keys
            ]
            marker = repr([v for _, v in key_values])
            group = groups.get(marker)
            if group is None:
                group = {
                    "keys": dict(key_values),
                    "agg": [_AggState(a.func) for a in clause.aggregations],
                    "members": [],
                }
                groups[marker] = group
            for state, agg in zip(group["agg"], clause.aggregations):
                state.feed(self._eval(agg.arg, binding, params))
            if clause.into is not None:
                group["members"].append(dict(binding))
        for group in groups.values():
            out: Binding = dict(group["keys"])
            for state, agg in zip(group["agg"], clause.aggregations):
                out[agg.var] = state.result()
            if clause.into is not None:
                out[clause.into] = group["members"]
            yield out

    # -- expression evaluation -------------------------------------------------------

    def _eval(self, expr: Expr, binding: Binding, params: dict[str, Any]) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, VarRef):
            if expr.name not in binding:
                raise ExecutionError(f"unbound variable {expr.name!r}")
            return binding[expr.name]
        if isinstance(expr, ParamRef):
            if expr.name not in params:
                raise ExecutionError(f"missing query parameter @{expr.name}")
            return params[expr.name]
        if isinstance(expr, FieldAccess):
            base = self._eval(expr.base, binding, params)
            if base is None:
                return None
            if isinstance(base, dict):
                return base.get(expr.field)
            raise ExecutionError(
                f"field access .{expr.field} on {type(base).__name__}"
            )
        if isinstance(expr, IndexAccess):
            base = self._eval(expr.base, binding, params)
            index = self._eval(expr.index, binding, params)
            if base is None:
                return None
            if isinstance(base, list):
                if not isinstance(index, int):
                    raise ExecutionError("list index must be an int")
                if -len(base) <= index < len(base):
                    return base[index]
                return None
            if isinstance(base, dict):
                return base.get(index)
            raise ExecutionError(f"indexing into {type(base).__name__}")
        if isinstance(expr, Binary):
            return self._eval_binary(expr, binding, params)
        if isinstance(expr, Unary):
            if expr.op == "NOT":
                return not _truthy(self._eval(expr.operand, binding, params))
            value = self._eval(expr.operand, binding, params)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ExecutionError(f"unary '-' on {type(value).__name__}")
            return -value
        if isinstance(expr, FunctionCall):
            args = [self._eval(a, binding, params) for a in expr.args]
            return functions.call_builtin(expr.name, self.ctx, args)
        if isinstance(expr, ObjectExpr):
            return {
                name: self._eval(value, binding, params)
                for name, value in expr.fields
            }
        if isinstance(expr, ListExpr):
            return [self._eval(item, binding, params) for item in expr.items]
        if isinstance(expr, Subquery):
            return self._eval_subquery(expr, binding, params)
        raise ExecutionError(f"cannot evaluate {type(expr).__name__}")

    def _eval_subquery(
        self, expr: Subquery, binding: Binding, params: dict[str, Any]
    ) -> list[Any]:
        """Run a sub-pipeline seeded with the current binding; returns a list."""
        sub = plan(expr.query).query
        bindings: Iterator[Binding] = iter([dict(binding)])
        for clause in sub.clauses:
            bindings = self._apply(clause, bindings, params)
        out: list[Any] = []
        seen: set[str] = set()
        for child in bindings:
            value = self._eval(sub.returning.expr, child, params)
            if sub.returning.distinct:
                marker = repr(value)
                if marker in seen:
                    continue
                seen.add(marker)
            out.append(value)
        return out

    def _eval_binary(self, expr: Binary, binding: Binding, params: dict[str, Any]) -> Any:
        op = expr.op
        if op == "AND":
            return _truthy(self._eval(expr.left, binding, params)) and _truthy(
                self._eval(expr.right, binding, params)
            )
        if op == "OR":
            return _truthy(self._eval(expr.left, binding, params)) or _truthy(
                self._eval(expr.right, binding, params)
            )
        left = self._eval(expr.left, binding, params)
        right = self._eval(expr.right, binding, params)
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op in ("<", "<=", ">", ">="):
            if left is None or right is None:
                return False
            try:
                if op == "<":
                    return left < right
                if op == "<=":
                    return left <= right
                if op == ">":
                    return left > right
                return left >= right
            except TypeError:
                return False
        if op == "IN":
            if right is None:
                return False
            if isinstance(right, (list, str, dict)):
                return left in right
            raise ExecutionError(f"IN requires a list/string, got {type(right).__name__}")
        if op == "LIKE":
            if left is None or right is None:
                return False
            return str(right) in str(left)
        if op in ("+", "-", "*", "/", "%"):
            return _arith(op, left, right)
        raise ExecutionError(f"unknown operator {op!r}")


class _Orderable:
    """Total order over heterogeneous values: None < bool < number < str < other."""

    __slots__ = ("rank", "value", "ascending")

    def __init__(self, value: Any, ascending: bool) -> None:
        if value is None:
            rank, key = 0, 0
        elif isinstance(value, bool):
            rank, key = 1, int(value)
        elif isinstance(value, (int, float)):
            rank, key = 2, value
        elif isinstance(value, str):
            rank, key = 3, value
        else:
            rank, key = 4, repr(value)
        self.rank = rank
        self.value = key
        self.ascending = ascending

    def __lt__(self, other: "_Orderable") -> bool:
        mine = (self.rank, self.value)
        theirs = (other.rank, other.value)
        if self.rank != other.rank:
            less = self.rank < other.rank
        else:
            less = mine < theirs
        return less if self.ascending else not less and mine != theirs

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _Orderable)
            and self.rank == other.rank
            and self.value == other.value
        )


class _AggState:
    """Incremental aggregate state for COLLECT ... AGGREGATE."""

    def __init__(self, func: str) -> None:
        self.func = func
        self.count = 0
        self.total: float = 0.0
        self.minimum: Any = None
        self.maximum: Any = None

    def feed(self, value: Any) -> None:
        if self.func == "COUNT":
            if value is not None:
                self.count += 1
            return
        if value is None:
            return
        self.count += 1
        if self.func in ("SUM", "AVG"):
            self.total += value
        elif self.func == "MIN":
            self.minimum = value if self.minimum is None else min(self.minimum, value)
        elif self.func == "MAX":
            self.maximum = value if self.maximum is None else max(self.maximum, value)

    def result(self) -> Any:
        if self.func == "COUNT":
            return self.count
        if self.func == "SUM":
            return self.total
        if self.func == "AVG":
            return self.total / self.count if self.count else None
        if self.func == "MIN":
            return self.minimum
        if self.func == "MAX":
            return self.maximum
        raise ExecutionError(f"unknown aggregate {self.func!r}")


def _truthy(value: Any) -> bool:
    return bool(value)


def _arith(op: str, left: Any, right: Any) -> Any:
    if op == "+" and isinstance(left, str) and isinstance(right, str):
        return left + right
    if op == "+" and isinstance(left, list) and isinstance(right, list):
        return left + right
    if left is None or right is None:
        return None
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        raise ExecutionError(
            f"arithmetic {op} on {type(left).__name__} and {type(right).__name__}"
        )
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        return left / right
    if op == "%":
        if right == 0:
            raise ExecutionError("modulo by zero")
        return left % right
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


def run_query(
    ctx: QueryContext,
    text: str,
    params: dict[str, Any] | None = None,
    use_indexes: bool = True,
) -> list[Any]:
    """Parse, plan and execute MMQL *text* in one call."""
    return Executor(ctx, use_indexes=use_indexes).execute(text, params)
