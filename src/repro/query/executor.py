"""MMQL execution: expression evaluation + a thin physical-plan driver.

The executor no longer interprets clauses.  :meth:`Executor.execute`
parses, calls :func:`~repro.query.planner.plan` to obtain the physical
operator tree, and pulls result values out of the root
:class:`~repro.query.physical.Project` iterator — all pipeline shape
(access paths, filter placement, TopK fusion) was decided at plan time.

What remains here is the *runtime* the operators call back into:

- :meth:`Executor.eval_expr` — the expression evaluator (operators pass
  the executor around as ``rt``); subqueries lower through the planner
  too, with their physical plans cached per AST node.
- ``stats`` — access-path counters (``index_lookups``, ``range_lookups``,
  ``scans``, ``rows_scanned``) that the benchmarks and tests assert on.
- ``use_indexes`` — the E1 ablation switch; when off, index access paths
  degrade to scans at run time without replanning.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ExecutionError
from repro.query import functions
from repro.query.ast import (
    Binary,
    Expr,
    FieldAccess,
    FunctionCall,
    IndexAccess,
    ListExpr,
    Literal,
    ObjectExpr,
    ParamRef,
    Query,
    Subquery,
    Unary,
    VarRef,
)
from repro.query.context import QueryContext
from repro.query.parser import parse
from repro.query.physical import PhysicalOperator
from repro.query.planner import plan

Binding = dict[str, Any]


class Executor:
    """Runs planned MMQL queries against a :class:`QueryContext`."""

    def __init__(self, ctx: QueryContext, use_indexes: bool = True) -> None:
        self.ctx = ctx
        self.use_indexes = use_indexes
        # A sharded context carries the cluster catalog; plan() then
        # inserts scatter-gather operators.  Single-node contexts don't.
        self.catalog = getattr(ctx, "catalog", None)
        # EXPLAIN ANALYZE sets this: shard scatters run sequentially so
        # per-operator row counters stay exact.
        self.analyze = False
        # ANALYZE also hands out an observation dict (operator id ->
        # extra actuals, e.g. HashAggregate's rows_in/groups); operators
        # skip the bookkeeping entirely when it is None.
        self.observed: dict[int, dict[str, int]] | None = None
        self.stats = {
            "index_lookups": 0, "range_lookups": 0, "scans": 0, "rows_scanned": 0,
        }
        # Physical plans for subqueries, keyed by AST node identity; the
        # Query object is pinned alongside so ids cannot be recycled.
        self._subplans: dict[int, tuple[Query, PhysicalOperator]] = {}

    # -- public ---------------------------------------------------------------

    def execute(
        self, query: Query | str, params: dict[str, Any] | None = None
    ) -> list[Any]:
        """Plan, run, and materialise all result values."""
        if isinstance(query, str):
            query = parse(query)
        root = plan(query, self.catalog).root
        return list(root.run(self, params or {}))

    # -- expression evaluation ------------------------------------------------

    def eval_expr(self, expr: Expr, binding: Binding, params: dict[str, Any]) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, VarRef):
            if expr.name not in binding:
                raise ExecutionError(f"unbound variable {expr.name!r}")
            return binding[expr.name]
        if isinstance(expr, ParamRef):
            if expr.name not in params:
                raise ExecutionError(f"missing query parameter @{expr.name}")
            return params[expr.name]
        if isinstance(expr, FieldAccess):
            base = self.eval_expr(expr.base, binding, params)
            if base is None:
                return None
            if isinstance(base, dict):
                return base.get(expr.field)
            raise ExecutionError(
                f"field access .{expr.field} on {type(base).__name__}"
            )
        if isinstance(expr, IndexAccess):
            base = self.eval_expr(expr.base, binding, params)
            index = self.eval_expr(expr.index, binding, params)
            if base is None:
                return None
            if isinstance(base, list):
                if not isinstance(index, int):
                    raise ExecutionError("list index must be an int")
                if -len(base) <= index < len(base):
                    return base[index]
                return None
            if isinstance(base, dict):
                return base.get(index)
            raise ExecutionError(f"indexing into {type(base).__name__}")
        if isinstance(expr, Binary):
            return self._eval_binary(expr, binding, params)
        if isinstance(expr, Unary):
            if expr.op == "NOT":
                return not _truthy(self.eval_expr(expr.operand, binding, params))
            value = self.eval_expr(expr.operand, binding, params)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ExecutionError(f"unary '-' on {type(value).__name__}")
            return -value
        if isinstance(expr, FunctionCall):
            args = [self.eval_expr(a, binding, params) for a in expr.args]
            return functions.call_builtin(expr.name, self.ctx, args)
        if isinstance(expr, ObjectExpr):
            return {
                name: self.eval_expr(value, binding, params)
                for name, value in expr.fields
            }
        if isinstance(expr, ListExpr):
            return [self.eval_expr(item, binding, params) for item in expr.items]
        if isinstance(expr, Subquery):
            return self._eval_subquery(expr, binding, params)
        raise ExecutionError(f"cannot evaluate {type(expr).__name__}")

    def _eval_subquery(
        self, expr: Subquery, binding: Binding, params: dict[str, Any]
    ) -> list[Any]:
        """Run a sub-pipeline seeded with the current binding; returns a list."""
        cached = self._subplans.get(id(expr.query))
        if cached is None:
            cached = (expr.query, plan(expr.query, self.catalog).root)
            self._subplans[id(expr.query)] = cached
        _, root = cached
        return list(root.run(self, params, seed=binding))

    def _eval_binary(self, expr: Binary, binding: Binding, params: dict[str, Any]) -> Any:
        op = expr.op
        if op == "AND":
            return _truthy(self.eval_expr(expr.left, binding, params)) and _truthy(
                self.eval_expr(expr.right, binding, params)
            )
        if op == "OR":
            return _truthy(self.eval_expr(expr.left, binding, params)) or _truthy(
                self.eval_expr(expr.right, binding, params)
            )
        left = self.eval_expr(expr.left, binding, params)
        right = self.eval_expr(expr.right, binding, params)
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op in ("<", "<=", ">", ">="):
            if left is None or right is None:
                return False
            try:
                if op == "<":
                    return left < right
                if op == "<=":
                    return left <= right
                if op == ">":
                    return left > right
                return left >= right
            except TypeError:
                return False
        if op == "IN":
            if right is None:
                return False
            if isinstance(right, (list, str, dict)):
                return left in right
            raise ExecutionError(f"IN requires a list/string, got {type(right).__name__}")
        if op == "LIKE":
            if left is None or right is None:
                return False
            return str(right) in str(left)
        if op in ("+", "-", "*", "/", "%"):
            return _arith(op, left, right)
        raise ExecutionError(f"unknown operator {op!r}")


def _truthy(value: Any) -> bool:
    return bool(value)


def _arith(op: str, left: Any, right: Any) -> Any:
    if op == "+" and isinstance(left, str) and isinstance(right, str):
        return left + right
    if op == "+" and isinstance(left, list) and isinstance(right, list):
        return left + right
    if left is None or right is None:
        return None
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        raise ExecutionError(
            f"arithmetic {op} on {type(left).__name__} and {type(right).__name__}"
        )
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        return left / right
    if op == "%":
        if right == 0:
            raise ExecutionError("modulo by zero")
        return left % right
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


def run_query(
    ctx: QueryContext,
    text: str,
    params: dict[str, Any] | None = None,
    use_indexes: bool = True,
) -> list[Any]:
    """Parse, plan and execute MMQL *text* in one call."""
    return Executor(ctx, use_indexes=use_indexes).execute(text, params)
