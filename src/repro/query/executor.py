"""MMQL execution: expression evaluation + a thin physical-plan driver.

The executor no longer interprets clauses.  :meth:`Executor.execute`
resolves the physical operator tree through a versioned
:class:`~repro.query.plancache.PlanCache` (parse + plan happen only on
a cache miss) and pulls result values out of the root
:class:`~repro.query.physical.Project` iterator — all pipeline shape
(access paths, filter placement, TopK fusion) was decided at plan time,
and every expression the plan holds was closure-compiled when the plan
was built (:mod:`repro.query.compile`).

What remains here is the *runtime* the operators call back into:

- :meth:`Executor.eval_expr` — the **reference interpreter** (operators
  pass the executor around as ``rt``).  The compiled closures are the
  default hot path; ``use_compiled=False`` switches every operator back
  to this recursive walk, which is the differential-testing oracle and
  the interpreted side of the E13 benchmark.
- :meth:`Executor.run_subquery` — sub-pipelines lower through the same
  plan cache, keyed by the (value-hashable) Query AST; nothing is
  pinned by ``id()`` and equal subqueries share one plan.
- ``stats`` — access-path counters (``index_lookups``, ``range_lookups``,
  ``scans``, ``rows_scanned``) that the benchmarks and tests assert on.
- ``use_indexes`` — the E1 ablation switch; when off, index access paths
  degrade to scans at run time without replanning.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ExecutionError
from repro.query import functions
from repro.query.ast import (
    Binary,
    Expr,
    FieldAccess,
    FunctionCall,
    IndexAccess,
    ListExpr,
    Literal,
    ObjectExpr,
    ParamRef,
    Query,
    Subquery,
    Unary,
    VarRef,
)
from repro.query.compile import arith, like_match
from repro.query.context import QueryContext
from repro.query.physical import DEFAULT_BATCH_SIZE
from repro.query.plancache import PlanCache

Binding = dict[str, Any]


class Executor:
    """Runs planned MMQL queries against a :class:`QueryContext`.

    *plans* is the plan cache to resolve queries and subqueries through;
    drivers pass their long-lived shared cache so repeated calls skip
    parse + plan entirely, while a standalone executor gets a private
    one.  *epoch* is the owning catalog's version counter — part of the
    cache key, so index/shard-map DDL invalidates stale plans.
    """

    def __init__(
        self,
        ctx: QueryContext,
        use_indexes: bool = True,
        use_compiled: bool = True,
        use_batches: bool = True,
        use_fusion: bool = True,
        batch_size: int = DEFAULT_BATCH_SIZE,
        plans: PlanCache | None = None,
        epoch: int = 0,
    ) -> None:
        self.ctx = ctx
        self.use_indexes = use_indexes
        # Ablation switch: compiled expression closures (default) vs the
        # reference interpreter below.  Checked once per operator run().
        self.use_compiled = use_compiled
        # Ablation switches for vectorized execution: batch-at-a-time
        # operator streams (run_batches) and fused pipeline closures.
        # Off = the per-binding run() streams, the E14 baselines.
        self.use_batches = use_batches
        self.use_fusion = use_fusion
        self.batch_size = batch_size
        # A sharded context carries the cluster catalog; plan() then
        # inserts scatter-gather operators.  Single-node contexts don't.
        self.catalog = getattr(ctx, "catalog", None)
        # EXPLAIN ANALYZE sets this: shard scatters run sequentially so
        # per-operator row counters stay exact.
        self.analyze = False
        # ANALYZE also hands out an observation dict (operator id ->
        # extra actuals, e.g. HashAggregate's rows_in/groups); operators
        # skip the bookkeeping entirely when it is None.
        self.observed: dict[int, dict[str, int]] | None = None
        # The observability channel, populated by the driver when its
        # Observability is enabled: `tracer` carries the per-query span
        # tree (None = tracing off, the default — operators check once
        # per run, never per row), `obs` gives scatter operators the
        # shard-latency/fanout histograms, and `trace_id` rides into
        # per-shard workers so cross-layer events correlate.
        self.tracer = None
        self.obs = None
        self.trace_id: int | None = None
        self.stats = {
            "index_lookups": 0, "range_lookups": 0, "scans": 0, "rows_scanned": 0,
            "scan_cache_hits": 0,
        }
        # Batch-mode scan materialization: collection name -> the scanned
        # block, so nested-loop inner scans re-serve one materialized
        # pass instead of re-scanning the store per outer row.  Scoped to
        # one top-level execute() — cleared there, shared by subqueries.
        self.scan_cache: dict[str, list[Any]] = {}
        self.plans = plans if plans is not None else PlanCache(capacity=64)
        self.epoch = epoch
        # Per-executor memo in front of the shared cache for subqueries:
        # a correlated subquery resolves once per executor instead of
        # deep-hashing its AST per row.  Keyed by id() with the Query
        # pinned in the value so ids cannot recycle while memoized; the
        # plan itself stays owned by (and shared through) self.plans.
        self._subplan_memo: dict[int, tuple[Query, Any]] = {}

    # -- public ---------------------------------------------------------------

    def execute(
        self, query: Query | str, params: dict[str, Any] | None = None
    ) -> list[Any]:
        """Plan (or fetch the cached plan), run, materialise all values.

        Text queries resolve to a :class:`PreparedPlan`: the cached plan
        is shared across literal-differing texts, and the extracted
        literal vector merges under the caller's parameters here —
        prepared-statement execution.

        With a tracer attached, the two pipeline stages get spans: a
        ``plan`` span covering parse/parameterize/cache resolution (with
        a ``cached`` attr) and an ``execute`` span covering the drain —
        scatter operators hang their per-shard subspans below the
        latter.
        """
        tracer = self.tracer
        if tracer is None:
            prepared = self.plans.get_or_plan(
                query, self.catalog, self.epoch, self.use_indexes
            )
        else:
            span = tracer.push("plan")
            # `cached` from the miss-counter delta rather than a peek():
            # the hot path must not pay an extra cache-lock round trip.
            # Informational only — a concurrent thread's miss can skew it.
            misses = self.plans.misses
            try:
                prepared = self.plans.get_or_plan(
                    query, self.catalog, self.epoch, self.use_indexes
                )
            finally:
                span.attrs["cached"] = self.plans.misses == misses
                span.attrs["epoch"] = self.epoch
                tracer.pop()
        # Scan blocks are only valid within one query's snapshot: a
        # reused executor must not serve a previous query's scans.
        self.scan_cache.clear()
        run_params = dict(params) if params else {}
        if prepared.binds:
            run_params.update(prepared.binds)
        if tracer is None:
            return self._drain(prepared.plan.root, run_params)
        span = tracer.push("execute")
        try:
            result = self._drain(prepared.plan.root, run_params)
            span.attrs["rows"] = len(result)
        finally:
            tracer.pop()
        return result

    def run_subquery(
        self, query: Query, binding: Binding, params: dict[str, Any]
    ) -> list[Any]:
        """Run a sub-pipeline seeded with the current binding; returns a list.

        Subquery plans live in the same cache as top-level plans, keyed
        by the Query value itself — the cache owns the plan outright,
        and value-equal subqueries (even across executors) share one
        plan.  A per-executor memo avoids re-hashing the AST on every
        row of a correlated subquery.
        """
        memoized = self._subplan_memo.get(id(query))
        if memoized is not None and memoized[0] is query:
            return self._drain(memoized[1], params, seed=binding)
        root = self.plans.get_or_plan(
            query, self.catalog, self.epoch, self.use_indexes
        ).root
        self._subplan_memo[id(query)] = (query, root)
        return self._drain(root, params, seed=binding)

    def _drain(
        self, root: Any, params: dict[str, Any], seed: Binding | None = None
    ) -> list[Any]:
        """Materialise a plan's output in the configured execution mode."""
        if self.use_batches:
            out: list[Any] = []
            for batch in root.run_batches(self, params, seed=seed):
                out.extend(batch)
            return out
        return list(root.run(self, params, seed=seed))

    # -- expression evaluation (the reference interpreter) --------------------

    def eval_expr(self, expr: Expr, binding: Binding, params: dict[str, Any]) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, VarRef):
            if expr.name not in binding:
                raise ExecutionError(f"unbound variable {expr.name!r}")
            return binding[expr.name]
        if isinstance(expr, ParamRef):
            if expr.name not in params:
                raise ExecutionError(f"missing query parameter @{expr.name}")
            return params[expr.name]
        if isinstance(expr, FieldAccess):
            base = self.eval_expr(expr.base, binding, params)
            if base is None:
                return None
            if isinstance(base, dict):
                return base.get(expr.field)
            raise ExecutionError(
                f"field access .{expr.field} on {type(base).__name__}"
            )
        if isinstance(expr, IndexAccess):
            base = self.eval_expr(expr.base, binding, params)
            index = self.eval_expr(expr.index, binding, params)
            if base is None:
                return None
            if isinstance(base, list):
                if not isinstance(index, int):
                    raise ExecutionError("list index must be an int")
                if -len(base) <= index < len(base):
                    return base[index]
                return None
            if isinstance(base, dict):
                return base.get(index)
            raise ExecutionError(f"indexing into {type(base).__name__}")
        if isinstance(expr, Binary):
            return self._eval_binary(expr, binding, params)
        if isinstance(expr, Unary):
            if expr.op == "NOT":
                return not _truthy(self.eval_expr(expr.operand, binding, params))
            value = self.eval_expr(expr.operand, binding, params)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ExecutionError(f"unary '-' on {type(value).__name__}")
            return -value
        if isinstance(expr, FunctionCall):
            args = [self.eval_expr(a, binding, params) for a in expr.args]
            return functions.call_builtin(expr.name, self.ctx, args)
        if isinstance(expr, ObjectExpr):
            return {
                name: self.eval_expr(value, binding, params)
                for name, value in expr.fields
            }
        if isinstance(expr, ListExpr):
            return [self.eval_expr(item, binding, params) for item in expr.items]
        if isinstance(expr, Subquery):
            return self.run_subquery(expr.query, binding, params)
        raise ExecutionError(f"cannot evaluate {type(expr).__name__}")

    def _eval_binary(self, expr: Binary, binding: Binding, params: dict[str, Any]) -> Any:
        op = expr.op
        if op == "AND":
            return _truthy(self.eval_expr(expr.left, binding, params)) and _truthy(
                self.eval_expr(expr.right, binding, params)
            )
        if op == "OR":
            return _truthy(self.eval_expr(expr.left, binding, params)) or _truthy(
                self.eval_expr(expr.right, binding, params)
            )
        left = self.eval_expr(expr.left, binding, params)
        right = self.eval_expr(expr.right, binding, params)
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op in ("<", "<=", ">", ">="):
            if left is None or right is None:
                return False
            try:
                if op == "<":
                    return left < right
                if op == "<=":
                    return left <= right
                if op == ">":
                    return left > right
                return left >= right
            except TypeError:
                return False
        if op == "IN":
            if right is None:
                return False
            if isinstance(right, (list, str, dict)):
                return left in right
            raise ExecutionError(f"IN requires a list/string, got {type(right).__name__}")
        if op == "LIKE":
            return like_match(left, right)
        if op in ("+", "-", "*", "/", "%"):
            return arith(op, left, right)
        raise ExecutionError(f"unknown operator {op!r}")


def _truthy(value: Any) -> bool:
    return bool(value)


def run_query(
    ctx: QueryContext,
    text: str,
    params: dict[str, Any] | None = None,
    use_indexes: bool = True,
    use_compiled: bool = True,
    use_batches: bool = True,
    use_fusion: bool = True,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> list[Any]:
    """Parse, plan and execute MMQL *text* in one call."""
    return Executor(
        ctx,
        use_indexes=use_indexes,
        use_compiled=use_compiled,
        use_batches=use_batches,
        use_fusion=use_fusion,
        batch_size=batch_size,
    ).execute(text, params)
