"""Decomposable aggregate accumulators for COLLECT ... AGGREGATE.

Each MMQL aggregate function is an :class:`Aggregator` — a stateless
strategy object exposing the classic two-phase contract:

``init``
    A fresh, empty accumulator state.
``accumulate``
    Fold one input value into a state (the per-row path; ``None`` and
    missing fields are skipped, matching SQL aggregate semantics).
``merge``
    Combine two states produced by *accumulate* on disjoint input
    partitions.  ``merge`` is associative and commutative, which is what
    lets the cluster planner push a ``HashAggregate(partial)`` below the
    shard gather and ship only per-group states to the coordinator.
``finalize``
    Turn a state into the user-visible result value.

AVG is the canonical decomposition example: its state is a ``(sum,
count)`` pair so partial averages merge exactly (averaging averages
would not).  :class:`AggPartial` is the envelope a partial-mode
aggregate emits — the coordinator-side final aggregate unwraps and
merges it.

The module also owns :func:`group_key` / :func:`freeze_key`: the
canonical hashable form of COLLECT group keys.  The previous
implementation keyed groups on ``repr`` of the key list, which split
equal dicts with different insertion order into separate groups and
collapsed distinct objects whose reprs collide.  Frozen keys are typed
tuples, so ``1`` (int), ``1.0`` (float), ``True`` and ``"1"`` stay four
distinct groups, dicts group by content, and unhashable or exotic
values degrade to a typed ``repr`` fallback instead of crashing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Any

from repro.errors import ExecutionError


def _exact(value: Any) -> Any:
    """A finite float as an exact rational; anything else unchanged.

    SUM and AVG accumulate exact values so addition is associative and
    commutative *exactly* — float addition is not, and per-shard partial
    sums would otherwise differ from the single-node plan in the low
    bits depending on row placement.  The one rounding happens in
    ``finalize``, so any partitioning of the input produces the same
    correctly-rounded float.

    Ints (and bools) pass through: Python int addition is already exact
    and associative, so integer-valued sums run at native speed — only
    float inputs pay the Fraction cost (a few µs per add, small next to
    the per-row expression-evaluation overhead, and the price of
    byte-identical shard parity).  Non-finite floats pass through too
    (the sum degrades to float inf/nan, as plain accumulation would),
    as do non-numeric values, so the addition raises the same TypeError
    the float fold raised.
    """
    if isinstance(value, float) and math.isfinite(value):
        return Fraction(value)
    return value


class Aggregator:
    """One aggregate function as an init/accumulate/merge/finalize strategy.

    ``decomposable`` declares that ``merge`` is exact over *any*
    partitioning of the input — the property the cluster planner needs
    before pushing a partial phase below the shard gather.  It defaults
    to False so a future function (MEDIAN, COUNT DISTINCT, ...) that
    works single-node is never silently split into wrong sharded
    results; each function opts in explicitly.
    """

    func = "?"
    decomposable = False

    def init(self) -> Any:
        raise NotImplementedError

    def accumulate(self, state: Any, value: Any) -> Any:
        raise NotImplementedError

    def merge(self, state: Any, other: Any) -> Any:
        raise NotImplementedError

    def finalize(self, state: Any) -> Any:
        raise NotImplementedError


class CountAggregator(Aggregator):
    """COUNT(expr): number of non-NULL values.  State: int."""

    func = "COUNT"
    decomposable = True

    def init(self) -> int:
        return 0

    def accumulate(self, state: int, value: Any) -> int:
        return state if value is None else state + 1

    def merge(self, state: int, other: int) -> int:
        return state + other

    def finalize(self, state: int) -> int:
        return state


class SumAggregator(Aggregator):
    """SUM(expr): float total of non-NULL values (0.0 over no input).

    The state is an exact total — int while the inputs are integral,
    promoted to rational by the first finite float (see :func:`_exact`)
    — rounded to float once at finalize, so per-shard partials merged
    in any order finalize to the identical float the single-node fold
    produces.
    """

    func = "SUM"
    decomposable = True

    def init(self) -> Any:
        return 0

    def accumulate(self, state: Any, value: Any) -> Any:
        return state if value is None else state + _exact(value)

    def merge(self, state: Any, other: Any) -> Any:
        return state + other

    def finalize(self, state: Any) -> float:
        return float(state)


class AvgAggregator(Aggregator):
    """AVG(expr): mean of non-NULL values.  State: (sum, count).

    The pair state is what makes AVG decomposable: partial states merge
    component-wise and only the finalize divides, so a merged average is
    exact regardless of how rows were partitioned across shards.
    """

    func = "AVG"
    decomposable = True

    def init(self) -> tuple[Any, int]:
        return (0, 0)

    def accumulate(self, state: tuple[Any, int], value: Any) -> tuple[Any, int]:
        if value is None:
            return state
        total, count = state
        return (total + _exact(value), count + 1)

    def merge(self, state: tuple[Any, int], other: tuple[Any, int]) -> tuple[Any, int]:
        return (state[0] + other[0], state[1] + other[1])

    def finalize(self, state: tuple[Any, int]) -> float | None:
        total, count = state
        return float(total / count) if count else None


def _canonical_tie(a: Any, b: Any) -> Any:
    """A deterministic representative of two equal-comparing extremes.

    ``min(1, 1.0)`` keeps whichever arrived first, which on a cluster
    depends on row placement and gather order.  Equal-comparing values
    of different types (1 vs 1.0 vs True) instead tie-break on their
    typed frozen key, so MIN/MAX pick the same object no matter how the
    input was partitioned — part of the byte-identical parity contract.
    """
    return a if freeze_key(a) <= freeze_key(b) else b


class MinAggregator(Aggregator):
    """MIN(expr): smallest non-NULL value (NULL over no input)."""

    func = "MIN"
    decomposable = True

    def init(self) -> Any:
        return None

    def accumulate(self, state: Any, value: Any) -> Any:
        if value is None:
            return state
        if state is None or value < state:
            return value
        if state < value:
            return state
        return _canonical_tie(state, value)

    def merge(self, state: Any, other: Any) -> Any:
        return self.accumulate(state, other)

    def finalize(self, state: Any) -> Any:
        return state


class MaxAggregator(Aggregator):
    """MAX(expr): largest non-NULL value (NULL over no input)."""

    func = "MAX"
    decomposable = True

    def init(self) -> Any:
        return None

    def accumulate(self, state: Any, value: Any) -> Any:
        if value is None:
            return state
        if state is None or value > state:
            return value
        if state > value:
            return state
        return _canonical_tie(state, value)

    def merge(self, state: Any, other: Any) -> Any:
        return self.accumulate(state, other)

    def finalize(self, state: Any) -> Any:
        return state


AGGREGATORS: dict[str, Aggregator] = {
    agg.func: agg
    for agg in (
        CountAggregator(),
        SumAggregator(),
        AvgAggregator(),
        MinAggregator(),
        MaxAggregator(),
    )
}

# Functions whose merge() is exact over any partitioning of the input —
# the set the cluster planner may split into partial + final phases.
# (All five current functions opt in; grouped INTO collections and
# RETURN DISTINCT do not decompose and stay single-phase above the
# gather.)
DECOMPOSABLE = frozenset(
    func for func, agg in AGGREGATORS.items() if agg.decomposable
)


def get_aggregator(func: str) -> Aggregator:
    """The shared (stateless) Aggregator for *func*, or ExecutionError."""
    try:
        return AGGREGATORS[func]
    except KeyError:
        raise ExecutionError(f"unknown aggregate {func!r}") from None


@dataclass(frozen=True)
class AggPartial:
    """A partial aggregate state in flight between plan phases.

    ``HashAggregate(partial)`` wraps each per-group state in one of
    these; the coordinator-side ``HashAggregate(final)`` unwraps and
    merges them.  The envelope keeps states distinguishable from user
    values and carries the function name so a mismatched merge fails
    loudly instead of corrupting results.
    """

    func: str
    state: Any


# ---------------------------------------------------------------------------
# Canonical group keys
# ---------------------------------------------------------------------------

# Type tags order heterogeneous group keys deterministically (the tag is
# compared before the payload): None < numbers < str < sequences <
# mappings < the fallbacks.  All numbers share one tag so they sort
# numerically (1 < 1.5 < 2, matching what SORT over the keys would
# produce); a trailing sub-rank keeps bool / int / float distinct as
# *groups* and breaks equal-value ties deterministically.  Proper
# numbers outrank bool in the tie-break so a MIN/MAX over a numeric
# column never canonicalises an equal-comparing True into the result.
_NONE, _NUM, _STR, _SEQ, _MAP, _NAN, _HASHABLE, _OPAQUE = range(8)
_INT_SUB, _FLOAT_SUB, _BOOL_SUB = range(3)


def freeze_key(value: Any) -> tuple:
    """A hashable, typed, order-canonical form of one group-key value.

    Properties the grouping paths (single-node and sharded) rely on:

    - two values freeze equal iff they should land in the same group —
      dict content equality ignores insertion order, ``1``/``1.0``/
      ``True``/``"1"`` stay distinct via their type tags;
    - frozen keys hash, so groups live in a plain dict;
    - frozen keys compare with each other in practice, so group output
      order is deterministic and independent of shard placement.
    """
    if value is None:
        return (_NONE,)
    if isinstance(value, bool):
        return (_NUM, value, _BOOL_SUB)
    if isinstance(value, int):
        return (_NUM, value, _INT_SUB)
    if isinstance(value, float):
        if value != value:  # NaN: group all NaNs together (repr did too)
            return (_NAN,)
        return (_NUM, value, _FLOAT_SUB)
    if isinstance(value, str):
        return (_STR, value)
    if isinstance(value, (list, tuple)):
        return (_SEQ, tuple(freeze_key(item) for item in value))
    if isinstance(value, dict):
        # Sort items by the key's repr: insertion order stops mattering
        # and the item tuples gain a total order across dicts.  The
        # frozen key itself keeps exact identity for ties.
        items = tuple(
            sorted(
                ((repr(k), freeze_key(k), freeze_key(v)) for k, v in value.items()),
                key=lambda item: item[0],
            )
        )
        return (_MAP, items)
    try:
        hash(value)
    except TypeError:
        return (_OPAQUE, type(value).__name__, repr(value))
    return (_HASHABLE, type(value).__name__, value)


def group_key(values: list[Any]) -> tuple:
    """The dict key for one COLLECT group: a tuple of frozen key values."""
    return tuple(freeze_key(value) for value in values)


def ordered_group_keys(groups: dict[tuple, Any]) -> list[tuple]:
    """Group keys in canonical (sorted) order; insertion order as fallback.

    Sorting frozen keys makes COLLECT output deterministic and — for the
    sharded two-phase plan — byte-identical to the single-node plan, no
    matter how rows were placed.  Exotic same-tag values that refuse to
    compare fall back to first-seen order rather than failing the query.
    """
    try:
        return sorted(groups)
    except TypeError:
        return list(groups)
