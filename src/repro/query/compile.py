"""Closure compilation of MMQL expressions: the hot-path evaluator.

:func:`compile_expr` walks an expression AST exactly **once** and
returns a nested-closure evaluator ``(rt, binding, params) -> value``.
Every decision the reference interpreter
(:meth:`repro.query.executor.Executor.eval_expr`) re-makes per row —
"which node type is this?", "which binary operator?", "which builtin?"
— is made here at plan time and baked into the closure:

- ``Literal`` becomes a constant closure;
- ``VarRef``/``ParamRef`` become direct dict lookups;
- ``Binary`` dispatches to a pre-selected operator closure (comparisons
  pick their ``operator`` function, AND/OR keep short-circuiting over
  the compiled operands, a literal LIKE pattern compiles its regex
  once);
- ``FieldAccess``/``IndexAccess``/``FunctionCall``/``ObjectExpr``/
  ``ListExpr`` close over their compiled children, with builtins
  resolved from the registry at compile time;
- ``Subquery`` defers to ``rt.run_subquery`` so sub-pipelines share the
  executor's plan cache.

The physical operators compile their expressions when the plan is
built (see the ``__post_init__`` hooks in :mod:`repro.query.physical`)
and pick the closure or the interpreter per run via the executor's
``use_compiled`` ablation flag — the interpreter stays byte-equivalent
as the differential-test oracle (``tests/query/test_compile_parity``).

Shared runtime helpers (:func:`arith`, :func:`like_match`) live here so
both evaluators agree on operator semantics by construction.
"""

from __future__ import annotations

import operator
import re
from functools import lru_cache
from typing import Any, Callable

from repro.errors import ExecutionError, UnknownFunctionError
from repro.query import functions
from repro.query.ast import (
    Binary,
    Expr,
    FieldAccess,
    FunctionCall,
    IndexAccess,
    ListExpr,
    Literal,
    ObjectExpr,
    ParamRef,
    Subquery,
    Unary,
    VarRef,
)

Binding = dict[str, Any]

# A compiled expression: call it with the running executor (duck-typed
# as ``rt``), the current binding, and the query parameters.
CompiledExpr = Callable[[Any, Binding, dict[str, Any]], Any]


def use_compiled(rt: Any) -> bool:
    """The executor's ablation switch (compiled closures by default)."""
    return getattr(rt, "use_compiled", True)


def use_batches(rt: Any) -> bool:
    """Batch-at-a-time execution switch (batched by default)."""
    return getattr(rt, "use_batches", True)


def use_fusion(rt: Any) -> bool:
    """Fused-pipeline switch (fused by default; only read in batch mode)."""
    return getattr(rt, "use_fusion", True)


def interpreted(expr: Expr) -> CompiledExpr:
    """A :data:`CompiledExpr`-shaped adapter over the reference interpreter."""

    def ev(rt: Any, binding: Binding, params: dict[str, Any]) -> Any:
        return rt.eval_expr(expr, binding, params)

    return ev


def evaluator(rt: Any, compiled: CompiledExpr, expr: Expr) -> CompiledExpr:
    """The evaluator *rt* wants for *expr*: compiled closure or interpreter."""
    return compiled if use_compiled(rt) else interpreted(expr)


# ---------------------------------------------------------------------------
# Batch kernels (the vectorized operator bodies)
# ---------------------------------------------------------------------------

# A batch kernel maps one batch of bindings to its output batch in a
# single Python-level loop — no per-row operator re-entry.  The physical
# operators build these once at plan time from their compiled closures
# (and once per run from the interpreter when ``use_compiled`` is off).
BatchKernel = Callable[[Any, list[Binding], dict[str, Any]], list[Any]]


def filter_batch(cond: CompiledExpr, speculative: bool = False) -> BatchKernel:
    """Keep the bindings of a batch whose predicate is truthy.

    Speculative filters defer evaluation errors (the strict original
    downstream still raises), mirroring :class:`physical.Filter`.
    """
    if speculative:

        def kernel_spec(rt: Any, batch: list[Binding], params: dict[str, Any]) -> list[Any]:
            out: list[Binding] = []
            append = out.append
            for binding in batch:
                try:
                    keep = bool(cond(rt, binding, params))
                except ExecutionError:
                    keep = True
                if keep:
                    append(binding)
            return out

        return kernel_spec

    def kernel(rt: Any, batch: list[Binding], params: dict[str, Any]) -> list[Any]:
        return [binding for binding in batch if cond(rt, binding, params)]

    return kernel


def let_batch(var: str, value: CompiledExpr) -> BatchKernel:
    """Extend every binding of a batch with ``var`` = *value*."""

    def kernel(rt: Any, batch: list[Binding], params: dict[str, Any]) -> list[Any]:
        out: list[Binding] = []
        append = out.append
        for binding in batch:
            computed = value(rt, binding, params)
            extended = dict(binding)
            extended[var] = computed
            append(extended)
        return out

    return kernel


def project_batch(expr: CompiledExpr) -> BatchKernel:
    """Map a batch of bindings to their RETURN values (no DISTINCT —
    cross-batch dedup state lives in the operator)."""

    def kernel(rt: Any, batch: list[Binding], params: dict[str, Any]) -> list[Any]:
        return [expr(rt, binding, params) for binding in batch]

    return kernel


# ---------------------------------------------------------------------------
# Shared operator semantics (used by both evaluators)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=512)
def like_regex(pattern: str) -> "re.Pattern[str]":
    """The compiled regex for one LIKE pattern (``%`` any run, ``_`` one char).

    Everything else matches literally; the whole subject must match
    (SQL LIKE semantics, no implicit substring search).  Cached so a
    parameter-driven pattern still compiles once per distinct value.
    """
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("".join(parts), re.DOTALL)


def like_match(subject: Any, pattern: Any) -> bool:
    """``subject LIKE pattern`` — NULL on either side is False."""
    if subject is None or pattern is None:
        return False
    return like_regex(str(pattern)).fullmatch(str(subject)) is not None


def arith(op: str, left: Any, right: Any) -> Any:
    """MMQL arithmetic: string/list ``+`` concatenation, NULL propagation."""
    if op == "+" and isinstance(left, str) and isinstance(right, str):
        return left + right
    if op == "+" and isinstance(left, list) and isinstance(right, list):
        return left + right
    if left is None or right is None:
        return None
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        raise ExecutionError(
            f"arithmetic {op} on {type(left).__name__} and {type(right).__name__}"
        )
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        return left / right
    if op == "%":
        if right == 0:
            raise ExecutionError("modulo by zero")
        return left % right
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


# ---------------------------------------------------------------------------
# Node compilers
# ---------------------------------------------------------------------------


def compile_expr(expr: Expr) -> CompiledExpr:
    """Compile *expr* into a nested-closure evaluator.

    The result is pure plan-time state: safe to share across queries,
    bindings and shard-worker threads (closures capture only immutable
    AST fragments and pre-resolved callables).
    """
    if isinstance(expr, Literal):
        value = expr.value

        def ev_literal(rt: Any, binding: Binding, params: dict[str, Any]) -> Any:
            return value

        return ev_literal
    if isinstance(expr, VarRef):
        return _compile_varref(expr.name)
    if isinstance(expr, ParamRef):
        return _compile_paramref(expr.name)
    if isinstance(expr, FieldAccess):
        return _compile_field(expr)
    if isinstance(expr, IndexAccess):
        return _compile_index(expr)
    if isinstance(expr, Binary):
        return _compile_binary(expr)
    if isinstance(expr, Unary):
        return _compile_unary(expr)
    if isinstance(expr, FunctionCall):
        return _compile_call(expr)
    if isinstance(expr, ObjectExpr):
        return _compile_object(expr)
    if isinstance(expr, ListExpr):
        items = tuple(compile_expr(item) for item in expr.items)

        def ev_list(rt: Any, binding: Binding, params: dict[str, Any]) -> list[Any]:
            return [item(rt, binding, params) for item in items]

        return ev_list
    if isinstance(expr, Subquery):
        query = expr.query

        def ev_subquery(rt: Any, binding: Binding, params: dict[str, Any]) -> list[Any]:
            return rt.run_subquery(query, binding, params)

        return ev_subquery
    raise ExecutionError(f"cannot compile {type(expr).__name__}")


def _compile_varref(name: str) -> CompiledExpr:
    def ev(rt: Any, binding: Binding, params: dict[str, Any]) -> Any:
        try:
            return binding[name]
        except KeyError:
            raise ExecutionError(f"unbound variable {name!r}") from None

    return ev


def _compile_paramref(name: str) -> CompiledExpr:
    def ev(rt: Any, binding: Binding, params: dict[str, Any]) -> Any:
        try:
            return params[name]
        except KeyError:
            raise ExecutionError(f"missing query parameter @{name}") from None

    return ev


def _compile_field(expr: FieldAccess) -> CompiledExpr:
    base = compile_expr(expr.base)
    field = expr.field

    def ev(rt: Any, binding: Binding, params: dict[str, Any]) -> Any:
        value = base(rt, binding, params)
        if value is None:
            return None
        if isinstance(value, dict):
            return value.get(field)
        raise ExecutionError(f"field access .{field} on {type(value).__name__}")

    return ev


def _compile_index(expr: IndexAccess) -> CompiledExpr:
    base = compile_expr(expr.base)
    index = compile_expr(expr.index)

    def ev(rt: Any, binding: Binding, params: dict[str, Any]) -> Any:
        value = base(rt, binding, params)
        key = index(rt, binding, params)
        if value is None:
            return None
        if isinstance(value, list):
            if not isinstance(key, int):
                raise ExecutionError("list index must be an int")
            if -len(value) <= key < len(value):
                return value[key]
            return None
        if isinstance(value, dict):
            return value.get(key)
        raise ExecutionError(f"indexing into {type(value).__name__}")

    return ev


def _compile_unary(expr: Unary) -> CompiledExpr:
    operand = compile_expr(expr.operand)
    if expr.op == "NOT":

        def ev_not(rt: Any, binding: Binding, params: dict[str, Any]) -> bool:
            return not bool(operand(rt, binding, params))

        return ev_not

    def ev_neg(rt: Any, binding: Binding, params: dict[str, Any]) -> Any:
        value = operand(rt, binding, params)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"unary '-' on {type(value).__name__}")
        return -value

    return ev_neg


_COMPARISONS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _compile_binary(expr: Binary) -> CompiledExpr:
    op = expr.op
    left = compile_expr(expr.left)
    right = compile_expr(expr.right)
    if op == "AND":

        def ev_and(rt: Any, binding: Binding, params: dict[str, Any]) -> bool:
            return bool(left(rt, binding, params)) and bool(right(rt, binding, params))

        return ev_and
    if op == "OR":

        def ev_or(rt: Any, binding: Binding, params: dict[str, Any]) -> bool:
            return bool(left(rt, binding, params)) or bool(right(rt, binding, params))

        return ev_or
    if op == "==":

        def ev_eq(rt: Any, binding: Binding, params: dict[str, Any]) -> bool:
            return left(rt, binding, params) == right(rt, binding, params)

        return ev_eq
    if op == "!=":

        def ev_ne(rt: Any, binding: Binding, params: dict[str, Any]) -> bool:
            return left(rt, binding, params) != right(rt, binding, params)

        return ev_ne
    if op in _COMPARISONS:
        cmp = _COMPARISONS[op]

        def ev_cmp(rt: Any, binding: Binding, params: dict[str, Any]) -> bool:
            lhs = left(rt, binding, params)
            rhs = right(rt, binding, params)
            if lhs is None or rhs is None:
                return False
            try:
                return cmp(lhs, rhs)
            except TypeError:
                return False

        return ev_cmp
    if op == "IN":

        def ev_in(rt: Any, binding: Binding, params: dict[str, Any]) -> bool:
            # Operand order matters for error parity: left first, like
            # the interpreter.
            lhs = left(rt, binding, params)
            rhs = right(rt, binding, params)
            if rhs is None:
                return False
            if isinstance(rhs, (list, str, dict)):
                return lhs in rhs
            raise ExecutionError(
                f"IN requires a list/string, got {type(rhs).__name__}"
            )

        return ev_in
    if op == "LIKE":
        if isinstance(expr.right, Literal) and expr.right.value is not None:
            # The common case: a literal pattern compiles its regex at
            # plan time — zero per-row pattern work.
            pattern = like_regex(str(expr.right.value))

            def ev_like_const(rt: Any, binding: Binding, params: dict[str, Any]) -> bool:
                subject = left(rt, binding, params)
                if subject is None:
                    return False
                return pattern.fullmatch(str(subject)) is not None

            return ev_like_const

        def ev_like(rt: Any, binding: Binding, params: dict[str, Any]) -> bool:
            return like_match(left(rt, binding, params), right(rt, binding, params))

        return ev_like
    if op in ("+", "-", "*", "/", "%"):

        def ev_arith(rt: Any, binding: Binding, params: dict[str, Any]) -> Any:
            return arith(op, left(rt, binding, params), right(rt, binding, params))

        return ev_arith

    def ev_unknown(rt: Any, binding: Binding, params: dict[str, Any]) -> Any:
        raise ExecutionError(f"unknown operator {op!r}")

    return ev_unknown


def _compile_call(expr: FunctionCall) -> CompiledExpr:
    name = expr.name
    fn = functions.lookup_builtin(name)
    args = tuple(compile_expr(arg) for arg in expr.args)
    if fn is None:
        # Defer the failure to evaluation time, and still evaluate the
        # arguments first — the interpreter does, so an erroring argument
        # must win over the unknown-function error in both modes.

        def ev_unknown(rt: Any, binding: Binding, params: dict[str, Any]) -> Any:
            for arg in args:
                arg(rt, binding, params)
            raise UnknownFunctionError(f"unknown function {name}()")

        return ev_unknown

    def ev(rt: Any, binding: Binding, params: dict[str, Any]) -> Any:
        return fn(rt.ctx, [arg(rt, binding, params) for arg in args])

    return ev


def _compile_object(expr: ObjectExpr) -> CompiledExpr:
    fields = tuple((name, compile_expr(value)) for name, value in expr.fields)

    def ev(rt: Any, binding: Binding, params: dict[str, Any]) -> dict[str, Any]:
        return {name: value(rt, binding, params) for name, value in fields}

    return ev
