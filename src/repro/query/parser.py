"""MMQL recursive-descent parser.

Grammar (clauses may repeat and nest in pipeline order)::

    query      := clause* return
    clause     := for | filter | let | sort | limit | collect
    for        := FOR IDENT IN source
    source     := IDENT | expr
    filter     := FILTER expr
    let        := LET IDENT = expr
    sort       := SORT sortkey (',' sortkey)*
    sortkey    := expr (ASC | DESC)?
    limit      := LIMIT expr (',' expr)?          -- LIMIT [offset,] count
    collect    := COLLECT IDENT = expr (',' IDENT = expr)*
                  (AGGREGATE IDENT = IDENT '(' expr ')' (',' ...)*)?
                  (INTO IDENT)?
    return     := RETURN DISTINCT? expr

    expr       := or
    or         := and (OR and)*
    and        := not (AND not)*
    not        := NOT not | comparison
    comparison := additive ((==|!=|<|<=|>|>=|IN|LIKE) additive)?
    additive   := multiplicative ((+|-) multiplicative)*
    multiplicative := unary ((*|/|%) unary)*
    unary      := '-' unary | postfix
    postfix    := primary ( '.' IDENT | '[' expr ']' )*
    primary    := literal | IDENT | IDENT '(' args ')' | '@' IDENT
                | '(' expr ')' | object | list
"""

from __future__ import annotations

from repro.errors import MMQLSyntaxError
from repro.query.ast import (
    Aggregation,
    Binary,
    Clause,
    CollectClause,
    Expr,
    FieldAccess,
    FilterClause,
    ForClause,
    FunctionCall,
    IndexAccess,
    LetClause,
    LimitClause,
    ListExpr,
    Literal,
    ObjectExpr,
    ParamRef,
    Query,
    ReturnClause,
    SortClause,
    SortKey,
    Subquery,
    Unary,
    VarRef,
)
from repro.query.tokens import Token, TokenType, tokenize

_AGG_FUNCS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


def parse(text: str) -> Query:
    """Parse MMQL text into a :class:`Query`."""
    return _Parser(tokenize(text), text).parse_query()


class _Parser:
    def __init__(self, tokens: list[Token], text: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.text = text

    # -- token helpers -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def expect_punct(self, value: str) -> Token:
        if not self.current.is_punct(value):
            raise self._error(f"expected {value!r}, found {self.current.value!r}")
        return self.advance()

    def expect_keyword(self, name: str) -> Token:
        if not self.current.is_keyword(name):
            raise self._error(f"expected {name}, found {self.current.value!r}")
        return self.advance()

    def expect_ident(self) -> str:
        if self.current.type is not TokenType.IDENT:
            raise self._error(f"expected identifier, found {self.current.value!r}")
        return self.advance().value

    def _error(self, message: str) -> MMQLSyntaxError:
        return MMQLSyntaxError(message, self.current.line, self.current.column)

    # -- clauses ------------------------------------------------------------------

    def parse_query(self, subquery: bool = False) -> Query:
        clauses: list[Clause] = []
        bound: set[str] = set()
        while True:
            token = self.current
            if token.is_keyword("FOR"):
                clauses.append(self._parse_for(bound))
            elif token.is_keyword("FILTER"):
                self.advance()
                clauses.append(FilterClause(self.parse_expr()))
            elif token.is_keyword("LET"):
                clauses.append(self._parse_let(bound))
            elif token.is_keyword("SORT"):
                clauses.append(self._parse_sort())
            elif token.is_keyword("LIMIT"):
                clauses.append(self._parse_limit())
            elif token.is_keyword("COLLECT"):
                clauses.append(self._parse_collect(bound))
            elif token.is_keyword("RETURN"):
                returning = self._parse_return()
                if not subquery and self.current.type is not TokenType.EOF:
                    raise self._error("content after RETURN")
                return Query(tuple(clauses), returning, self.text if not subquery else "")
            else:
                raise self._error(
                    f"expected a clause keyword, found {token.value!r}"
                )

    _CLAUSE_KEYWORDS = ("FOR", "FILTER", "LET", "SORT", "LIMIT", "COLLECT", "RETURN")

    def _at_subquery(self) -> bool:
        return self.current.is_keyword(*self._CLAUSE_KEYWORDS)

    def _parse_for(self, bound: set[str]) -> ForClause:
        self.expect_keyword("FOR")
        var = self.expect_ident()
        if var in bound:
            raise self._error(f"variable {var!r} is already bound")
        bound.add(var)
        self.expect_keyword("IN")
        source = self.parse_expr()
        return ForClause(var, source)

    def _parse_let(self, bound: set[str]) -> LetClause:
        self.expect_keyword("LET")
        var = self.expect_ident()
        if var in bound:
            raise self._error(f"variable {var!r} is already bound")
        bound.add(var)
        self.expect_punct("=")
        return LetClause(var, self.parse_expr())

    def _parse_sort(self) -> SortClause:
        self.expect_keyword("SORT")
        keys = [self._parse_sort_key()]
        while self.current.is_punct(","):
            self.advance()
            keys.append(self._parse_sort_key())
        return SortClause(tuple(keys))

    def _parse_sort_key(self) -> SortKey:
        expr = self.parse_expr()
        ascending = True
        if self.current.is_keyword("ASC"):
            self.advance()
        elif self.current.is_keyword("DESC"):
            self.advance()
            ascending = False
        return SortKey(expr, ascending)

    def _parse_limit(self) -> LimitClause:
        self.expect_keyword("LIMIT")
        first = self.parse_expr()
        if self.current.is_punct(","):
            self.advance()
            count = self.parse_expr()
            return LimitClause(count, offset=first)
        return LimitClause(first)

    def _parse_collect(self, bound: set[str]) -> CollectClause:
        self.expect_keyword("COLLECT")
        keys: list[tuple[str, Expr]] = []
        while True:
            name = self.expect_ident()
            if name in bound:
                raise self._error(f"variable {name!r} is already bound")
            self.expect_punct("=")
            keys.append((name, self.parse_expr()))
            bound.add(name)
            if self.current.is_punct(","):
                self.advance()
                continue
            break
        aggregations: list[Aggregation] = []
        if self.current.is_keyword("AGGREGATE"):
            self.advance()
            while True:
                var = self.expect_ident()
                if var in bound:
                    raise self._error(f"variable {var!r} is already bound")
                self.expect_punct("=")
                func = self.expect_ident().upper()
                if func not in _AGG_FUNCS:
                    raise self._error(
                        f"unknown aggregate {func!r} (expected one of "
                        f"{sorted(_AGG_FUNCS)})"
                    )
                self.expect_punct("(")
                arg = self.parse_expr()
                self.expect_punct(")")
                aggregations.append(Aggregation(var, func, arg))
                bound.add(var)
                if self.current.is_punct(","):
                    self.advance()
                    continue
                break
        into: str | None = None
        if self.current.is_keyword("INTO"):
            self.advance()
            into = self.expect_ident()
            if into in bound:
                raise self._error(f"variable {into!r} is already bound")
            bound.add(into)
        return CollectClause(tuple(keys), tuple(aggregations), into)

    def _parse_return(self) -> ReturnClause:
        self.expect_keyword("RETURN")
        distinct = False
        if self.current.is_keyword("DISTINCT"):
            self.advance()
            distinct = True
        return ReturnClause(self.parse_expr(), distinct)

    # -- expressions ------------------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.current.is_keyword("OR"):
            self.advance()
            left = Binary("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self.current.is_keyword("AND"):
            self.advance()
            left = Binary("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self.current.is_keyword("NOT"):
            self.advance()
            return Unary("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        token = self.current
        if token.is_punct("==", "!=", "<", "<=", ">", ">="):
            op = self.advance().value
            return Binary(op, left, self._parse_additive())
        if token.is_keyword("IN"):
            self.advance()
            return Binary("IN", left, self._parse_additive())
        if token.is_keyword("LIKE"):
            self.advance()
            return Binary("LIKE", left, self._parse_additive())
        if token.is_keyword("NOT"):
            # NOT IN
            nxt = self.tokens[self.pos + 1] if self.pos + 1 < len(self.tokens) else None
            if nxt is not None and nxt.is_keyword("IN"):
                self.advance()
                self.advance()
                return Unary("NOT", Binary("IN", left, self._parse_additive()))
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self.current.is_punct("+", "-"):
            op = self.advance().value
            left = Binary(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self.current.is_punct("*", "/", "%"):
            op = self.advance().value
            left = Binary(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expr:
        if self.current.is_punct("-"):
            self.advance()
            return Unary("-", self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            if self.current.is_punct("."):
                self.advance()
                if self.current.type is TokenType.IDENT:
                    expr = FieldAccess(expr, self.advance().value)
                elif self.current.type is TokenType.KEYWORD:
                    # allow keyword-looking field names: o.in etc.
                    expr = FieldAccess(expr, self.advance().value.lower())
                else:
                    raise self._error("expected field name after '.'")
            elif self.current.is_punct("["):
                self.advance()
                index = self.parse_expr()
                self.expect_punct("]")
                expr = IndexAccess(expr, index)
            else:
                return expr

    def _parse_primary(self) -> Expr:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            raw = token.value
            value = float(raw) if ("." in raw or "e" in raw or "E" in raw) else int(raw)
            return Literal(value)
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.is_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.is_keyword("NULL"):
            self.advance()
            return Literal(None)
        if token.type is TokenType.PARAM:
            self.advance()
            return ParamRef(token.value)
        if token.type is TokenType.IDENT:
            name = self.advance().value
            if self.current.is_punct("("):
                self.advance()
                args: list[Expr] = []
                if not self.current.is_punct(")"):
                    args.append(self.parse_expr())
                    while self.current.is_punct(","):
                        self.advance()
                        args.append(self.parse_expr())
                self.expect_punct(")")
                return FunctionCall(name.upper(), tuple(args))
            return VarRef(name)
        if token.is_punct("("):
            self.advance()
            if self._at_subquery():
                sub = self.parse_query(subquery=True)
                self.expect_punct(")")
                return Subquery(sub)
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.is_punct("{"):
            return self._parse_object()
        if token.is_punct("["):
            return self._parse_list()
        raise self._error(f"unexpected token {token.value!r}")

    def _parse_object(self) -> Expr:
        self.expect_punct("{")
        fields: list[tuple[str, Expr]] = []
        if not self.current.is_punct("}"):
            while True:
                if self.current.type in (TokenType.IDENT, TokenType.KEYWORD):
                    key = self.advance().value
                elif self.current.type is TokenType.STRING:
                    key = self.advance().value
                else:
                    raise self._error("expected object key")
                if self.current.is_punct(":"):
                    self.advance()
                    fields.append((key, self.parse_expr()))
                else:
                    # {name} shorthand for {name: name}
                    fields.append((key, VarRef(key)))
                if self.current.is_punct(","):
                    self.advance()
                    continue
                break
        self.expect_punct("}")
        return ObjectExpr(tuple(fields))

    def _parse_list(self) -> Expr:
        self.expect_punct("[")
        if self._at_subquery():
            sub = self.parse_query(subquery=True)
            self.expect_punct("]")
            return Subquery(sub)
        items: list[Expr] = []
        if not self.current.is_punct("]"):
            items.append(self.parse_expr())
            while self.current.is_punct(","):
                self.advance()
                items.append(self.parse_expr())
        self.expect_punct("]")
        return ListExpr(tuple(items))
