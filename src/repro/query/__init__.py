"""MMQL — the unified multi-model query language.

The paper observes that "there is no standard multi-model query language
available now"; MMQL is this reproduction's concrete stand-in so the
benchmark's queries are executable, shareable and portable across
drivers.  It is an AQL-style pipeline language::

    FOR c IN customers
      FILTER c.country == "Finland"
      FOR o IN orders
        FILTER o.customer_id == c.id AND o.total > @min_total
        SORT o.total DESC
        LIMIT 5
        RETURN {name: c.name, total: o.total,
                rating: KVGET("feedback", CONCAT(o.product_id, "/", c.id))}

Model bridges: ``TRAVERSE(graph, start, min, max, label)`` for graphs,
``XPATH(tree, path)`` for XML, ``JSONPATH(doc, path)`` for documents,
``KVGET(namespace, key)`` / ``KV(namespace, prefix)`` for key-value.

Public API: :func:`parse` text into a :class:`~repro.query.ast.Query`,
lower it with :func:`~repro.query.planner.plan` to a tree of physical
operators (:mod:`repro.query.physical`) whose expressions are
closure-compiled once (:func:`~repro.query.compile.compile_expr`), run
with :class:`~repro.query.executor.Executor` against any
:class:`~repro.query.context.QueryContext`; drivers resolve plans
through a shared versioned :class:`~repro.query.plancache.PlanCache`.
"""

from repro.query.aggregates import AGGREGATORS, Aggregator
from repro.query.ast import Query
from repro.query.compile import compile_expr
from repro.query.context import QueryContext
from repro.query.executor import Executor, run_query
from repro.query.parser import parse
from repro.query.physical import PhysicalOperator
from repro.query.plancache import PlanCache
from repro.query.planner import ExplainedPlan, plan

__all__ = [
    "AGGREGATORS",
    "Aggregator",
    "ExplainedPlan",
    "Executor",
    "PhysicalOperator",
    "PlanCache",
    "Query",
    "QueryContext",
    "compile_expr",
    "parse",
    "plan",
    "run_query",
]
