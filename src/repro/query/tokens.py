"""MMQL tokenizer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import MMQLSyntaxError

KEYWORDS = {
    "FOR", "IN", "FILTER", "LET", "SORT", "ASC", "DESC", "LIMIT",
    "COLLECT", "AGGREGATE", "RETURN", "DISTINCT", "AND", "OR", "NOT",
    "TRUE", "FALSE", "NULL", "LIKE", "INTO",
}

PUNCTUATION = {
    "==", "!=", "<=", ">=", "<", ">", "+", "-", "*", "/", "%",
    "(", ")", "[", "]", "{", "}", ",", ".", ":", "=", "@",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    PUNCT = "punct"
    PARAM = "param"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def is_punct(self, *values: str) -> bool:
        return self.type is TokenType.PUNCT and self.value in values


def tokenize(text: str) -> list[Token]:
    """Tokenize MMQL text; raises :class:`MMQLSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch.isspace():
            i += 1
            continue
        col = i - line_start + 1
        if text.startswith("//", i):
            end = text.find("\n", i)
            i = n if end == -1 else end
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(), line, col))
            else:
                tokens.append(Token(TokenType.IDENT, word, line, col))
            continue
        if ch.isdigit():
            start = i
            while i < n and text[i].isdigit():
                i += 1
            if i < n and text[i] == "." and i + 1 < n and text[i + 1].isdigit():
                i += 1
                while i < n and text[i].isdigit():
                    i += 1
            if i < n and text[i] in "eE":
                j = i + 1
                if j < n and text[j] in "+-":
                    j += 1
                if j < n and text[j].isdigit():
                    i = j
                    while i < n and text[i].isdigit():
                        i += 1
            tokens.append(Token(TokenType.NUMBER, text[start:i], line, col))
            continue
        if ch in "'\"":
            value, i = _read_string(text, i, line, col)
            tokens.append(Token(TokenType.STRING, value, line, col))
            continue
        if ch == "@":
            i += 1
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            if i == start:
                raise MMQLSyntaxError("'@' must be followed by a name", line, col)
            tokens.append(Token(TokenType.PARAM, text[start:i], line, col))
            continue
        two = text[i : i + 2]
        if two in PUNCTUATION:
            tokens.append(Token(TokenType.PUNCT, two, line, col))
            i += 2
            continue
        if ch in PUNCTUATION:
            tokens.append(Token(TokenType.PUNCT, ch, line, col))
            i += 1
            continue
        raise MMQLSyntaxError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token(TokenType.EOF, "", line, n - line_start + 1))
    return tokens


def _read_string(text: str, i: int, line: int, col: int) -> tuple[str, int]:
    quote = text[i]
    i += 1
    out: list[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == quote:
            return "".join(out), i + 1
        if ch == "\\":
            if i + 1 >= n:
                break
            escape = text[i + 1]
            mapping = {"n": "\n", "t": "\t", "\\": "\\", "'": "'", '"': '"'}
            if escape not in mapping:
                raise MMQLSyntaxError(f"bad escape '\\{escape}'", line, col)
            out.append(mapping[escape])
            i += 2
            continue
        if ch == "\n":
            raise MMQLSyntaxError("unterminated string", line, col)
        out.append(ch)
        i += 1
    raise MMQLSyntaxError("unterminated string", line, col)
