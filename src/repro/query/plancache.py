"""A versioned, parameter-insensitive LRU cache of planned MMQL queries.

``Executor.execute`` used to call ``plan()`` unconditionally, so every
repeated query re-parsed and re-optimised its text; subquery plans were
pinned forever in ``Executor._subplans`` keyed by ``id()`` — a leak that
could even collide after garbage collection.  :class:`PlanCache` fixes
both, and (since E14) behaves like a **prepared-statement cache**: query
text is parsed once, its literals are normalised into synthetic
parameters (:func:`~repro.query.planner.parameterize`), and the cache
keys plans by the resulting *shape*, so ``FILTER o.status == 'new'`` and
``== 'paid'`` resolve to one cached plan.  Each lookup returns a
:class:`PreparedPlan` — the shared plan plus the caller's literal vector,
which travels to execution like statement arguments.

Two levels of bookkeeping:

- ``_texts``: text → (shape key, binds).  A parse memo, so the warm
  path for repeated text is two dict lookups — no parse, no literal
  extraction.
- ``_entries``: shape key → :class:`ExplainedPlan`.  The bounded LRU of
  actual plans.  Hits/misses are counted here, so a *new* text that
  resolves to an already-cached shape counts as a hit — that is the
  prepared-statement win the E14 golden test asserts.

Already-parsed :class:`Query` values (subqueries, constructed ASTs) skip
parameterization and cache by AST value, exactly as before.

Versioning: the *catalog epoch* is a monotonically increasing counter
bumped by DDL that changes planning inputs — index create/drop
(:attr:`MultiModelDatabase.catalog_epoch`) and shard-map registration
(:attr:`ShardRouter.epoch`).  The epoch is part of every key, so a bump
makes older plans (and text memos) unreachable; stale entries are also
purged eagerly the first time a newer epoch is seen.

Plans are immutable operator trees (frozen dataclasses with compiled
expression closures attached at construction) and are therefore safe to
share across threads; the cache's own bookkeeping is lock-protected.
Planning happens outside the lock — two racing threads may both plan a
cold shape, and the last insert wins, which is harmless because equal
keys produce equivalent plans.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.query.ast import Query
from repro.query.parser import parse
from repro.query.planner import ExplainedPlan, parameterize, plan


@dataclass(frozen=True)
class PreparedPlan:
    """A cache lookup result: the shared plan + this caller's literals.

    ``binds`` maps synthetic parameter names (``%p0``, ``%p1``, …) to the
    literal values extracted from the original text; the executor merges
    them under the user's parameters at run time.  AST-keyed lookups have
    empty binds.
    """

    plan: ExplainedPlan
    binds: dict[str, Any] = field(default_factory=dict)

    @property
    def root(self):
        return self.plan.root

    @property
    def query(self) -> Query:
        return self.plan.query

    @property
    def notes(self) -> tuple[str, ...]:
        return self.plan.notes

    def describe(self, header: str = "plan:") -> str:
        text = self.plan.describe(header)
        if self.binds:
            rendered = ", ".join(f"@{k}={v!r}" for k, v in self.binds.items())
            text += f"\nbinds: {rendered}"
        return text


class PlanCache:
    """Bounded LRU map of planned query shapes, invalidated by epoch."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        # text key -> (shape key, binds): the parse/parameterize memo.
        self._texts: OrderedDict[Hashable, tuple[Hashable, dict[str, Any]]] = (
            OrderedDict()
        )
        # shape or AST key -> plan: the actual plan LRU.
        self._entries: OrderedDict[Hashable, ExplainedPlan] = OrderedDict()
        self._lock = threading.Lock()
        self._epoch_seen = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        # Warm-text resolutions through the parse/parameterize memo —
        # the "no parse happened at all" wins, distinct from plan hits
        # (a new text can plan-hit an already-cached shape cold).
        self.memo_hits = 0

    # -- lookup ---------------------------------------------------------------

    def get_or_plan(
        self,
        query: Query | str,
        catalog: Any = None,
        epoch: int = 0,
        use_indexes: bool = True,
    ) -> PreparedPlan:
        """The cached plan for *query*, planning (and caching) on a miss.

        *query* may be MMQL text — parsed and literal-parameterized only
        the first time that exact text is seen; afterwards the warm path
        is two dict lookups — or an already-parsed :class:`Query`
        (subqueries cache per value-equal AST, so equal sub-pipelines
        share one plan and nothing is keyed by ``id()``).
        """
        if isinstance(query, str):
            text_key = ("text", query, epoch, use_indexes)
            with self._lock:
                self._purge_stale(epoch)
                memo = self._texts.get(text_key)
            if memo is None:
                shape, binds = parameterize(parse(query))
                key = self._shape_key(shape, epoch, use_indexes)
                if key is None:
                    # Unhashable pinned literal: plan uncached.
                    return PreparedPlan(plan(shape, catalog), binds)
                with self._lock:
                    self._texts[text_key] = (key, binds)
                    while len(self._texts) > 4 * self.capacity:
                        self._texts.popitem(last=False)
            else:
                key, binds = memo
                shape = None
                self.memo_hits += 1
            with self._lock:
                cached = self._entries.get(key)
                if cached is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return PreparedPlan(cached, binds)
                self.misses += 1
            if shape is None:
                shape, _ = parameterize(parse(query))
            planned = plan(shape, catalog)
            self._insert(key, planned)
            return PreparedPlan(planned, binds)

        key = self._shape_key(query, epoch, use_indexes, tag="ast")
        if key is None:
            # Unhashable literal somewhere in a constructed AST: plan
            # uncached rather than refuse the query.
            return PreparedPlan(plan(query, catalog))
        with self._lock:
            self._purge_stale(epoch)
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return PreparedPlan(cached)
            self.misses += 1
        planned = plan(query, catalog)
        self._insert(key, planned)
        return PreparedPlan(planned)

    def peek(
        self, query: Query | str, epoch: int = 0, use_indexes: bool = True
    ) -> PreparedPlan | None:
        """The cached plan if present — no planning, no LRU promotion.

        Text lookups resolve through the parse memo only (a text never
        seen by :meth:`get_or_plan` peeks as absent even when a
        shape-equal plan exists — peeking must not parse).
        """
        if isinstance(query, str):
            with self._lock:
                memo = self._texts.get(("text", query, epoch, use_indexes))
                if memo is None:
                    return None
                key, binds = memo
                cached = self._entries.get(key)
                return None if cached is None else PreparedPlan(cached, binds)
        key = self._shape_key(query, epoch, use_indexes, tag="ast")
        if key is None:
            return None
        with self._lock:
            cached = self._entries.get(key)
            return None if cached is None else PreparedPlan(cached)

    # -- maintenance ----------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._texts.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "texts": len(self._texts),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "memo_hits": self.memo_hits,
            }

    def shape_id(
        self, text: str, epoch: int = 0, use_indexes: bool = True
    ) -> str | None:
        """A compact id of *text*'s normalized (literal-parameterized) shape.

        Literal-differing instances of one query shape get the same id,
        so the slow-query log can aggregate them.  Resolved through the
        parse memo only (no parsing; ``None`` for never-executed text)
        and derived from the shape key's hash — stable within a process,
        not across processes (``PYTHONHASHSEED``).
        """
        with self._lock:
            memo = self._texts.get(("text", text, epoch, use_indexes))
        if memo is None:
            return None
        return f"{hash(memo[0]) & 0xFFFFFFFFFFFFFFFF:016x}"

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _shape_key(
        query: Query, epoch: int, use_indexes: bool, tag: str = "shape"
    ) -> Hashable | None:
        try:
            hash(query)
        except TypeError:
            return None
        return (tag, query, epoch, use_indexes)

    def _insert(self, key: Hashable, planned: ExplainedPlan) -> None:
        with self._lock:
            self._entries[key] = planned
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def _purge_stale(self, epoch: int) -> None:
        """Drop every entry keyed under an older epoch (lock held).

        Epoch-in-key already makes stale plans unreachable; purging
        keeps them from occupying LRU slots until natural eviction.
        """
        if epoch <= self._epoch_seen:
            return
        self._epoch_seen = epoch
        for entries in (self._entries, self._texts):
            stale = [key for key in entries if key[2] != epoch]
            for key in stale:
                del entries[key]
            self.invalidations += len(stale)
