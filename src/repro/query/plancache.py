"""A versioned LRU cache of planned MMQL queries.

``Executor.execute`` used to call ``plan()`` unconditionally, so every
repeated query re-parsed and re-optimised its text; subquery plans were
pinned forever in ``Executor._subplans`` keyed by ``id()`` — a leak that
could even collide after garbage collection.  :class:`PlanCache` fixes
both: one bounded LRU map from ``(query, catalog epoch, use_indexes)``
to the planned operator tree, owned by the driver (shared across every
query and subquery it runs) or privately by a standalone executor.

Versioning: the *catalog epoch* is a monotonically increasing counter
bumped by DDL that changes planning inputs — index create/drop
(:attr:`MultiModelDatabase.catalog_epoch`) and shard-map registration
(:attr:`ShardRouter.epoch`).  The epoch is part of the cache key, so a
bump makes every older plan unreachable; stale entries are also purged
eagerly the first time a newer epoch is seen, so the cache never holds
dead plans.

Plans are immutable operator trees (frozen dataclasses with compiled
expression closures attached at construction) and are therefore safe to
share across threads; the cache's own bookkeeping is lock-protected.
Planning happens outside the lock — two racing threads may both plan a
cold query, and the last insert wins, which is harmless because equal
keys produce equivalent plans.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

from repro.query.ast import Query
from repro.query.parser import parse
from repro.query.planner import ExplainedPlan, plan


class PlanCache:
    """Bounded LRU map of planned queries, invalidated by catalog epoch."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, ExplainedPlan] = OrderedDict()
        self._lock = threading.Lock()
        self._epoch_seen = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # -- lookup ---------------------------------------------------------------

    def get_or_plan(
        self,
        query: Query | str,
        catalog: Any = None,
        epoch: int = 0,
        use_indexes: bool = True,
    ) -> ExplainedPlan:
        """The cached plan for *query*, planning (and caching) on a miss.

        *query* may be MMQL text (parsed only on a miss — the cache-hit
        path skips the parser entirely) or an already-parsed
        :class:`Query` (subqueries cache per value-equal AST, so equal
        sub-pipelines share one plan and nothing is keyed by ``id()``).
        """
        key = self._key(query, epoch, use_indexes)
        if key is None:
            # Unhashable literal somewhere in a constructed AST: plan
            # uncached rather than refuse the query.
            return plan(query if isinstance(query, Query) else parse(query), catalog)
        with self._lock:
            self._purge_stale(epoch)
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
        planned = plan(query if isinstance(query, Query) else parse(query), catalog)
        with self._lock:
            self._entries[key] = planned
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return planned

    def peek(
        self, query: Query | str, epoch: int = 0, use_indexes: bool = True
    ) -> ExplainedPlan | None:
        """The cached plan if present — no planning, no LRU promotion."""
        key = self._key(query, epoch, use_indexes)
        if key is None:
            return None
        with self._lock:
            return self._entries.get(key)

    # -- maintenance ----------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _key(query: Query | str, epoch: int, use_indexes: bool) -> Hashable | None:
        if isinstance(query, str):
            return ("text", query, epoch, use_indexes)
        try:
            hash(query)
        except TypeError:
            return None
        return ("ast", query, epoch, use_indexes)

    def _purge_stale(self, epoch: int) -> None:
        """Drop every entry keyed under an older epoch (lock held).

        Epoch-in-key already makes stale plans unreachable; purging
        keeps them from occupying LRU slots until natural eviction.
        """
        if epoch <= self._epoch_seen:
            return
        self._epoch_seen = epoch
        stale = [key for key in self._entries if key[2] != epoch]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
