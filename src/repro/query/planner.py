"""MMQL planner: logical → physical lowering with a rule-based optimizer.

``plan()`` turns the parsed clause list (the logical plan) into a tree of
physical operators (:mod:`repro.query.physical`) that the executor pulls
bindings through.  The contract:

1. **Predicate pushdown** — every FILTER is split into its AND-conjuncts
   and each cheap conjunct is hoisted (as a speculative copy whose strict
   original stays in place) to the earliest point of its FOR/LET/FILTER
   segment where all its variables are bound — never across SORT, LIMIT
   or COLLECT, which re-shape the stream.
2. **Dead-binding pruning** — LET bindings that no downstream clause or
   RETURN uses are dropped, so their expressions are never evaluated.
3. **Access-path selection** — each ``FOR var IN collection`` gets one of
   three access paths: an equality index probe when an adjacent filter
   has ``var.field == expr`` with *expr* already bound, a sorted-index
   range scan when adjacent filters bound ``var.field`` with ``<`` /
   ``<=`` / ``>`` / ``>=`` (AND-ed intervals combine into one scan), or a
   full collection scan.  Fields may be dotted paths (``address.city``).
   The chosen path is advisory: the executor falls back to a scan when
   the context has no matching index, and the original predicates remain
   as residual filters, so over-approximating access paths stay correct.
4. **TopK fusion** — SORT immediately followed by LIMIT becomes a single
   bounded-heap TopK operator instead of a full materialising sort.
5. **Operator fusion** — after sharding, maximal straight-line chains of
   bind/filter/let/project collapse into :class:`FusedPipeline` nodes
   (:func:`repro.query.physical.fuse_pipelines`) whose per-batch closure
   chains drop the remaining per-row operator hops.

:func:`parameterize` is the prepared-statement half of the plan cache:
it normalises literals into synthetic parameters so literal-differing
query texts share one plan *shape* (and one cached plan), with the bound
literal vector travelling alongside the lookup like statement arguments.

``plan()`` returns an :class:`ExplainedPlan` carrying both the annotated
logical clauses (``.query``, with ``index_hint``/``range_hint`` on each
FOR for introspection) and the physical tree (``.root``);  ``describe()``
renders the physical operator tree with the chosen access paths — the
benchmark's EXPLAIN facility.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.query import physical
from repro.query.ast import (
    Binary,
    Clause,
    CollectClause,
    Expr,
    FieldAccess,
    FilterClause,
    ForClause,
    FunctionCall,
    IndexAccess,
    IndexHint,
    LetClause,
    LimitClause,
    ListExpr,
    Literal,
    ObjectExpr,
    ParamRef,
    Query,
    RangeHint,
    ReturnClause,
    SortClause,
    SortKey,
    Unary,
    VarRef,
    free_variables,
)
from repro.query.physical import (
    AccessPath,
    CollectionScan,
    ExpressionSource,
    Filter,
    HashAggregate,
    IndexEqLookup,
    IndexRangeScan,
    Let,
    Limit,
    NestedLoopBind,
    PhysicalOperator,
    Project,
    Sort,
    TopK,
    field_path,
    fuse_pipelines,
    render_expr,
)


@dataclass(frozen=True)
class ExplainedPlan:
    """A planned query: annotated logical clauses + the physical tree."""

    query: Query
    notes: tuple[str, ...]
    root: PhysicalOperator

    def describe(self, header: str = "plan:") -> str:
        """Render the physical tree; *header* lets EXPLAIN mark cache hits
        (``plan: cached epoch=N``)."""
        lines = [header]
        lines.extend("  " + line for line in physical.explain_tree(self.root))
        if self.notes:
            lines.append("notes:")
            lines.extend(f"  - {note}" for note in self.notes)
        return "\n".join(lines)


def plan(query: Query, catalog: Any = None) -> ExplainedPlan:
    """Optimise *query* and lower it to a physical operator tree.

    *catalog* (a :class:`~repro.cluster.partition.ShardRouter`, or any
    object with ``is_sharded``/``shard_key``/``n_shards``) enables the
    shard-aware phase: the bottom pipeline segment is rewritten into a
    scatter-gather ShardExec with shard-key routing and per-shard
    sort/top-k pushdown.  Without a catalog the plan is single-node and
    byte-identical to previous behaviour.
    """
    notes: list[str] = []
    clauses = _push_down_filters(list(query.clauses), notes)
    clauses = _prune_dead_lets(clauses, query.returning, notes)
    clauses = _select_access_paths(clauses, notes)
    annotated = Query(tuple(clauses), query.returning, query.text)
    root = _lower(annotated, notes)
    if catalog is not None:
        from repro.cluster.planning import apply_sharding

        root = apply_sharding(root, catalog, notes)
    # Fusion runs last: the sharding rewriter above pattern-matches the
    # unfused operator spine, and fusion recurses into its subplans.
    root = fuse_pipelines(root, notes)
    return ExplainedPlan(annotated, tuple(notes), root)


# ---------------------------------------------------------------------------
# Literal parameterization (prepared-statement plan sharing)
# ---------------------------------------------------------------------------

# Synthetic parameter names start with a character the parser rejects in
# @refs, so they can never collide with user-supplied parameters.
SHAPE_PARAM_PREFIX = "%p"


def parameterize(query: Query) -> tuple[Query, dict[str, Any]]:
    """Normalise literals into synthetic parameters (``@%pN``).

    Returns the *shape* query plus the extracted literal vector.  Two
    texts differing only in literals produce value-equal shapes, so the
    plan cache stores one plan and replays it with different binds —
    prepared-statement semantics without a PREPARE step.

    Literals whose value feeds *plan-time* compilation are pinned (kept
    inline) rather than extracted, so queries that genuinely need
    different plans never falsely share one.  Today that is the RHS of
    ``LIKE``: a literal pattern compiles to a cached regex inside the
    plan's closures.  Subquery bodies are left untouched — inner queries
    cache by AST value through the same cache.
    """
    binds: dict[str, Any] = {}

    def fresh(value: Any) -> ParamRef:
        name = f"{SHAPE_PARAM_PREFIX}{len(binds)}"
        binds[name] = value
        return ParamRef(name)

    def rewrite(expr: Expr) -> Expr:
        if isinstance(expr, Literal):
            return fresh(expr.value)
        if isinstance(expr, Binary):
            if expr.op == "LIKE" and isinstance(expr.right, Literal):
                return Binary(expr.op, rewrite(expr.left), expr.right)
            return Binary(expr.op, rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, Unary):
            return Unary(expr.op, rewrite(expr.operand))
        if isinstance(expr, FieldAccess):
            return FieldAccess(rewrite(expr.base), expr.field)
        if isinstance(expr, IndexAccess):
            return IndexAccess(rewrite(expr.base), rewrite(expr.index))
        if isinstance(expr, FunctionCall):
            return FunctionCall(expr.name, tuple(rewrite(a) for a in expr.args))
        if isinstance(expr, ListExpr):
            return ListExpr(tuple(rewrite(item) for item in expr.items))
        if isinstance(expr, ObjectExpr):
            return ObjectExpr(
                tuple((name, rewrite(value)) for name, value in expr.fields)
            )
        # VarRef, ParamRef, Subquery (cached separately by AST value).
        return expr

    def rewrite_clause(clause: Clause) -> Clause:
        if isinstance(clause, ForClause):
            return replace(clause, source=rewrite(clause.source))
        if isinstance(clause, FilterClause):
            return replace(clause, condition=rewrite(clause.condition))
        if isinstance(clause, LetClause):
            return replace(clause, value=rewrite(clause.value))
        if isinstance(clause, SortClause):
            return SortClause(
                tuple(SortKey(rewrite(k.expr), k.ascending) for k in clause.keys)
            )
        if isinstance(clause, LimitClause):
            return LimitClause(
                rewrite(clause.count),
                rewrite(clause.offset) if clause.offset is not None else None,
            )
        if isinstance(clause, CollectClause):
            return CollectClause(
                tuple((name, rewrite(expr)) for name, expr in clause.keys),
                tuple(
                    replace(agg, arg=rewrite(agg.arg))
                    for agg in clause.aggregations
                ),
                clause.into,
            )
        return clause

    shape = Query(
        tuple(rewrite_clause(c) for c in query.clauses),
        replace(query.returning, expr=rewrite(query.returning.expr)),
        query.text,
    )
    return shape, binds


# ---------------------------------------------------------------------------
# Rule 1 — predicate pushdown
# ---------------------------------------------------------------------------


def _push_down_filters(clauses: list[Clause], notes: list[str]) -> list[Clause]:
    """Split FILTERs into conjuncts; hoist each to its earliest safe slot.

    Operates per maximal FOR/LET/FILTER segment — SORT, LIMIT and COLLECT
    are barriers because a filter does not commute with them.  A hoisted
    conjunct is a *speculative copy*: the strict original stays at its
    position, so AND short-circuiting and empty inner FORs still shield
    erroring predicates exactly as the interpreter's evaluation order
    would (the copy prunes on clean false, defers on error), and the
    surviving bindings are provably identical.
    """
    out: list[Clause] = []
    bound: set[str] = set()
    i = 0
    n = len(clauses)
    while i < n:
        clause = clauses[i]
        if isinstance(clause, (SortClause, LimitClause)):
            out.append(clause)
            i += 1
            continue
        if isinstance(clause, CollectClause):
            out.append(clause)
            bound = {name for name, _ in clause.keys}
            bound |= {a.var for a in clause.aggregations}
            if clause.into:
                bound.add(clause.into)
            i += 1
            continue
        segment: list[Clause] = []
        while i < n and isinstance(clauses[i], (ForClause, LetClause, FilterClause)):
            segment.append(clauses[i])
            i += 1
        out.extend(_reorder_segment(segment, bound, notes))
        for c in segment:
            if isinstance(c, (ForClause, LetClause)):
                bound.add(c.var)
    return out


def _reorder_segment(
    segment: list[Clause], bound_before: set[str], notes: list[str]
) -> list[Clause]:
    producers = [c for c in segment if isinstance(c, (ForClause, LetClause))]
    # bound_at[k] = variables available after the first k producers.
    bound_at = [set(bound_before)]
    for producer in producers:
        bound_at.append(bound_at[-1] | {producer.var})
    # slots[k] = filters to run after the first k producers.
    slots: list[list[FilterClause]] = [[] for _ in range(len(producers) + 1)]
    producer_seen = 0
    for clause in segment:
        if isinstance(clause, (ForClause, LetClause)):
            producer_seen += 1
            continue
        assert isinstance(clause, FilterClause)
        for conjunct in _conjuncts(clause.condition):
            needed = free_variables(conjunct)
            slot = producer_seen
            if _is_cheap(conjunct):
                for k in range(producer_seen + 1):
                    if needed <= bound_at[k]:
                        slot = k
                        break
            if slot < producer_seen:
                notes.append(
                    f"pushdown: FILTER {render_expr(conjunct)} hoisted before "
                    f"{type(producers[slot]).__name__.replace('Clause', '').upper()} "
                    f"{producers[slot].var}"
                )
                slots[slot].append(FilterClause(conjunct, speculative=True))
            slots[producer_seen].append(FilterClause(conjunct))
    reordered: list[Clause] = list(slots[0])
    for k, producer in enumerate(producers):
        reordered.append(producer)
        reordered.extend(slots[k + 1])
    return reordered


def _conjuncts(expr: Expr) -> list[Expr]:
    if isinstance(expr, Binary) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


_CHEAP_OPS = frozenset({"==", "!=", "<", "<=", ">", ">=", "LIKE", "AND", "OR"})


def _is_cheap(expr: Expr) -> bool:
    """True when *expr* is cheap enough to evaluate twice.

    Hoisted conjuncts run speculatively AND again at their original
    position, so hoisting only pays for inexpensive predicates:
    comparisons and boolean logic over literals, parameters and field
    paths.  Function calls, subqueries and arithmetic stay where the
    query wrote them.
    """
    if isinstance(expr, (Literal, VarRef, ParamRef)):
        return True
    if isinstance(expr, FieldAccess):
        return _is_cheap(expr.base)
    if isinstance(expr, Binary):
        return (
            expr.op in _CHEAP_OPS
            and _is_cheap(expr.left)
            and _is_cheap(expr.right)
        )
    if isinstance(expr, Unary):
        return expr.op == "NOT" and _is_cheap(expr.operand)
    return False


# ---------------------------------------------------------------------------
# Rule 2 — dead-binding pruning
# ---------------------------------------------------------------------------


def _prune_dead_lets(
    clauses: list[Clause], returning: ReturnClause, notes: list[str]
) -> list[Clause]:
    """Drop LET clauses whose variable nothing downstream reads.

    A backward liveness pass; COLLECT resets liveness to its own inputs
    (its output bindings carry only keys/aggregates/INTO), and COLLECT
    INTO makes every upstream binding live because the INTO groups embed
    whole bindings.
    """
    keep: list[bool] = [True] * len(clauses)
    live = set(free_variables(returning.expr))
    all_live = False
    for idx in range(len(clauses) - 1, -1, -1):
        clause = clauses[idx]
        if isinstance(clause, SortClause):
            for key in clause.keys:
                live |= free_variables(key.expr)
        elif isinstance(clause, LimitClause):
            live |= free_variables(clause.count)
            if clause.offset is not None:
                live |= free_variables(clause.offset)
        elif isinstance(clause, CollectClause):
            collect_reads: set[str] = set()
            for _, expr in clause.keys:
                collect_reads |= free_variables(expr)
            for agg in clause.aggregations:
                collect_reads |= free_variables(agg.arg)
            live = collect_reads
            all_live = clause.into is not None
        elif isinstance(clause, FilterClause):
            live |= free_variables(clause.condition)
        elif isinstance(clause, ForClause):
            live.discard(clause.var)
            live |= free_variables(clause.source)
        elif isinstance(clause, LetClause):
            if clause.var not in live and not all_live:
                keep[idx] = False
                notes.append(f"pruned unused LET {clause.var}")
                continue
            live.discard(clause.var)
            live |= free_variables(clause.value)
    return [clause for idx, clause in enumerate(clauses) if keep[idx]]


# ---------------------------------------------------------------------------
# Rule 3 — access-path selection
# ---------------------------------------------------------------------------


def _select_access_paths(clauses: list[Clause], notes: list[str]) -> list[Clause]:
    """Annotate each collection FOR with its best index hint, if any."""
    clauses = list(clauses)
    bound: set[str] = set()
    for i, clause in enumerate(clauses):
        if isinstance(clause, ForClause):
            if isinstance(clause.source, VarRef) and clause.source.name not in bound:
                hint = _find_eq_hint(clauses, i, clause, bound)
                if hint is not None:
                    clauses[i] = replace(clause, index_hint=hint)
                    notes.append(
                        f"FOR {clause.var}: candidate index "
                        f"{hint.collection}.{hint.field} (equality)"
                    )
                else:
                    range_hint = _find_range_hint(clauses, i, clause, bound)
                    if range_hint is not None:
                        clauses[i] = replace(clause, range_hint=range_hint)
                        notes.append(
                            f"FOR {clause.var}: candidate range index "
                            f"{range_hint.collection}.{range_hint.field}"
                        )
            bound.add(clause.var)
        elif isinstance(clause, LetClause):
            bound.add(clause.var)
        elif isinstance(clause, CollectClause):
            bound = {name for name, _ in clause.keys}
            bound |= {a.var for a in clause.aggregations}
            if clause.into:
                bound.add(clause.into)
    return clauses


def _lookahead_filters(clauses: list[Clause], for_index: int) -> list[FilterClause]:
    """The FILTERs that still restrict this FOR's scan 1:1.

    Stops at the next clause that re-shapes the stream (another FOR, a
    COLLECT, SORT or LIMIT); LETs are transparent.
    """
    filters: list[FilterClause] = []
    for clause in clauses[for_index + 1 :]:
        if isinstance(clause, FilterClause):
            filters.append(clause)
        elif isinstance(clause, LetClause):
            continue
        else:
            break
    return filters


def _find_eq_hint(
    clauses: list[Clause], for_index: int, for_clause: ForClause, bound: set[str]
) -> IndexHint | None:
    assert isinstance(for_clause.source, VarRef)
    collection = for_clause.source.name
    var = for_clause.var
    for clause in _lookahead_filters(clauses, for_index):
        hint = _equality_on(clause.condition, var, collection, bound)
        if hint is not None:
            return hint
    return None


def _equality_on(
    expr: Expr, var: str, collection: str, bound: set[str]
) -> IndexHint | None:
    """Find ``var.field == key`` (or reversed) inside an AND-tree."""
    if isinstance(expr, Binary) and expr.op == "AND":
        return _equality_on(expr.left, var, collection, bound) or _equality_on(
            expr.right, var, collection, bound
        )
    if not (isinstance(expr, Binary) and expr.op == "=="):
        return None
    for lhs, rhs in ((expr.left, expr.right), (expr.right, expr.left)):
        path = field_path(lhs, var)
        if path is not None and free_variables(rhs) <= bound:
            return IndexHint(collection, path, rhs)
    return None


def _find_range_hint(
    clauses: list[Clause], for_index: int, for_clause: ForClause, bound: set[str]
) -> RangeHint | None:
    """Combine inequality predicates into one interval per field.

    Bounds accumulate across *all* adjacent filters (pushdown has already
    split AND-trees into separate FILTER clauses), so ``x >= 10`` and
    ``x < 50`` merge into a single half-open range scan.  The field whose
    interval is bounded on both sides wins; otherwise the first bounded
    field found.
    """
    assert isinstance(for_clause.source, VarRef)
    collection = for_clause.source.name
    var = for_clause.var
    bounds: dict[str, RangeHint] = {}
    for clause in _lookahead_filters(clauses, for_index):
        _collect_inequalities(clause.condition, var, collection, bound, bounds)
    candidates = [
        hint for hint in bounds.values()
        if hint.low_expr is not None or hint.high_expr is not None
    ]
    if not candidates:
        return None
    for hint in candidates:
        if hint.low_expr is not None and hint.high_expr is not None:
            return hint
    return candidates[0]


def _collect_inequalities(
    expr: Expr, var: str, collection: str, bound: set[str],
    bounds: dict[str, RangeHint],
) -> None:
    if isinstance(expr, Binary) and expr.op == "AND":
        _collect_inequalities(expr.left, var, collection, bound, bounds)
        _collect_inequalities(expr.right, var, collection, bound, bounds)
        return
    if not (isinstance(expr, Binary) and expr.op in ("<", "<=", ">", ">=")):
        return
    for lhs, rhs, op in (
        (expr.left, expr.right, expr.op),
        (expr.right, expr.left, _flip(expr.op)),
    ):
        path = field_path(lhs, var)
        if path is not None and free_variables(rhs) <= bound:
            current = bounds.get(path, RangeHint(collection, path))
            if op in (">", ">="):
                current = replace(current, low_expr=rhs, include_low=(op == ">="))
            else:
                current = replace(current, high_expr=rhs, include_high=(op == "<="))
            bounds[path] = current
            return


def _flip(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]


# ---------------------------------------------------------------------------
# Rule 4 + lowering — physical operator tree (with SORT+LIMIT fusion)
# ---------------------------------------------------------------------------


def _lower(query: Query, notes: list[str]) -> PhysicalOperator:
    node: PhysicalOperator | None = None
    bound: set[str] = set()
    clauses = query.clauses
    i = 0
    while i < len(clauses):
        clause = clauses[i]
        if isinstance(clause, ForClause):
            node = NestedLoopBind(clause.var, _access_path(clause, bound), node)
            bound.add(clause.var)
        elif isinstance(clause, FilterClause):
            node = Filter(clause.condition, node, clause.speculative)
        elif isinstance(clause, LetClause):
            node = Let(clause.var, clause.value, node)
            bound.add(clause.var)
        elif isinstance(clause, SortClause):
            nxt = clauses[i + 1] if i + 1 < len(clauses) else None
            if isinstance(nxt, LimitClause):
                node = TopK(clause.keys, nxt.count, nxt.offset, node)
                notes.append("fused SORT+LIMIT into bounded-heap TopK")
                i += 2
                continue
            node = Sort(clause.keys, node)
        elif isinstance(clause, LimitClause):
            node = Limit(clause.count, clause.offset, node)
        elif isinstance(clause, CollectClause):
            # Single-phase lowering; the cluster rewrite may later split
            # this into partial (below the gather) + final (above it).
            node = HashAggregate(clause, child=node)
            bound = {name for name, _ in clause.keys}
            bound |= {a.var for a in clause.aggregations}
            if clause.into:
                bound.add(clause.into)
        else:
            raise AssertionError(f"unknown clause {type(clause).__name__}")
        i += 1
    return Project(query.returning, node)


def _access_path(clause: ForClause, bound: set[str]) -> AccessPath:
    source = clause.source
    if isinstance(source, VarRef) and source.name in bound:
        return ExpressionSource(source, is_var=True)
    if isinstance(source, VarRef):
        if clause.index_hint is not None:
            hint = clause.index_hint
            return IndexEqLookup(hint.collection, hint.field, hint.key_expr)
        if clause.range_hint is not None:
            rh = clause.range_hint
            return IndexRangeScan(
                rh.collection, rh.field,
                rh.low_expr, rh.high_expr, rh.include_low, rh.include_high,
            )
        return CollectionScan(source.name)
    return ExpressionSource(source)
