"""MMQL planner: index-hint placement and light rewrites.

The planner's job is deliberately small (the executor is an interpreting
pipeline): it walks the clause list and, for every ``FOR var IN
collection`` whose *next applicable* FILTER contains an equality
``var.field == expr`` where *expr* depends only on previously bound
variables, attaches an :class:`~repro.query.ast.IndexHint`.  The executor
asks the context for a matching index at runtime and falls back to a scan
when there is none — so hint placement is always safe.

``plan()`` returns an :class:`ExplainedPlan` whose ``describe()`` output
is the benchmark's EXPLAIN facility.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.query.ast import (
    Binary,
    Clause,
    CollectClause,
    Expr,
    FieldAccess,
    FilterClause,
    ForClause,
    IndexHint,
    LetClause,
    LimitClause,
    Query,
    RangeHint,
    SortClause,
    VarRef,
    free_variables,
)


@dataclass(frozen=True)
class ExplainedPlan:
    """A planned query plus a human-readable description."""

    query: Query
    notes: tuple[str, ...]

    def describe(self) -> str:
        lines = ["plan:"]
        for clause in self.query.clauses:
            lines.append(f"  {_describe_clause(clause)}")
        lines.append(f"  RETURN{' DISTINCT' if self.query.returning.distinct else ''}")
        if self.notes:
            lines.append("notes:")
            lines.extend(f"  - {note}" for note in self.notes)
        return "\n".join(lines)


def plan(query: Query) -> ExplainedPlan:
    """Annotate *query* with index hints; returns an ExplainedPlan."""
    clauses = list(query.clauses)
    notes: list[str] = []
    bound: set[str] = set()
    for i, clause in enumerate(clauses):
        if isinstance(clause, ForClause):
            if isinstance(clause.source, VarRef) and clause.source.name not in bound:
                hint = _find_hint(clauses, i, clause, bound)
                if hint is not None:
                    clauses[i] = replace(clause, index_hint=hint)
                    notes.append(
                        f"FOR {clause.var}: candidate index "
                        f"{hint.collection}.{hint.field} (equality)"
                    )
                else:
                    range_hint = _find_range_hint(clauses, i, clause, bound)
                    if range_hint is not None:
                        clauses[i] = replace(clause, range_hint=range_hint)
                        notes.append(
                            f"FOR {clause.var}: candidate range index "
                            f"{range_hint.collection}.{range_hint.field}"
                        )
            bound.add(clause.var)
        elif isinstance(clause, LetClause):
            bound.add(clause.var)
        elif isinstance(clause, CollectClause):
            bound = {name for name, _ in clause.keys}
            bound |= {a.var for a in clause.aggregations}
            if clause.into:
                bound.add(clause.into)
    return ExplainedPlan(
        Query(tuple(clauses), query.returning, query.text), tuple(notes)
    )


def _find_hint(
    clauses: list[Clause], for_index: int, for_clause: ForClause, bound: set[str]
) -> IndexHint | None:
    """Scan forward for an equality filter answerable by an index.

    Stops at the next clause that re-shapes the stream (another FOR, a
    COLLECT, SORT or LIMIT) because beyond that point a filter no longer
    restricts this FOR's scan 1:1.
    """
    assert isinstance(for_clause.source, VarRef)
    collection = for_clause.source.name
    var = for_clause.var
    for clause in clauses[for_index + 1 :]:
        if isinstance(clause, FilterClause):
            hint = _equality_on(clause.condition, var, collection, bound)
            if hint is not None:
                return hint
        elif isinstance(clause, LetClause):
            continue
        else:
            return None
    return None


def _equality_on(
    expr: Expr, var: str, collection: str, bound: set[str]
) -> IndexHint | None:
    """Find ``var.field == key`` (or reversed) inside an AND-tree."""
    if isinstance(expr, Binary) and expr.op == "AND":
        return _equality_on(expr.left, var, collection, bound) or _equality_on(
            expr.right, var, collection, bound
        )
    if not (isinstance(expr, Binary) and expr.op == "=="):
        return None
    for lhs, rhs in ((expr.left, expr.right), (expr.right, expr.left)):
        if (
            isinstance(lhs, FieldAccess)
            and isinstance(lhs.base, VarRef)
            and lhs.base.name == var
            and free_variables(rhs) <= bound
        ):
            return IndexHint(collection, lhs.field, rhs)
    return None


def _find_range_hint(
    clauses: list[Clause], for_index: int, for_clause: ForClause, bound: set[str]
) -> RangeHint | None:
    """Scan forward for inequality filters answerable by a sorted index.

    Collects ``var.field < / <= / > / >= key`` comparisons on one field
    from the first applicable filter's AND-tree; stops at stream-reshaping
    clauses like :func:`_find_hint` does.
    """
    assert isinstance(for_clause.source, VarRef)
    collection = for_clause.source.name
    var = for_clause.var
    for clause in clauses[for_index + 1 :]:
        if isinstance(clause, FilterClause):
            bounds: dict[str, RangeHint] = {}
            _collect_inequalities(clause.condition, var, collection, bound, bounds)
            for hint in bounds.values():
                if hint.low_expr is not None or hint.high_expr is not None:
                    return hint
        elif isinstance(clause, LetClause):
            continue
        else:
            return None
    return None


def _collect_inequalities(
    expr: Expr, var: str, collection: str, bound: set[str],
    bounds: dict[str, RangeHint],
) -> None:
    if isinstance(expr, Binary) and expr.op == "AND":
        _collect_inequalities(expr.left, var, collection, bound, bounds)
        _collect_inequalities(expr.right, var, collection, bound, bounds)
        return
    if not (isinstance(expr, Binary) and expr.op in ("<", "<=", ">", ">=")):
        return
    for lhs, rhs, op in (
        (expr.left, expr.right, expr.op),
        (expr.right, expr.left, _flip(expr.op)),
    ):
        if (
            isinstance(lhs, FieldAccess)
            and isinstance(lhs.base, VarRef)
            and lhs.base.name == var
            and free_variables(rhs) <= bound
        ):
            current = bounds.get(
                lhs.field, RangeHint(collection, lhs.field)
            )
            if op in (">", ">="):
                current = replace(
                    current, low_expr=rhs, include_low=(op == ">=")
                )
            else:
                current = replace(
                    current, high_expr=rhs, include_high=(op == "<=")
                )
            bounds[lhs.field] = current
            return


def _flip(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]


def _describe_clause(clause: Clause) -> str:
    if isinstance(clause, ForClause):
        source = (
            clause.source.name if isinstance(clause.source, VarRef) else "<expr>"
        )
        if clause.index_hint is not None:
            return (
                f"FOR {clause.var} IN {source} "
                f"[index: {clause.index_hint.collection}.{clause.index_hint.field}]"
            )
        if clause.range_hint is not None:
            return (
                f"FOR {clause.var} IN {source} "
                f"[range index: {clause.range_hint.collection}."
                f"{clause.range_hint.field}]"
            )
        return f"FOR {clause.var} IN {source} [scan]"
    if isinstance(clause, FilterClause):
        return "FILTER <predicate>"
    if isinstance(clause, LetClause):
        return f"LET {clause.var} = <expr>"
    if isinstance(clause, SortClause):
        return f"SORT ({len(clause.keys)} keys)"
    if isinstance(clause, LimitClause):
        return "LIMIT"
    if isinstance(clause, CollectClause):
        keys = ", ".join(name for name, _ in clause.keys)
        return f"COLLECT {keys} ({len(clause.aggregations)} aggregates)"
    return type(clause).__name__
