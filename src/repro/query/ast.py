"""MMQL abstract syntax tree.

A :class:`Query` is a pipeline of clauses ending in RETURN.  Expressions
form their own small tree.  All nodes are frozen dataclasses; the planner
produces annotated copies rather than mutating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: Any


@dataclass(frozen=True)
class VarRef:
    name: str


@dataclass(frozen=True)
class ParamRef:
    name: str


@dataclass(frozen=True)
class FieldAccess:
    base: "Expr"
    field: str


@dataclass(frozen=True)
class IndexAccess:
    base: "Expr"
    index: "Expr"


@dataclass(frozen=True)
class Binary:
    op: str  # == != < <= > >= + - * / % AND OR IN LIKE
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Unary:
    op: str  # NOT, -
    operand: "Expr"


@dataclass(frozen=True)
class FunctionCall:
    name: str  # upper-cased
    args: tuple["Expr", ...]


@dataclass(frozen=True)
class ObjectExpr:
    fields: tuple[tuple[str, "Expr"], ...]


@dataclass(frozen=True)
class ListExpr:
    items: tuple["Expr", ...]


@dataclass(frozen=True)
class Subquery:
    """An inline sub-pipeline evaluating to a list.

    Written ``( FOR ... RETURN ... )`` or ``[ FOR ... RETURN ... ]``;
    outer variables are visible inside.
    """

    query: "Query"


Expr = Union[
    Literal, VarRef, ParamRef, FieldAccess, IndexAccess,
    Binary, Unary, FunctionCall, ObjectExpr, ListExpr, Subquery,
]


# ---------------------------------------------------------------------------
# Clauses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ForClause:
    """``FOR var IN source``.

    *source* is either an identifier (collection name) or an expression
    (e.g. ``TRAVERSE(...)``, ``KV(...)``, a literal list, or a LET-bound
    list variable).  ``index_hint``/``range_hint`` are filled by the
    planner when an adjacent filter can be answered by a secondary index.
    """

    var: str
    source: Expr
    index_hint: "IndexHint | None" = None
    range_hint: "RangeHint | None" = None


@dataclass(frozen=True)
class IndexHint:
    """Use an equality index: collection.field == key_expr."""

    collection: str
    field: str
    key_expr: Expr


@dataclass(frozen=True)
class RangeHint:
    """Use a range index: low_expr <(=) collection.field <(=) high_expr.

    Either bound may be None (open).  Inclusivity mirrors the comparison
    operators the planner matched.
    """

    collection: str
    field: str
    low_expr: Expr | None = None
    high_expr: Expr | None = None
    include_low: bool = True
    include_high: bool = True


@dataclass(frozen=True)
class FilterClause:
    """``FILTER condition``.

    ``speculative`` marks a planner-hoisted copy of a conjunct whose
    original stays in place: it may only discard bindings, so evaluation
    errors defer to the strict original instead of raising early.
    """

    condition: Expr
    speculative: bool = False


@dataclass(frozen=True)
class LetClause:
    var: str
    value: Expr


@dataclass(frozen=True)
class SortKey:
    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class SortClause:
    keys: tuple[SortKey, ...]


@dataclass(frozen=True)
class LimitClause:
    count: Expr
    offset: Expr | None = None


@dataclass(frozen=True)
class Aggregation:
    var: str
    func: str  # COUNT, SUM, AVG, MIN, MAX
    arg: Expr


@dataclass(frozen=True)
class CollectClause:
    """``COLLECT k = expr [, ...] [AGGREGATE a = SUM(e), ...] [INTO g]``."""

    keys: tuple[tuple[str, Expr], ...]
    aggregations: tuple[Aggregation, ...] = ()
    into: str | None = None


@dataclass(frozen=True)
class ReturnClause:
    expr: Expr
    distinct: bool = False


Clause = Union[
    ForClause, FilterClause, LetClause, SortClause, LimitClause, CollectClause
]


@dataclass(frozen=True)
class Query:
    """A parsed MMQL query: body clauses + the final RETURN."""

    clauses: tuple[Clause, ...]
    returning: ReturnClause
    text: str = field(default="", compare=False)

    def variables(self) -> list[str]:
        """All variables bound by FOR/LET/COLLECT, in order."""
        out: list[str] = []
        for clause in self.clauses:
            if isinstance(clause, ForClause):
                out.append(clause.var)
            elif isinstance(clause, LetClause):
                out.append(clause.var)
            elif isinstance(clause, CollectClause):
                out.extend(name for name, _ in clause.keys)
                out.extend(a.var for a in clause.aggregations)
                if clause.into:
                    out.append(clause.into)
        return out


def walk_expr(expr: Expr):
    """Yield every node of an expression tree (pre-order)."""
    yield expr
    if isinstance(expr, FieldAccess):
        yield from walk_expr(expr.base)
    elif isinstance(expr, IndexAccess):
        yield from walk_expr(expr.base)
        yield from walk_expr(expr.index)
    elif isinstance(expr, Binary):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, Unary):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, ObjectExpr):
        for _, value in expr.fields:
            yield from walk_expr(value)
    elif isinstance(expr, ListExpr):
        for item in expr.items:
            yield from walk_expr(item)
    elif isinstance(expr, Subquery):
        for clause in expr.query.clauses:
            if isinstance(clause, ForClause):
                yield from walk_expr(clause.source)
            elif isinstance(clause, FilterClause):
                yield from walk_expr(clause.condition)
            elif isinstance(clause, LetClause):
                yield from walk_expr(clause.value)
            elif isinstance(clause, SortClause):
                for key in clause.keys:
                    yield from walk_expr(key.expr)
            elif isinstance(clause, LimitClause):
                yield from walk_expr(clause.count)
                if clause.offset is not None:
                    yield from walk_expr(clause.offset)
            elif isinstance(clause, CollectClause):
                for _, value in clause.keys:
                    yield from walk_expr(value)
                for agg in clause.aggregations:
                    yield from walk_expr(agg.arg)
        yield from walk_expr(expr.query.returning.expr)


def free_variables(expr: Expr) -> set[str]:
    """Names of all VarRefs appearing in *expr*.

    For subqueries this includes internally bound names, so callers using
    this for dependency checks get a conservative (superset) answer.
    """
    return {node.name for node in walk_expr(expr) if isinstance(node, VarRef)}
