"""EXPLAIN ANALYZE-lite: run a plan with per-operator actual row counts.

``explain_analyze`` instruments every physical operator with a
transparent counting wrapper, executes the plan for real, and renders
the tree with ``rows=N`` annotations plus the executor's access-path
counters.  This is how scatter-gather behaviour becomes observable: a
routed shard-key lookup shows a small ShardExec row count and
``shard_fanout=1``, while a scatter shows the full gather and
``shard_fanout=N``.

Counts are *output* rows (bindings an operator yielded to its parent).
For a ShardExec subplan the counter sums across shards; the scatter runs
sequentially under ANALYZE so those shared counters stay exact (the
normal execution path keeps its thread pool).

``HashAggregate`` operators additionally report ``rows_in=`` (bindings
consumed) and ``groups=`` (distinct group keys built) per phase, so the
two-phase pushdown's row reduction is directly visible: the partial
phase shows the matching-row input and the small per-shard group
output, and the ShardExec above it shows that only those group states
crossed the gather into the final phase.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.query.executor import Executor
from repro.query.parser import parse
from repro.query.physical import PhysicalOperator
from repro.query.planner import plan


class _Counted:
    """Transparent row- and batch-counting wrapper around one operator."""

    __slots__ = ("inner", "rows", "batches")

    def __init__(self, inner: PhysicalOperator) -> None:
        self.inner = inner
        self.rows = 0
        self.batches = 0

    @property
    def child(self):
        return self.inner.child

    @property
    def subplan(self):
        return getattr(self.inner, "subplan", None)

    @property
    def fused_ops(self):
        return getattr(self.inner, "fused_ops", ())

    def label(self) -> str:
        return self.inner.label()

    def run(self, rt, params, seed=None):
        for item in self.inner.run(rt, params, seed):
            self.rows += 1
            yield item

    def run_batches(self, rt, params, seed=None):
        for batch in self.inner.run_batches(rt, params, seed):
            self.rows += len(batch)
            self.batches += 1
            yield batch


def instrument(root: PhysicalOperator) -> "_Counted":
    """Rebuild the tree so every node (and ShardExec subplan) counts rows."""
    kwargs: dict[str, Any] = {}
    if root.child is not None:
        kwargs["child"] = instrument(root.child)
    subplan = getattr(root, "subplan", None)
    if subplan is not None:
        kwargs["subplan"] = instrument(subplan)
    rebuilt = replace(root, **kwargs) if kwargs else root
    return _Counted(rebuilt)


def render_analyzed(
    root: "_Counted", observed: dict[int, dict[str, int]] | None = None
) -> list[str]:
    """Indented tree lines with the observed row counts.

    *observed* is the executor's per-operator observation dict; entries
    (keyed by the id of the operator instance that ran) render as extra
    ``key=value`` actuals after ``rows=`` — HashAggregate reports
    ``rows_in`` and ``groups`` through it.
    """
    lines: list[str] = []

    def walk(node, depth: int) -> None:
        while node is not None:
            if isinstance(node, _Counted):
                actuals = [f"rows={node.rows}", f"batches={node.batches}"]
                if observed is not None:
                    extra = observed.get(id(node.inner))
                    if extra:
                        actuals.extend(
                            f"{key}={value}" for key, value in extra.items()
                        )
            else:
                actuals = ["rows=?"]
            lines.append("  " * depth + f"{node.label()} ({', '.join(actuals)})")
            for op in getattr(node, "fused_ops", ()):
                lines.append("  " * (depth + 1) + "· " + op.label())
            subplan = getattr(node, "subplan", None)
            if subplan is not None:
                walk(subplan, depth + 1)
            node = node.child
            depth += 1

    walk(root, 0)
    return lines


def explain_analyze(
    ctx: Any,
    text: str,
    params: dict[str, Any] | None = None,
    use_indexes: bool = True,
) -> tuple[str, list[Any]]:
    """Execute *text* against *ctx*; return (annotated report, results)."""
    query = parse(text)
    planned = plan(query, getattr(ctx, "catalog", None))
    counted = instrument(planned.root)
    executor = Executor(ctx, use_indexes=use_indexes)
    executor.analyze = True
    executor.observed = {}
    # Drain the batch streams: ANALYZE observes the default (vectorized)
    # execution mode, so every operator line reports batches=N too.
    results: list[Any] = []
    for batch in counted.run_batches(executor, params or {}):
        results.extend(batch)
    lines = ["plan (analyzed):"]
    lines.extend("  " + line for line in render_analyzed(counted, executor.observed))
    if planned.notes:
        lines.append("notes:")
        lines.extend(f"  - {note}" for note in planned.notes)
    # Every registered counter renders, zeros included — a dropped
    # zero made "no index was used" indistinguishable from "index
    # counters don't exist", and the line's shape varied per query.
    stats = ", ".join(f"{k}={v}" for k, v in sorted(executor.stats.items()))
    lines.append(f"stats: {stats or 'none'}")
    return "\n".join(lines), results
