"""QueryContext: the interface MMQL execution needs from a database.

Any system that implements this protocol can run the benchmark's MMQL
workload — the unified engine and the polyglot baseline both do, which is
how one shared query set evaluates two architectures (the paper's call
for "unified" benchmark queries).
"""

from __future__ import annotations

from typing import Any, Iterable, Protocol


class QueryContext(Protocol):
    """Data access surface for the MMQL executor."""

    def iter_collection(self, name: str) -> Iterable[Any]:
        """Iterate a named collection.

        Relational tables yield row dicts; document collections yield
        document dicts; XML collections yield ``{"_id": ..., "root":
        XmlElement}``; graph names yield vertex dicts ``{"_id", "label",
        ...props}``.  Raises if *name* is unknown.
        """
        ...

    def index_lookup(
        self, collection: str, field: str, value: Any
    ) -> Iterable[Any] | None:
        """Equality lookup via a secondary index.

        Returns None when no usable index exists (executor falls back to
        a scan); otherwise an iterable of the same shape as
        :meth:`iter_collection`.  *field* may be a dotted path
        (``address.city``) when the index was created on one.
        """
        ...

    def range_lookup(
        self,
        collection: str,
        field: str,
        low: Any,
        high: Any,
        include_low: bool,
        include_high: bool,
    ) -> Iterable[Any] | None:
        """Range lookup via an ordered secondary index.

        Serves the planner's :class:`~repro.query.physical.IndexRangeScan`
        access path.  ``None`` bounds are open; inclusivity flags mirror
        the comparison operators the planner matched.  Returns None when
        no usable index exists (executor falls back to a scan).  May
        over-approximate — the residual FILTER keeps the answer exact.
        """
        ...

    def traverse(
        self,
        graph: str,
        start: Any,
        min_depth: int,
        max_depth: int,
        edge_label: str | None,
    ) -> Iterable[Any]:
        """BFS neighbourhood; yields vertex dicts like iter_collection."""
        ...

    def vertices(self, graph: str, label: str | None) -> Iterable[Any]:
        """All vertices of a graph, as dicts."""
        ...

    def edges(self, graph: str, label: str | None) -> Iterable[Any]:
        """All edges of a graph, as dicts {_id, _src, _dst, label, ...props}."""
        ...

    def kv_get(self, namespace: str, key: str) -> Any:
        """Point key-value lookup (None when absent)."""
        ...

    def kv_prefix(self, namespace: str, prefix: str) -> Iterable[Any]:
        """Prefix scan; yields ``{"key": k, "value": v}`` dicts."""
        ...

    def xml_get(self, collection: str, doc_id: Any) -> Any:
        """Fetch one XML tree (or None)."""
        ...

    def shortest_path(
        self, graph: str, start: Any, goal: Any, edge_label: str | None
    ) -> list[Any] | None:
        """Unweighted shortest path between two vertices (vertex ids)."""
        ...
