"""MMQL physical operators: the Volcano-style execution pipeline.

The planner lowers a clause list into a tree of physical operators; the
executor then just pulls bindings through :meth:`PhysicalOperator.run`
iterators.  Operators are frozen dataclasses so a plan is an immutable,
inspectable value — :func:`explain_tree` renders the tree that EXPLAIN
shows, including the chosen access path for every FOR.

Operator inventory (one class per shape of work):

=================  ========================================================
Operator           Role
=================  ========================================================
NestedLoopBind     FOR: bind a variable per item of an access path
CollectionScan     access path: full scan of a named collection
IndexEqLookup      access path: equality probe of a secondary index
IndexRangeScan     access path: bounded scan of a sorted/B+tree index
ExpressionSource   access path: FOR over a list-valued expression/variable
Filter             FILTER: drop bindings failing a predicate
Let                LET: extend each binding with a computed value
Sort               SORT: full materialising sort
TopK               fused SORT+LIMIT: bounded-heap top-k, no full sort
Limit              LIMIT: offset/count window over the stream
HashAggregate      COLLECT: hash grouping + Aggregator states, three modes
Project            RETURN: map bindings to output values (DISTINCT here)
=================  ========================================================

Operators receive the running :class:`~repro.query.executor.Executor`
(duck-typed as ``rt``) for expression evaluation, the data context, the
``use_indexes`` switch and the stats counters.  Access paths re-check
nothing themselves: the planner always keeps the original FILTER as a
residual predicate, so an access path may safely over-approximate (e.g.
a latest-committed index) — correctness never depends on index choice.

Every expression an operator holds is **closure-compiled once** when the
operator is constructed (``__post_init__`` calls
:func:`~repro.query.compile.compile_expr`), so the per-row inner loop
runs pre-dispatched closures instead of the interpreter's recursive
isinstance walk.  The executor's ``use_compiled`` ablation flag switches
each ``run()`` back to the reference interpreter (``rt.eval_expr``) for
differential testing and the E13 benchmark.

**Batch-at-a-time execution** (E14): every operator also implements
``run_batches``, producing and consuming *lists* of bindings (target
size ``rt.batch_size``, default 1024) instead of one binding per
``next()``.  Access paths emit whole chunks directly — bulk stats
counting, no generator hop per row — and Filter/Let/Project run the
batch kernels of :mod:`repro.query.compile` over each batch in a single
Python-level loop.  The fusion pass (:func:`fuse_pipelines`) then
collapses maximal straight-line chains of NestedLoopBind/Filter/Let/
Project into one :class:`FusedPipeline` node whose per-batch closure
chain eliminates the remaining operator hops and intermediate dict
churn.  The per-binding ``run()`` streams stay live behind the
executor's ``use_batches``/``use_fusion`` ablation flags, so the
interpreter remains the differential oracle for every new path.

Laziness caveat: batch execution evaluates up to one chunk of rows
ahead of a LIMIT's cut-off, so a predicate that *errors* on a row the
per-binding engine would never have pulled can surface the error — the
standard vectorized-engine trade, bounded by the batch size.  Values
and ordering are identical in all modes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, fields, replace
from itertools import islice
from typing import Any, Callable, Iterator

from repro.errors import ExecutionError
from repro.query.aggregates import AggPartial, get_aggregator, group_key, ordered_group_keys
from repro.query.compile import (
    CompiledExpr,
    compile_expr,
    evaluator,
    filter_batch,
    interpreted,
    let_batch,
    project_batch,
    use_compiled,
    use_fusion,
)
from repro.query.ast import (
    Binary,
    CollectClause,
    Expr,
    FieldAccess,
    FunctionCall,
    IndexAccess,
    ListExpr,
    Literal,
    ParamRef,
    ReturnClause,
    SortKey,
    Unary,
    VarRef,
)

Binding = dict[str, Any]

DEFAULT_BATCH_SIZE = 1024


def batch_size(rt: Any) -> int:
    """The executor's configured batch size (default 1024)."""
    return getattr(rt, "batch_size", DEFAULT_BATCH_SIZE) or DEFAULT_BATCH_SIZE


def _chunks(iterable: Any, size: int) -> Iterator[list[Any]]:
    """Re-chunk any iterable into non-empty lists of at most *size*."""
    iterator = iter(iterable)
    while True:
        chunk = list(islice(iterator, size))
        if not chunk:
            return
        yield chunk


# ---------------------------------------------------------------------------
# Expression rendering (for EXPLAIN)
# ---------------------------------------------------------------------------


def render_expr(expr: Expr, limit: int = 40) -> str:
    """Compact, best-effort text for an expression in EXPLAIN output."""
    text = _render(expr)
    if len(text) > limit:
        text = text[: limit - 1] + "…"
    return text


def _render(expr: Expr) -> str:
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, ParamRef):
        return f"@{expr.name}"
    if isinstance(expr, FieldAccess):
        return f"{_render(expr.base)}.{expr.field}"
    if isinstance(expr, IndexAccess):
        return f"{_render(expr.base)}[{_render(expr.index)}]"
    if isinstance(expr, Binary):
        return f"{_render(expr.left)} {expr.op} {_render(expr.right)}"
    if isinstance(expr, Unary):
        return f"{expr.op} {_render(expr.operand)}"
    if isinstance(expr, FunctionCall):
        return f"{expr.name}({', '.join(_render(a) for a in expr.args)})"
    if isinstance(expr, ListExpr):
        return f"[{len(expr.items)} items]"
    return "<expr>"


def field_path(expr: Expr, var: str) -> str | None:
    """Dotted field path of *expr* when rooted at *var*, else None.

    ``u.address.city`` rooted at ``u`` gives ``"address.city"`` — the
    string a dotted-path secondary index is registered under.
    """
    parts: list[str] = []
    node = expr
    while isinstance(node, FieldAccess):
        parts.append(node.field)
        node = node.base
    if isinstance(node, VarRef) and node.name == var and parts:
        return ".".join(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# Access paths (the inner input of NestedLoopBind)
# ---------------------------------------------------------------------------


def _plan_node_state(node: Any) -> dict[str, Any]:
    """Pickle state of a plan node: declared dataclass fields only.

    Every operator's ``__post_init__`` injects compiled closures
    (``_c_*``, ``_k_batch``, ``_chain_root``) via ``object.__setattr__``;
    closures are process-local and unpicklable, so serialization ships
    the declared fields and :func:`_restore_plan_node` recompiles on the
    receiving side.  This is what lets a shard subplan cross the worker
    process boundary byte-compactly (``repro.cluster.remote``).
    """
    return {f.name: getattr(node, f.name) for f in fields(node)}


def _restore_plan_node(node: Any, state: dict[str, Any]) -> None:
    """Rebuild a plan node from pickled fields, re-running compilation."""
    for name, value in state.items():
        object.__setattr__(node, name, value)
    post_init = getattr(node, "__post_init__", None)
    if post_init is not None:
        post_init()


class AccessPath:
    """Produces the items one FOR iterates, given the outer binding."""

    def __getstate__(self) -> dict[str, Any]:
        return _plan_node_state(self)

    def __setstate__(self, state: dict[str, Any]) -> None:
        _restore_plan_node(self, state)

    def items(self, rt: Any, binding: Binding, params: dict[str, Any]) -> Iterator[Any]:
        raise NotImplementedError

    def batches(
        self, rt: Any, binding: Binding, params: dict[str, Any], size: int
    ) -> Iterator[list[Any]]:
        """Items in chunks of at most *size*; paths override for bulk stats."""
        yield from _chunks(self.items(rt, binding, params), size)

    def describe(self) -> str:
        raise NotImplementedError


def _scan_batches(rt: Any, collection: str, size: int) -> Iterator[list[Any]]:
    """Full-scan fallback emitting chunks, counting stats per chunk.

    Batch mode additionally *materializes* each collection scan once per
    query (``rt.scan_cache``) and serves repeated scans of the same
    collection from the cached block: the inner scan of a nested loop
    costs one pass over the store instead of one pass per outer row.
    The snapshot is immutable for the duration of a query and MMQL
    operators never mutate source documents, so re-serving the same
    block (sharing, not re-copying, the document dicts) is safe.  A scan
    abandoned early — e.g. cut off by LIMIT — is never cached.  ``scans``
    and ``rows_scanned`` keep counting actual store traffic only;
    ``scan_cache_hits`` counts the re-uses, so EXPLAIN ANALYZE shows the
    saving directly.  The per-binding ``run()`` path (the E14 baseline)
    has no cache and re-scans per pull.
    """
    cache = getattr(rt, "scan_cache", None)
    docs = cache.get(collection) if cache is not None else None
    if docs is not None:
        rt.stats["scan_cache_hits"] = rt.stats.get("scan_cache_hits", 0) + 1
        yield from _chunks(docs, size)
        return
    rt.stats["scans"] += 1
    block: list[Any] = []
    for chunk in _chunks(rt.ctx.iter_collection(collection), size):
        rt.stats["rows_scanned"] += len(chunk)
        block.extend(chunk)
        yield chunk
    if cache is not None:
        cache[collection] = block


def _shadowed_list(source_name: str, binding: Binding) -> list[Any] | None:
    """A bound variable holding a list shadows any collection name."""
    if source_name in binding:
        value = binding[source_name]
        if not isinstance(value, list):
            raise ExecutionError(
                f"FOR over variable {source_name!r} requires a list, "
                f"got {type(value).__name__}"
            )
        return value
    return None


@dataclass(frozen=True)
class CollectionScan(AccessPath):
    """Full scan of a named collection."""

    collection: str

    def items(self, rt: Any, binding: Binding, params: dict[str, Any]) -> Iterator[Any]:
        shadowed = _shadowed_list(self.collection, binding)
        if shadowed is not None:
            yield from shadowed
            return
        rt.stats["scans"] += 1
        for item in rt.ctx.iter_collection(self.collection):
            rt.stats["rows_scanned"] += 1
            yield item

    def batches(self, rt, binding, params, size):
        shadowed = _shadowed_list(self.collection, binding)
        if shadowed is not None:
            yield from _chunks(shadowed, size)
            return
        yield from _scan_batches(rt, self.collection, size)

    def describe(self) -> str:
        return f"CollectionScan({self.collection}) [scan]"


@dataclass(frozen=True)
class IndexEqLookup(AccessPath):
    """Equality probe of a secondary index; falls back to a scan.

    The context decides at run time whether a usable index exists
    (``index_lookup`` returning None means no), so the same plan runs on
    indexed and unindexed stores — the E1 ablation flips ``use_indexes``.
    """

    collection: str
    field: str
    key_expr: Expr

    def __post_init__(self) -> None:
        object.__setattr__(self, "_c_key", compile_expr(self.key_expr))

    def items(self, rt: Any, binding: Binding, params: dict[str, Any]) -> Iterator[Any]:
        shadowed = _shadowed_list(self.collection, binding)
        if shadowed is not None:
            yield from shadowed
            return
        if rt.use_indexes:
            key = evaluator(rt, self._c_key, self.key_expr)(rt, binding, params)
            matches = rt.ctx.index_lookup(self.collection, self.field, key)
            if matches is not None:
                rt.stats["index_lookups"] += 1
                yield from matches
                return
        rt.stats["scans"] += 1
        for item in rt.ctx.iter_collection(self.collection):
            rt.stats["rows_scanned"] += 1
            yield item

    def batches(self, rt, binding, params, size):
        shadowed = _shadowed_list(self.collection, binding)
        if shadowed is not None:
            yield from _chunks(shadowed, size)
            return
        if rt.use_indexes:
            key = evaluator(rt, self._c_key, self.key_expr)(rt, binding, params)
            matches = rt.ctx.index_lookup(self.collection, self.field, key)
            if matches is not None:
                rt.stats["index_lookups"] += 1
                yield from _chunks(matches, size)
                return
        yield from _scan_batches(rt, self.collection, size)

    def describe(self) -> str:
        return (
            f"IndexEqLookup [index: {self.collection}.{self.field} "
            f"== {render_expr(self.key_expr)}]"
        )


@dataclass(frozen=True)
class IndexRangeScan(AccessPath):
    """Bounded scan of a sorted/B+tree index; falls back to a scan.

    Either bound may be None (open); inclusivity mirrors the comparison
    operators the planner matched.  Contexts without ``range_lookup``
    (or without a sorted index on the field) scan — the residual FILTER
    keeps the answer exact either way.
    """

    collection: str
    field: str
    low_expr: Expr | None = None
    high_expr: Expr | None = None
    include_low: bool = True
    include_high: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_c_low",
            compile_expr(self.low_expr) if self.low_expr is not None else None,
        )
        object.__setattr__(
            self, "_c_high",
            compile_expr(self.high_expr) if self.high_expr is not None else None,
        )

    def items(self, rt: Any, binding: Binding, params: dict[str, Any]) -> Iterator[Any]:
        shadowed = _shadowed_list(self.collection, binding)
        if shadowed is not None:
            yield from shadowed
            return
        range_lookup = getattr(rt.ctx, "range_lookup", None)
        if rt.use_indexes and range_lookup is not None:
            low = (
                evaluator(rt, self._c_low, self.low_expr)(rt, binding, params)
                if self.low_expr is not None else None
            )
            high = (
                evaluator(rt, self._c_high, self.high_expr)(rt, binding, params)
                if self.high_expr is not None else None
            )
            matches = range_lookup(
                self.collection, self.field,
                low, high, self.include_low, self.include_high,
            )
            if matches is not None:
                rt.stats["range_lookups"] += 1
                yield from matches
                return
        rt.stats["scans"] += 1
        for item in rt.ctx.iter_collection(self.collection):
            rt.stats["rows_scanned"] += 1
            yield item

    def batches(self, rt, binding, params, size):
        shadowed = _shadowed_list(self.collection, binding)
        if shadowed is not None:
            yield from _chunks(shadowed, size)
            return
        range_lookup = getattr(rt.ctx, "range_lookup", None)
        if rt.use_indexes and range_lookup is not None:
            low = (
                evaluator(rt, self._c_low, self.low_expr)(rt, binding, params)
                if self.low_expr is not None else None
            )
            high = (
                evaluator(rt, self._c_high, self.high_expr)(rt, binding, params)
                if self.high_expr is not None else None
            )
            matches = range_lookup(
                self.collection, self.field,
                low, high, self.include_low, self.include_high,
            )
            if matches is not None:
                rt.stats["range_lookups"] += 1
                yield from _chunks(matches, size)
                return
        yield from _scan_batches(rt, self.collection, size)

    def describe(self) -> str:
        bounds = []
        if self.low_expr is not None:
            op = ">=" if self.include_low else ">"
            bounds.append(f"{op} {render_expr(self.low_expr)}")
        if self.high_expr is not None:
            op = "<=" if self.include_high else "<"
            bounds.append(f"{op} {render_expr(self.high_expr)}")
        return (
            f"IndexRangeScan [range index: {self.collection}.{self.field} "
            f"{' AND '.join(bounds)}]"
        )


@dataclass(frozen=True)
class ExpressionSource(AccessPath):
    """FOR over a list-valued expression or an already-bound variable."""

    source: Expr
    is_var: bool = False  # statically known to be a bound variable

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_c_source", None if self.is_var else compile_expr(self.source)
        )

    def items(self, rt: Any, binding: Binding, params: dict[str, Any]) -> Iterator[Any]:
        if self.is_var:
            assert isinstance(self.source, VarRef)
            shadowed = _shadowed_list(self.source.name, binding)
            if shadowed is None:
                raise ExecutionError(f"unbound variable {self.source.name!r}")
            yield from shadowed
            return
        value = evaluator(rt, self._c_source, self.source)(rt, binding, params)
        if value is None:
            return
        if not isinstance(value, list):
            raise ExecutionError(
                f"FOR source must evaluate to a list, got {type(value).__name__}"
            )
        yield from value

    def batches(self, rt, binding, params, size):
        if self.is_var:
            assert isinstance(self.source, VarRef)
            shadowed = _shadowed_list(self.source.name, binding)
            if shadowed is None:
                raise ExecutionError(f"unbound variable {self.source.name!r}")
            yield from _chunks(shadowed, size)
            return
        value = evaluator(rt, self._c_source, self.source)(rt, binding, params)
        if value is None:
            return
        if not isinstance(value, list):
            raise ExecutionError(
                f"FOR source must evaluate to a list, got {type(value).__name__}"
            )
        yield from _chunks(value, size)

    def describe(self) -> str:
        return f"ExpressionSource({render_expr(self.source)})"


# ---------------------------------------------------------------------------
# Binding-stream operators
# ---------------------------------------------------------------------------


class PhysicalOperator:
    """One node of the physical plan; pulls bindings from its child."""

    child: "PhysicalOperator | None"

    def __getstate__(self) -> dict[str, Any]:
        return _plan_node_state(self)

    def __setstate__(self, state: dict[str, Any]) -> None:
        _restore_plan_node(self, state)

    def run(
        self, rt: Any, params: dict[str, Any], seed: Binding | None = None
    ) -> Iterator[Binding]:
        raise NotImplementedError

    def run_batches(
        self, rt: Any, params: dict[str, Any], seed: Binding | None = None
    ) -> Iterator[list[Any]]:
        """Batch-at-a-time mode: non-empty lists of bindings (or of
        output values at the Project root).  Default bridges through the
        per-binding stream so exotic operators stay correct; the hot
        operators all override with native batch bodies."""
        yield from _chunks(self.run(rt, params, seed), batch_size(rt))

    def label(self) -> str:
        raise NotImplementedError

    def _input(
        self, rt: Any, params: dict[str, Any], seed: Binding | None
    ) -> Iterator[Binding]:
        if self.child is None:
            return iter([dict(seed) if seed else {}])
        return self.child.run(rt, params, seed)

    def _input_batches(
        self, rt: Any, params: dict[str, Any], seed: Binding | None
    ) -> Iterator[list[Binding]]:
        if self.child is None:
            yield [dict(seed) if seed else {}]
            return
        yield from self.child.run_batches(rt, params, seed)


@dataclass(frozen=True)
class NestedLoopBind(PhysicalOperator):
    """FOR: per input binding, bind *var* to each item of the access path."""

    var: str
    access: AccessPath
    child: PhysicalOperator | None = None

    def run(self, rt, params, seed=None):
        for binding in self._input(rt, params, seed):
            for item in self.access.items(rt, binding, params):
                out = dict(binding)
                out[self.var] = item
                yield out

    def run_batches(self, rt, params, seed=None):
        size = batch_size(rt)
        var = self.var
        access = self.access
        out: list[Binding] = []
        append = out.append
        for batch in self._input_batches(rt, params, seed):
            for binding in batch:
                for chunk in access.batches(rt, binding, params, size):
                    for item in chunk:
                        extended = dict(binding)
                        extended[var] = item
                        append(extended)
                    if len(out) >= size:
                        yield out
                        out = []
                        append = out.append
        if out:
            yield out

    def label(self) -> str:
        return f"NestedLoopBind {self.var}: {self.access.describe()}"


@dataclass(frozen=True)
class Filter(PhysicalOperator):
    """FILTER: keep bindings whose predicate is truthy.

    A *speculative* filter is a planner-hoisted copy of a predicate
    whose strict original runs later in the pipeline: it prunes early
    when the predicate evaluates cleanly to false, but an evaluation
    error keeps the binding — the interpreter never evaluated the
    predicate this early, so erroring here would invent failures (the
    strict copy downstream still raises if the binding survives to it).
    """

    condition: Expr
    child: PhysicalOperator | None = None
    speculative: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "_c_condition", compile_expr(self.condition))
        object.__setattr__(
            self, "_k_batch", filter_batch(self._c_condition, self.speculative)
        )

    def run(self, rt, params, seed=None):
        condition = evaluator(rt, self._c_condition, self.condition)
        if self.speculative:
            for binding in self._input(rt, params, seed):
                try:
                    keep = bool(condition(rt, binding, params))
                except ExecutionError:
                    keep = True
                if keep:
                    yield binding
            return
        for binding in self._input(rt, params, seed):
            if condition(rt, binding, params):
                yield binding

    def run_batches(self, rt, params, seed=None):
        kernel = (
            self._k_batch if use_compiled(rt)
            else filter_batch(interpreted(self.condition), self.speculative)
        )
        for batch in self._input_batches(rt, params, seed):
            kept = kernel(rt, batch, params)
            if kept:
                yield kept

    def label(self) -> str:
        tag = " (speculative)" if self.speculative else ""
        return f"Filter [{render_expr(self.condition)}]{tag}"


@dataclass(frozen=True)
class Let(PhysicalOperator):
    """LET: extend each binding with a computed value."""

    var: str
    value: Expr
    child: PhysicalOperator | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "_c_value", compile_expr(self.value))
        object.__setattr__(self, "_k_batch", let_batch(self.var, self._c_value))

    def run(self, rt, params, seed=None):
        value = evaluator(rt, self._c_value, self.value)
        for binding in self._input(rt, params, seed):
            out = dict(binding)
            out[self.var] = value(rt, binding, params)
            yield out

    def run_batches(self, rt, params, seed=None):
        kernel = (
            self._k_batch if use_compiled(rt)
            else let_batch(self.var, interpreted(self.value))
        )
        for batch in self._input_batches(rt, params, seed):
            yield kernel(rt, batch, params)

    def label(self) -> str:
        return f"Let {self.var} = {render_expr(self.value)}"


@dataclass(frozen=True)
class Sort(PhysicalOperator):
    """SORT: materialise the stream and sort it (stable)."""

    keys: tuple[SortKey, ...]
    child: PhysicalOperator | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "_c_keys", compile_sort_keys(self.keys))

    def run(self, rt, params, seed=None):
        keyfn = sort_evaluator(rt, self._c_keys, self.keys)
        materialised = list(self._input(rt, params, seed))
        materialised.sort(key=lambda b: keyfn(rt, b, params))
        return iter(materialised)

    def run_batches(self, rt, params, seed=None):
        keyfn = sort_evaluator(rt, self._c_keys, self.keys)
        materialised: list[Binding] = []
        for batch in self._input_batches(rt, params, seed):
            materialised.extend(batch)
        materialised.sort(key=lambda b: keyfn(rt, b, params))
        yield from _chunks(materialised, batch_size(rt))

    def label(self) -> str:
        return f"Sort [{len(self.keys)} keys]"


@dataclass(frozen=True)
class TopK(PhysicalOperator):
    """Fused SORT+LIMIT: bounded heap of the best offset+count bindings.

    Keeps at most k = offset+count candidates, so memory and comparison
    cost scale with k, not with the stream (the full Sort materialises
    everything).  Output order is identical to stable-Sort-then-Limit:
    ties break by arrival order via a sequence number in the heap key.
    """

    keys: tuple[SortKey, ...]
    count: Expr
    offset: Expr | None = None
    child: PhysicalOperator | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "_c_keys", compile_sort_keys(self.keys))
        object.__setattr__(self, "_c_count", compile_expr(self.count))
        object.__setattr__(
            self, "_c_offset",
            compile_expr(self.offset) if self.offset is not None else None,
        )

    def run(self, rt, params, seed=None):
        keyfn = sort_evaluator(rt, self._c_keys, self.keys)
        count = evaluator(rt, self._c_count, self.count)(rt, {}, params)
        offset = (
            evaluator(rt, self._c_offset, self.offset)(rt, {}, params)
            if self.offset is not None else 0
        )
        _check_limit_bounds(count, offset)
        k = count + offset
        if k == 0:
            return
        heap: list[_HeapEntry] = []
        for seq, binding in enumerate(self._input(rt, params, seed)):
            entry = _HeapEntry((keyfn(rt, binding, params), seq), binding)
            if len(heap) < k:
                heapq.heappush(heap, entry)
            elif entry.key < heap[0].key:
                heapq.heapreplace(heap, entry)
        kept = sorted(heap, key=lambda e: e.key)
        for entry in kept[offset:]:
            yield entry.binding

    def run_batches(self, rt, params, seed=None):
        keyfn = sort_evaluator(rt, self._c_keys, self.keys)
        count = evaluator(rt, self._c_count, self.count)(rt, {}, params)
        offset = (
            evaluator(rt, self._c_offset, self.offset)(rt, {}, params)
            if self.offset is not None else 0
        )
        _check_limit_bounds(count, offset)
        k = count + offset
        if k == 0:
            return
        heap: list[_HeapEntry] = []
        seq = 0
        for batch in self._input_batches(rt, params, seed):
            for binding in batch:
                entry = _HeapEntry((keyfn(rt, binding, params), seq), binding)
                seq += 1
                if len(heap) < k:
                    heapq.heappush(heap, entry)
                elif entry.key < heap[0].key:
                    heapq.heapreplace(heap, entry)
        kept = sorted(heap, key=lambda e: e.key)
        yield from _chunks(
            (entry.binding for entry in kept[offset:]), batch_size(rt)
        )

    def label(self) -> str:
        window = render_expr(self.count)
        if self.offset is not None:
            window = f"{render_expr(self.offset)}, {window}"
        return f"TopK [k={window}, {len(self.keys)} keys] (fused SORT+LIMIT, bounded heap)"


class _HeapEntry:
    """Max-heap adaptor: heapq's min slot holds the *worst* kept entry."""

    __slots__ = ("key", "binding")

    def __init__(self, key: tuple, binding: Binding) -> None:
        self.key = key
        self.binding = binding

    def __lt__(self, other: "_HeapEntry") -> bool:
        return other.key < self.key


@dataclass(frozen=True)
class Limit(PhysicalOperator):
    """LIMIT: skip *offset* bindings, emit at most *count*."""

    count: Expr
    offset: Expr | None = None
    child: PhysicalOperator | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "_c_count", compile_expr(self.count))
        object.__setattr__(
            self, "_c_offset",
            compile_expr(self.offset) if self.offset is not None else None,
        )

    def run(self, rt, params, seed=None):
        count = evaluator(rt, self._c_count, self.count)(rt, {}, params)
        offset = (
            evaluator(rt, self._c_offset, self.offset)(rt, {}, params)
            if self.offset is not None else 0
        )
        _check_limit_bounds(count, offset)
        emitted = 0
        skipped = 0
        for binding in self._input(rt, params, seed):
            if skipped < offset:
                skipped += 1
                continue
            if emitted >= count:
                return
            emitted += 1
            yield binding

    def run_batches(self, rt, params, seed=None):
        count = evaluator(rt, self._c_count, self.count)(rt, {}, params)
        offset = (
            evaluator(rt, self._c_offset, self.offset)(rt, {}, params)
            if self.offset is not None else 0
        )
        _check_limit_bounds(count, offset)
        if count == 0:
            return
        to_skip = offset
        remaining = count
        # Stop pulling child batches the moment the window is filled —
        # cross-batch laziness is what keeps LIMIT cheap in batch mode.
        for batch in self._input_batches(rt, params, seed):
            if to_skip:
                if len(batch) <= to_skip:
                    to_skip -= len(batch)
                    continue
                batch = batch[to_skip:]
                to_skip = 0
            if len(batch) >= remaining:
                yield batch[:remaining]
                return
            remaining -= len(batch)
            yield batch

    def label(self) -> str:
        window = render_expr(self.count)
        if self.offset is not None:
            window = f"{render_expr(self.offset)}, {window}"
        return f"Limit [{window}]"


def _check_limit_bounds(count: Any, offset: Any) -> None:
    if not isinstance(count, int) or count < 0:
        raise ExecutionError(f"LIMIT count must be a non-negative int, got {count!r}")
    if not isinstance(offset, int) or offset < 0:
        raise ExecutionError(f"LIMIT offset must be a non-negative int, got {offset!r}")


@dataclass(frozen=True)
class HashAggregate(PhysicalOperator):
    """COLLECT: hash-group the stream, fold :class:`Aggregator` states.

    One operator, three phases of the two-phase aggregation framework:

    ``single``
        The classic plan: group, accumulate each row, finalize at the
        end.  Grouped ``INTO g`` collection only exists here.
    ``partial``
        The shard-local half below a ShardExec gather: group and
        accumulate as usual, but emit :class:`AggPartial` states instead
        of finalized values — one row per *group*, not per input row,
        which is the O(rows) → O(groups) data-movement win.
    ``final``
        The coordinator half above the gather: re-group the partial rows
        on the (already computed) key columns, ``merge`` the shipped
        states, then finalize.  AVG merges its (sum, count) pairs here,
        so the decomposed average is exact.

    Single and final modes emit groups in canonical group-key order
    (see :func:`~repro.query.aggregates.ordered_group_keys`), so COLLECT
    output is deterministic and identical between the single-node plan
    and any shard placement.  Partial mode skips the ordering — its only
    consumer is the final phase's hash re-group, where order is moot.
    """

    clause: CollectClause
    mode: str = "single"  # "single" | "partial" | "final"
    child: PhysicalOperator | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_c_keys",
            tuple((name, compile_expr(expr)) for name, expr in self.clause.keys),
        )
        object.__setattr__(
            self, "_c_args",
            tuple(compile_expr(agg.arg) for agg in self.clause.aggregations),
        )

    def run(self, rt, params, seed=None):
        return self._execute(rt, params, self._input(rt, params, seed))

    def run_batches(self, rt, params, seed=None):
        source = (
            binding
            for batch in self._input_batches(rt, params, seed)
            for binding in batch
        )
        yield from _chunks(self._execute(rt, params, source), batch_size(rt))

    def _execute(self, rt, params, source):
        clause = self.clause
        if use_compiled(rt):
            key_evs = self._c_keys
            arg_evs = self._c_args
        else:
            key_evs = tuple(
                (name, interpreted(expr)) for name, expr in clause.keys
            )
            arg_evs = tuple(interpreted(agg.arg) for agg in clause.aggregations)
        aggs = [(agg, get_aggregator(agg.func)) for agg in clause.aggregations]
        groups: dict[tuple, dict[str, Any]] = {}
        rows_in = 0
        for binding in source:
            rows_in += 1
            key_values = [
                (name, ev(rt, binding, params)) for name, ev in key_evs
            ]
            marker = group_key([value for _, value in key_values])
            group = groups.get(marker)
            if group is None:
                group = {
                    "keys": dict(key_values),
                    "states": [aggregator.init() for _, aggregator in aggs],
                    "members": [],
                }
                groups[marker] = group
            states = group["states"]
            for i, (agg, aggregator) in enumerate(aggs):
                value = arg_evs[i](rt, binding, params)
                if self.mode == "final":
                    states[i] = aggregator.merge(states[i], _unwrap(value, agg.func))
                else:
                    states[i] = aggregator.accumulate(states[i], value)
            if clause.into is not None:
                group["members"].append(dict(binding))
        observed = getattr(rt, "observed", None)
        if observed is not None:
            slot = observed.setdefault(id(self), {"rows_in": 0, "groups": 0})
            slot["rows_in"] += rows_in
            slot["groups"] += len(groups)
        # Partial-mode output feeds a hash re-group at the coordinator,
        # so its order is irrelevant — skip the canonical sort there.
        markers = groups if self.mode == "partial" else ordered_group_keys(groups)
        for marker in markers:
            group = groups[marker]
            out: Binding = dict(group["keys"])
            for (agg, aggregator), state in zip(aggs, group["states"]):
                if self.mode == "partial":
                    out[agg.var] = AggPartial(agg.func, state)
                else:
                    out[agg.var] = aggregator.finalize(state)
            if clause.into is not None:
                out[clause.into] = group["members"]
            yield out

    def label(self) -> str:
        keys = ", ".join(name for name, _ in self.clause.keys)
        return (
            f"HashAggregate({self.mode}) [{keys}] "
            f"({len(self.clause.aggregations)} aggregates)"
        )


def _unwrap(value: Any, func: str) -> Any:
    """The state inside an AggPartial; a loud failure for anything else."""
    if not isinstance(value, AggPartial):
        raise ExecutionError(
            f"HashAggregate(final) expected a partial {func} state, "
            f"got {type(value).__name__}"
        )
    if value.func != func:
        raise ExecutionError(
            f"HashAggregate(final) cannot merge a {value.func} state into {func}"
        )
    return value.state


@dataclass(frozen=True)
class Project(PhysicalOperator):
    """RETURN: map each surviving binding to an output value."""

    returning: ReturnClause
    child: PhysicalOperator | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "_c_expr", compile_expr(self.returning.expr))
        object.__setattr__(self, "_k_batch", project_batch(self._c_expr))

    def run(self, rt, params, seed=None):
        project = evaluator(rt, self._c_expr, self.returning.expr)
        seen: set[str] = set()
        for binding in self._input(rt, params, seed):
            value = project(rt, binding, params)
            if self.returning.distinct:
                marker = repr(value)
                if marker in seen:
                    continue
                seen.add(marker)
            yield value

    def run_batches(self, rt, params, seed=None):
        kernel = (
            self._k_batch if use_compiled(rt)
            else project_batch(interpreted(self.returning.expr))
        )
        if not self.returning.distinct:
            for batch in self._input_batches(rt, params, seed):
                yield kernel(rt, batch, params)
            return
        seen: set[str] = set()
        for batch in self._input_batches(rt, params, seed):
            fresh: list[Any] = []
            for value in kernel(rt, batch, params):
                marker = repr(value)
                if marker not in seen:
                    seen.add(marker)
                    fresh.append(value)
            if fresh:
                yield fresh

    def label(self) -> str:
        distinct = " DISTINCT" if self.returning.distinct else ""
        return f"Project [RETURN{distinct} {render_expr(self.returning.expr)}]"


# ---------------------------------------------------------------------------
# Operator fusion
# ---------------------------------------------------------------------------

_FUSABLE = (NestedLoopBind, Filter, Let, Project)


def _short_label(op: PhysicalOperator) -> str:
    if isinstance(op, NestedLoopBind):
        return f"NestedLoopBind {op.var}"
    if isinstance(op, Let):
        return f"Let {op.var}"
    if isinstance(op, Filter):
        return "Filter"
    return "Project"


@dataclass(frozen=True)
class FusedPipeline(PhysicalOperator):
    """A maximal straight-line chain of bind/filter/let/project operators
    compiled into one per-batch closure chain.

    ``ops`` is in bottom-up (execution) order.  Each constituent becomes
    one small closure calling the next — a continuation chain ending in
    ``out.append`` — so a whole batch flows through the chain in a
    single Python loop with no operator re-entry, no generator hops and
    (for LETs over bindings the chain itself allocated) no intermediate
    dict copies.  The per-binding ``run()`` and the unfused batch path
    delegate to an equivalent rebuilt operator chain, keeping both
    ablation baselines exact.
    """

    ops: tuple[PhysicalOperator, ...]
    child: PhysicalOperator | None = None

    def __post_init__(self) -> None:
        node = self.child
        for op in self.ops:
            node = replace(op, child=node)
        object.__setattr__(self, "_chain_root", node)

    @property
    def fused_ops(self) -> tuple[PhysicalOperator, ...]:
        return self.ops

    def run(self, rt, params, seed=None):
        return self._chain_root.run(rt, params, seed)

    def run_batches(self, rt, params, seed=None):
        if not use_fusion(rt):
            yield from self._chain_root.run_batches(rt, params, seed)
            return
        size = batch_size(rt)
        out: list[Any] = []
        bottom = self.ops[0]
        if self.child is None and isinstance(bottom, NestedLoopBind):
            # Drive the bottom access path chunk-at-a-time ourselves so
            # a LIMIT above still stops the scan between chunks; the
            # bindings this loop allocates are chain-owned, so LETs
            # downstream may extend them in place.
            step = _build_fused_steps(self.ops[1:], rt, params, out.append, owned=True)
            seed_binding = dict(seed) if seed else {}
            var = bottom.var
            for chunk in bottom.access.batches(rt, seed_binding, params, size):
                for item in chunk:
                    extended = dict(seed_binding)
                    extended[var] = item
                    step(extended)
                if out:
                    yield out[:]
                    del out[:]
            return
        step = _build_fused_steps(self.ops, rt, params, out.append, owned=False)
        for batch in self._input_batches(rt, params, seed):
            for binding in batch:
                step(binding)
            if out:
                yield out[:]
                del out[:]

    def label(self) -> str:
        return "FusedPipeline[" + "→".join(_short_label(op) for op in self.ops) + "]"


def _build_fused_steps(
    ops: tuple[PhysicalOperator, ...],
    rt: Any,
    params: dict[str, Any],
    emit: Callable[[Any], None],
    owned: bool,
) -> Callable[[Any], None]:
    """Compose the continuation chain for one fused run.

    ``owned`` tracks whether bindings reaching a step were allocated
    inside this chain (by a bind, or by a copying LET further down) —
    only then may a LET extend its binding in place instead of copying.
    """
    flags: list[bool] = []
    for op in ops:
        flags.append(owned)
        if isinstance(op, (NestedLoopBind, Let)):
            owned = True
    compiled_on = use_compiled(rt)
    fn = emit
    for op, owned_here in zip(reversed(ops), reversed(flags)):
        fn = _fused_step(op, rt, params, fn, compiled_on, owned_here)
    return fn


def _fused_step(
    op: PhysicalOperator,
    rt: Any,
    params: dict[str, Any],
    nxt: Callable[[Any], None],
    compiled_on: bool,
    owned: bool,
) -> Callable[[Any], None]:
    """One closure of the continuation chain for a fusable operator."""
    if isinstance(op, Filter):
        cond = op._c_condition if compiled_on else interpreted(op.condition)
        if op.speculative:

            def spec_filter_step(binding: Binding) -> None:
                try:
                    keep = bool(cond(rt, binding, params))
                except ExecutionError:
                    keep = True
                if keep:
                    nxt(binding)

            return spec_filter_step

        def filter_step(binding: Binding) -> None:
            if cond(rt, binding, params):
                nxt(binding)

        return filter_step
    if isinstance(op, Let):
        value = op._c_value if compiled_on else interpreted(op.value)
        let_var = op.var
        if owned:

            def let_step(binding: Binding) -> None:
                binding[let_var] = value(rt, binding, params)
                nxt(binding)

            return let_step

        def let_copy_step(binding: Binding) -> None:
            computed = value(rt, binding, params)
            extended = dict(binding)
            extended[let_var] = computed
            nxt(extended)

        return let_copy_step
    if isinstance(op, NestedLoopBind):
        access = op.access
        bind_var = op.var
        size = batch_size(rt)

        def bind_step(binding: Binding) -> None:
            for chunk in access.batches(rt, binding, params, size):
                for item in chunk:
                    extended = dict(binding)
                    extended[bind_var] = item
                    nxt(extended)

        return bind_step
    if isinstance(op, Project):
        proj = op._c_expr if compiled_on else interpreted(op.returning.expr)
        if op.returning.distinct:
            seen: set[str] = set()

            def distinct_step(binding: Binding) -> None:
                value = proj(rt, binding, params)
                marker = repr(value)
                if marker not in seen:
                    seen.add(marker)
                    nxt(value)

            return distinct_step

        def project_step(binding: Binding) -> None:
            nxt(proj(rt, binding, params))

        return project_step
    raise AssertionError(f"unfusable operator {type(op).__name__}")


def fuse_pipelines(
    root: PhysicalOperator | None, notes: list[str] | None = None
) -> PhysicalOperator | None:
    """Collapse maximal straight-line fusable chains into FusedPipeline
    nodes, bottom-up over the child spine.

    Recurses into any ``subplan`` attribute (the cluster gather's
    per-shard pipeline), so it must run AFTER sharding — the sharding
    rewriter pattern-matches the unfused operators.
    """
    if root is None:
        return None
    spine: list[PhysicalOperator] = []
    node: PhysicalOperator | None = root
    while node is not None:
        spine.append(node)
        node = node.child
    pending: list[PhysicalOperator] = []

    def flush(below: PhysicalOperator | None) -> PhysicalOperator | None:
        if len(pending) >= 2:
            fused = FusedPipeline(tuple(pending), below)
            if notes is not None:
                notes.append(f"fused {len(pending)}-operator chain: {fused.label()}")
            below = fused
        elif pending:
            below = replace(pending[0], child=below)
        pending.clear()
        return below

    rebuilt: PhysicalOperator | None = None
    for op in reversed(spine):
        if isinstance(op, _FUSABLE):
            pending.append(op)
            continue
        rebuilt = flush(rebuilt)
        subplan = getattr(op, "subplan", None)
        if subplan is not None:
            op = replace(op, subplan=fuse_pipelines(subplan, notes))
        rebuilt = replace(op, child=rebuilt)
    return flush(rebuilt)


# ---------------------------------------------------------------------------
# Shared runtime helpers
# ---------------------------------------------------------------------------


def sort_key(rt: Any, keys: tuple[SortKey, ...], binding: Binding, params) -> tuple:
    return tuple(
        Orderable(rt.eval_expr(sk.expr, binding, params), sk.ascending) for sk in keys
    )


SortKeyFn = Callable[[Any, Binding, dict], tuple]


def compile_sort_keys(keys: tuple[SortKey, ...]) -> SortKeyFn:
    """One closure computing the full heterogeneous-order sort key."""
    compiled: tuple[tuple[CompiledExpr, bool], ...] = tuple(
        (compile_expr(sk.expr), sk.ascending) for sk in keys
    )

    def keyfn(rt: Any, binding: Binding, params: dict) -> tuple:
        return tuple(
            Orderable(ev(rt, binding, params), ascending)
            for ev, ascending in compiled
        )

    return keyfn


def sort_evaluator(rt: Any, compiled: SortKeyFn, keys: tuple[SortKey, ...]) -> SortKeyFn:
    """The sort-key function *rt* wants: compiled or interpreter-backed."""
    if use_compiled(rt):
        return compiled

    def keyfn(rt_: Any, binding: Binding, params: dict) -> tuple:
        return sort_key(rt_, keys, binding, params)

    return keyfn


class Orderable:
    """Total order over heterogeneous values: None < bool < number < str < other."""

    __slots__ = ("rank", "value", "ascending")

    def __init__(self, value: Any, ascending: bool) -> None:
        if value is None:
            rank, key = 0, 0
        elif isinstance(value, bool):
            rank, key = 1, int(value)
        elif isinstance(value, (int, float)):
            rank, key = 2, value
        elif isinstance(value, str):
            rank, key = 3, value
        else:
            rank, key = 4, repr(value)
        self.rank = rank
        self.value = key
        self.ascending = ascending

    def __lt__(self, other: "Orderable") -> bool:
        mine = (self.rank, self.value)
        theirs = (other.rank, other.value)
        if self.rank != other.rank:
            less = self.rank < other.rank
        else:
            less = mine < theirs
        return less if self.ascending else not less and mine != theirs

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Orderable)
            and self.rank == other.rank
            and self.value == other.value
        )


# ---------------------------------------------------------------------------
# Tree rendering
# ---------------------------------------------------------------------------


def explain_tree(root: PhysicalOperator) -> list[str]:
    """Indented operator-tree lines, root first (EXPLAIN's body).

    Operators with a ``subplan`` attribute (the cluster layer's
    ShardExec gather) render the subplan as a nested block, one level
    deeper — the per-shard pipeline below the scatter boundary.
    """
    lines: list[str] = []

    def walk(node: PhysicalOperator | None, depth: int) -> None:
        while node is not None:
            lines.append("  " * depth + node.label())
            for op in getattr(node, "fused_ops", ()):
                lines.append("  " * (depth + 1) + "· " + op.label())
            subplan = getattr(node, "subplan", None)
            if subplan is not None:
                walk(subplan, depth + 1)
            node = node.child
            depth += 1

    walk(root, 0)
    return lines
