"""MMQL builtin functions.

Scalar builtins are pure; *bridge* builtins (TRAVERSE, KV, KVGET, XPATH,
XMLGET, VERTICES, EDGES, SHORTEST_PATH, DOCUMENT) reach into the
:class:`~repro.query.context.QueryContext` — they are what make MMQL
multi-model.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.errors import ExecutionError, UnknownFunctionError
from repro.models.document.jsonpath import JsonPath
from repro.models.xml.node import XmlElement
from repro.models.xml.xpath import XPath

# signature: fn(ctx, args) -> value
Builtin = Callable[[Any, list[Any]], Any]

_REGISTRY: dict[str, Builtin] = {}


def register(name: str) -> Callable[[Builtin], Builtin]:
    def wrap(fn: Builtin) -> Builtin:
        _REGISTRY[name] = fn
        return fn

    return wrap


def call_builtin(name: str, ctx: Any, args: list[Any]) -> Any:
    fn = _REGISTRY.get(name)
    if fn is None:
        raise UnknownFunctionError(f"unknown function {name}()")
    return fn(ctx, args)


def lookup_builtin(name: str) -> Builtin | None:
    """The registered builtin, or None — lets compilation resolve it once."""
    return _REGISTRY.get(name)


def is_builtin(name: str) -> bool:
    return name in _REGISTRY


def builtin_names() -> list[str]:
    return sorted(_REGISTRY)


def _arity(name: str, args: list[Any], low: int, high: int | None = None) -> None:
    high = low if high is None else high
    if not low <= len(args) <= high:
        raise ExecutionError(
            f"{name}() takes {low}"
            + (f"..{high}" if high != low else "")
            + f" arguments, got {len(args)}"
        )


# ---------------------------------------------------------------------------
# Scalar builtins
# ---------------------------------------------------------------------------


@register("LENGTH")
def _length(ctx: Any, args: list[Any]) -> int:
    _arity("LENGTH", args, 1)
    value = args[0]
    if value is None:
        return 0
    if isinstance(value, (list, dict, str)):
        return len(value)
    raise ExecutionError(f"LENGTH() of {type(value).__name__}")


@register("CONCAT")
def _concat(ctx: Any, args: list[Any]) -> str:
    return "".join("" if a is None else str(a) for a in args)


@register("UPPER")
def _upper(ctx: Any, args: list[Any]) -> str:
    _arity("UPPER", args, 1)
    return str(args[0]).upper()


@register("LOWER")
def _lower(ctx: Any, args: list[Any]) -> str:
    _arity("LOWER", args, 1)
    return str(args[0]).lower()


@register("CONTAINS")
def _contains(ctx: Any, args: list[Any]) -> bool:
    _arity("CONTAINS", args, 2)
    haystack, needle = args
    if haystack is None:
        return False
    if isinstance(haystack, str):
        return str(needle) in haystack
    if isinstance(haystack, list):
        return needle in haystack
    raise ExecutionError("CONTAINS() expects a string or list haystack")


@register("SUBSTRING")
def _substring(ctx: Any, args: list[Any]) -> str:
    _arity("SUBSTRING", args, 2, 3)
    s = str(args[0])
    start = int(args[1])
    if len(args) == 3:
        return s[start : start + int(args[2])]
    return s[start:]


@register("ROUND")
def _round(ctx: Any, args: list[Any]) -> float:
    _arity("ROUND", args, 1, 2)
    digits = int(args[1]) if len(args) == 2 else 0
    return round(float(args[0]), digits)


@register("FLOOR")
def _floor(ctx: Any, args: list[Any]) -> int:
    _arity("FLOOR", args, 1)
    return math.floor(float(args[0]))


@register("CEIL")
def _ceil(ctx: Any, args: list[Any]) -> int:
    _arity("CEIL", args, 1)
    return math.ceil(float(args[0]))


@register("ABS")
def _abs(ctx: Any, args: list[Any]) -> Any:
    _arity("ABS", args, 1)
    return abs(args[0])


@register("MIN")
def _min(ctx: Any, args: list[Any]) -> Any:
    values = args[0] if len(args) == 1 and isinstance(args[0], list) else args
    values = [v for v in values if v is not None]
    return min(values) if values else None


@register("MAX")
def _max(ctx: Any, args: list[Any]) -> Any:
    values = args[0] if len(args) == 1 and isinstance(args[0], list) else args
    values = [v for v in values if v is not None]
    return max(values) if values else None


@register("SUM")
def _sum(ctx: Any, args: list[Any]) -> Any:
    _arity("SUM", args, 1)
    if not isinstance(args[0], list):
        raise ExecutionError("SUM() expects a list")
    return sum(v for v in args[0] if v is not None)


@register("AVG")
def _avg(ctx: Any, args: list[Any]) -> Any:
    _arity("AVG", args, 1)
    if not isinstance(args[0], list):
        raise ExecutionError("AVG() expects a list")
    values = [v for v in args[0] if v is not None]
    return sum(values) / len(values) if values else None


@register("COUNT")
def _count(ctx: Any, args: list[Any]) -> int:
    _arity("COUNT", args, 1)
    if isinstance(args[0], list):
        return len(args[0])
    return 0 if args[0] is None else 1


@register("UNIQUE")
def _unique(ctx: Any, args: list[Any]) -> list[Any]:
    _arity("UNIQUE", args, 1)
    if not isinstance(args[0], list):
        raise ExecutionError("UNIQUE() expects a list")
    out: list[Any] = []
    seen: set[str] = set()
    for item in args[0]:
        marker = repr(item)
        if marker not in seen:
            seen.add(marker)
            out.append(item)
    return out


@register("FIRST")
def _first(ctx: Any, args: list[Any]) -> Any:
    _arity("FIRST", args, 1)
    if isinstance(args[0], list) and args[0]:
        return args[0][0]
    return None


@register("APPEND")
def _append(ctx: Any, args: list[Any]) -> list[Any]:
    _arity("APPEND", args, 2)
    base = list(args[0]) if isinstance(args[0], list) else []
    base.append(args[1])
    return base


@register("HAS")
def _has(ctx: Any, args: list[Any]) -> bool:
    _arity("HAS", args, 2)
    obj, key = args
    return isinstance(obj, dict) and key in obj


@register("NOT_NULL")
def _not_null(ctx: Any, args: list[Any]) -> Any:
    for a in args:
        if a is not None:
            return a
    return None


@register("TO_NUMBER")
def _to_number(ctx: Any, args: list[Any]) -> Any:
    _arity("TO_NUMBER", args, 1)
    value = args[0]
    if value is None:
        return None
    try:
        f = float(value)
    except (TypeError, ValueError) as exc:
        raise ExecutionError(f"TO_NUMBER({value!r}) failed") from exc
    return int(f) if f.is_integer() else f


@register("TO_STRING")
def _to_string(ctx: Any, args: list[Any]) -> str:
    _arity("TO_STRING", args, 1)
    return "" if args[0] is None else str(args[0])


@register("STARTS_WITH")
def _starts_with(ctx: Any, args: list[Any]) -> bool:
    _arity("STARTS_WITH", args, 2)
    if args[0] is None:
        return False
    return str(args[0]).startswith(str(args[1]))


@register("SPLIT")
def _split(ctx: Any, args: list[Any]) -> list[str]:
    _arity("SPLIT", args, 2)
    if args[0] is None:
        return []
    return str(args[0]).split(str(args[1]))


@register("TRIM")
def _trim(ctx: Any, args: list[Any]) -> str:
    _arity("TRIM", args, 1)
    return str(args[0]).strip()


@register("REVERSE")
def _reverse(ctx: Any, args: list[Any]) -> Any:
    _arity("REVERSE", args, 1)
    value = args[0]
    if isinstance(value, list):
        return list(reversed(value))
    if isinstance(value, str):
        return value[::-1]
    raise ExecutionError("REVERSE() expects a list or string")


@register("SLICE")
def _slice(ctx: Any, args: list[Any]) -> list[Any]:
    _arity("SLICE", args, 2, 3)
    if not isinstance(args[0], list):
        raise ExecutionError("SLICE() expects a list")
    start = int(args[1])
    if len(args) == 3:
        return args[0][start : start + int(args[2])]
    return args[0][start:]


@register("KEYS")
def _keys(ctx: Any, args: list[Any]) -> list[str]:
    _arity("KEYS", args, 1)
    if not isinstance(args[0], dict):
        raise ExecutionError("KEYS() expects an object")
    return sorted(args[0])


@register("VALUES")
def _values(ctx: Any, args: list[Any]) -> list[Any]:
    _arity("VALUES", args, 1)
    if not isinstance(args[0], dict):
        raise ExecutionError("VALUES() expects an object")
    return [args[0][k] for k in sorted(args[0])]


@register("MERGE")
def _merge(ctx: Any, args: list[Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for arg in args:
        if arg is None:
            continue
        if not isinstance(arg, dict):
            raise ExecutionError("MERGE() expects objects")
        out.update(arg)
    return out


@register("FLATTEN")
def _flatten_fn(ctx: Any, args: list[Any]) -> list[Any]:
    """FLATTEN(list) — one level of list flattening (AQL semantics)."""
    _arity("FLATTEN", args, 1)
    if not isinstance(args[0], list):
        raise ExecutionError("FLATTEN() expects a list")
    out: list[Any] = []
    for item in args[0]:
        if isinstance(item, list):
            out.extend(item)
        else:
            out.append(item)
    return out


@register("INTERSECTION")
def _intersection(ctx: Any, args: list[Any]) -> list[Any]:
    _arity("INTERSECTION", args, 2)
    a, b = args
    if not isinstance(a, list) or not isinstance(b, list):
        raise ExecutionError("INTERSECTION() expects two lists")
    b_markers = {repr(x) for x in b}
    out, seen = [], set()
    for item in a:
        marker = repr(item)
        if marker in b_markers and marker not in seen:
            seen.add(marker)
            out.append(item)
    return out


@register("RANGE")
def _range(ctx: Any, args: list[Any]) -> list[int]:
    """RANGE(a, b) — the integers a..b inclusive (AQL semantics)."""
    _arity("RANGE", args, 2, 3)
    step = int(args[2]) if len(args) == 3 else 1
    if step == 0:
        raise ExecutionError("RANGE() step must be non-zero")
    a, b = int(args[0]), int(args[1])
    if step > 0:
        return list(range(a, b + 1, step))
    return list(range(a, b - 1, step))


@register("DATE_YEAR")
def _date_year(ctx: Any, args: list[Any]) -> int | None:
    _arity("DATE_YEAR", args, 1)
    if args[0] is None:
        return None
    text = str(args[0])
    if len(text) < 4 or not text[:4].isdigit():
        raise ExecutionError(f"DATE_YEAR({args[0]!r}): not an ISO date")
    return int(text[:4])


@register("DATE_MONTH")
def _date_month(ctx: Any, args: list[Any]) -> int | None:
    _arity("DATE_MONTH", args, 1)
    if args[0] is None:
        return None
    text = str(args[0])
    if len(text) < 7 or not text[5:7].isdigit():
        raise ExecutionError(f"DATE_MONTH({args[0]!r}): not an ISO date")
    return int(text[5:7])


# ---------------------------------------------------------------------------
# Model-bridge builtins
# ---------------------------------------------------------------------------


@register("JSONPATH")
def _jsonpath(ctx: Any, args: list[Any]) -> list[Any]:
    _arity("JSONPATH", args, 2)
    doc, path = args
    return JsonPath(str(path)).find(doc)


@register("XPATH")
def _xpath(ctx: Any, args: list[Any]) -> list[Any]:
    _arity("XPATH", args, 2)
    tree, path = args
    if tree is None:
        return []
    if not isinstance(tree, XmlElement):
        raise ExecutionError("XPATH() expects an XML tree as first argument")
    return XPath(str(path)).find(tree)


@register("XMLGET")
def _xmlget(ctx: Any, args: list[Any]) -> Any:
    _arity("XMLGET", args, 2)
    collection, doc_id = args
    return ctx.xml_get(str(collection), doc_id)


@register("KVGET")
def _kvget(ctx: Any, args: list[Any]) -> Any:
    _arity("KVGET", args, 2)
    namespace, key = args
    return ctx.kv_get(str(namespace), str(key))


@register("KV")
def _kv(ctx: Any, args: list[Any]) -> list[Any]:
    _arity("KV", args, 2)
    namespace, prefix = args
    return list(ctx.kv_prefix(str(namespace), str(prefix)))


@register("TRAVERSE")
def _traverse(ctx: Any, args: list[Any]) -> list[Any]:
    _arity("TRAVERSE", args, 4, 5)
    graph, start, min_depth, max_depth = args[:4]
    label = str(args[4]) if len(args) == 5 and args[4] is not None else None
    return list(
        ctx.traverse(str(graph), start, int(min_depth), int(max_depth), label)
    )


@register("VERTICES")
def _vertices(ctx: Any, args: list[Any]) -> list[Any]:
    _arity("VERTICES", args, 1, 2)
    label = str(args[1]) if len(args) == 2 and args[1] is not None else None
    return list(ctx.vertices(str(args[0]), label))


@register("EDGES")
def _edges(ctx: Any, args: list[Any]) -> list[Any]:
    _arity("EDGES", args, 1, 2)
    label = str(args[1]) if len(args) == 2 and args[1] is not None else None
    return list(ctx.edges(str(args[0]), label))


@register("SHORTEST_PATH")
def _shortest_path(ctx: Any, args: list[Any]) -> list[Any] | None:
    _arity("SHORTEST_PATH", args, 3, 4)
    graph, start, goal = args[:3]
    label = str(args[3]) if len(args) == 4 and args[3] is not None else None
    return ctx.shortest_path(str(graph), start, goal, label)


@register("DOCUMENT")
def _document(ctx: Any, args: list[Any]) -> Any:
    """DOCUMENT(collection, id) — point lookup in any keyed collection."""
    _arity("DOCUMENT", args, 2)
    collection, doc_id = args
    matches = ctx.index_lookup(str(collection), "_id", doc_id)
    if matches is not None:
        for match in matches:
            return match
        return None
    for item in ctx.iter_collection(str(collection)):
        if isinstance(item, dict) and (
            item.get("_id") == doc_id or item.get("id") == doc_id
        ):
            return item
    return None
