"""Plain-text result tables.

The benchmark prints its result tables with :func:`format_table`; keeping
formatting in one place means every experiment's output looks the same and
EXPERIMENTS.md can quote them verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _render_cell(value: object) -> str:
    """Render one cell: floats get 4 significant digits, rest str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(headers: list[str], rows: list[list[object]], title: str = "") -> str:
    """Format rows as an aligned ASCII table with an optional title."""
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    separator = "  ".join("-" * w for w in widths)
    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(separator)
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


@dataclass
class Table:
    """A mutable result table: add rows, then print or export.

    >>> t = Table("demo", ["k", "v"])
    >>> t.add_row(["a", 1.5])
    >>> "demo" in t.render()
    True
    """

    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)

    def add_row(self, row: list[object]) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table '{self.title}' has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(list(row))

    def render(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)

    def to_records(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by header, for programmatic checks."""
        return [dict(zip(self.headers, row)) for row in self.rows]

    def column(self, header: str) -> list[object]:
        """All values of one named column."""
        try:
            idx = self.headers.index(header)
        except ValueError as exc:
            raise KeyError(f"no column {header!r} in table {self.title!r}") from exc
        return [row[idx] for row in self.rows]
