"""Deterministic random-number utilities.

Everything in the benchmark must be reproducible from a single integer
seed: the data generator, the workload mix, the replication simulator and
the fault injector all draw from :class:`DeterministicRng` streams derived
with :func:`derive_seed`.  Derivation is stable across processes and Python
versions because it hashes UTF-8 bytes with SHA-256 rather than relying on
``hash()`` (which is salted per process).
"""

from __future__ import annotations

import hashlib
import math
import random
from collections.abc import Sequence
from typing import TypeVar

T = TypeVar("T")


def derive_seed(root_seed: int, *labels: str | int) -> int:
    """Derive a child seed from *root_seed* and a label path.

    The same ``(root_seed, labels)`` pair always yields the same child
    seed, and distinct label paths yield independent streams.

    >>> derive_seed(42, "orders") == derive_seed(42, "orders")
    True
    >>> derive_seed(42, "orders") != derive_seed(42, "customers")
    True
    """
    digest = hashlib.sha256()
    digest.update(str(root_seed).encode("utf-8"))
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class DeterministicRng:
    """A seeded random stream with the distributions the benchmark needs.

    Thin wrapper over :class:`random.Random` plus Zipf sampling (the
    distribution that gives purchase and popularity skew) and a few
    convenience helpers.  Instances are cheap; derive one per concern::

        rng = DeterministicRng(derive_seed(seed, "datagen", "orders"))
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    # -- plain delegation ---------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal variate."""
        return self._random.gauss(mu, sigma)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        """Sample *k* distinct elements (k is clamped to ``len(seq)``)."""
        k = min(k, len(seq))
        return self._random.sample(seq, k)

    def shuffle(self, items: list[T]) -> list[T]:
        """Shuffle *items* in place and return it for chaining."""
        self._random.shuffle(items)
        return items

    # -- skewed distributions ----------------------------------------------

    def zipf(self, n: int, theta: float = 0.99) -> int:
        """Sample a rank in ``[0, n)`` from a Zipf distribution.

        Uses the rejection-free inverse-CDF approximation of Gray et al.
        (the classic YCSB/TPC generator), so repeated calls are O(1) after
        a cached O(n)-free constant setup.  ``theta`` is the skew
        parameter; 0.99 matches YCSB's default.
        """
        if n <= 0:
            raise ValueError("zipf requires n >= 1")
        if n == 1:
            return 0
        if n == 2:
            # Gray's eta is 0/0 at n == 2; sample the two ranks directly.
            zetan = 1.0 + math.pow(0.5, theta)
            return 0 if self._random.random() * zetan < 1.0 else 1
        key = (n, theta)
        constants = self._zipf_constants.get(key)
        if constants is None:
            constants = _zipf_setup(n, theta)
            self._zipf_constants[key] = constants
        zetan, alpha, eta, theta_ = constants
        u = self._random.random()
        uz = u * zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + math.pow(0.5, theta_):
            return 1
        return int(n * math.pow(eta * u - eta + 1.0, alpha))

    _zipf_constants: dict[tuple[int, float], tuple[float, float, float, float]]

    def geometric(self, p: float) -> int:
        """Number of failures before the first success, p in (0, 1]."""
        if not 0.0 < p <= 1.0:
            raise ValueError("geometric requires 0 < p <= 1")
        if p == 1.0:
            return 0
        u = self._random.random()
        return int(math.log1p(-u) / math.log1p(-p))

    def poisson(self, lam: float) -> int:
        """Poisson variate via Knuth's method (fine for small lambda)."""
        if lam < 0:
            raise ValueError("poisson requires lambda >= 0")
        threshold = math.exp(-lam)
        k = 0
        product = self._random.random()
        while product > threshold:
            k += 1
            product *= self._random.random()
        return k

    def exponential(self, rate: float) -> float:
        """Exponential inter-arrival time with the given rate."""
        if rate <= 0:
            raise ValueError("exponential requires rate > 0")
        return self._random.expovariate(rate)

    # -- helpers -------------------------------------------------------------

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Choose one item with the given relative weights."""
        return self._random.choices(list(items), weights=list(weights), k=1)[0]

    def bernoulli(self, p: float) -> bool:
        """True with probability *p*."""
        return self._random.random() < p

    def spawn(self, *labels: str | int) -> "DeterministicRng":
        """Derive an independent child stream labelled by *labels*."""
        return DeterministicRng(derive_seed(self.seed, *labels))


def _zipf_setup(n: int, theta: float) -> tuple[float, float, float, float]:
    """Precompute the constants for Gray's Zipf sampler."""
    zetan = sum(1.0 / math.pow(i, theta) for i in range(1, n + 1))
    zeta2 = 1.0 + math.pow(0.5, theta)
    alpha = 1.0 / (1.0 - theta)
    eta = (1.0 - math.pow(2.0 / n, 1.0 - theta)) / (1.0 - zeta2 / zetan)
    return (zetan, alpha, eta, theta)


# Class-level cache shared by all instances: the constants depend only on
# (n, theta), never on the seed.
DeterministicRng._zipf_constants = {}
