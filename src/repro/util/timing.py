"""Timing helpers used by the benchmark harness.

:class:`Stopwatch` measures one interval; :class:`Timer` accumulates many
intervals and reports latency statistics (mean/percentiles), which is what
the benchmark result tables print.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field


class Stopwatch:
    """Context manager measuring a single wall-clock interval in seconds.

    >>> with Stopwatch() as sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class Timer:
    """Accumulates named latency samples and computes summary statistics."""

    samples: list[float] = field(default_factory=list)

    def record(self, seconds: float) -> None:
        """Add one latency sample (seconds)."""
        self.samples.append(seconds)

    def time(self) -> "_TimerInterval":
        """Return a context manager that records its duration on exit."""
        return _TimerInterval(self)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.samples else 0.0

    @property
    def stdev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((s - mu) ** 2 for s in self.samples) / (len(self.samples) - 1))

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, p in [0, 100]."""
        if not self.samples:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile requires 0 <= p <= 100")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def throughput(self) -> float:
        """Operations per second over the accumulated samples."""
        return self.count / self.total if self.total > 0 else 0.0

    def summary(self) -> dict[str, float]:
        """All headline statistics in one dictionary (seconds)."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "total": self.total,
            "ops_per_sec": self.throughput(),
        }


class _TimerInterval:
    """Context manager recording one interval into a parent :class:`Timer`."""

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerInterval":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.record(time.perf_counter() - self._start)
