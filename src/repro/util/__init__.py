"""Shared utilities: deterministic randomness, stable hashing, timing, tables."""

from repro.util.rng import DeterministicRng, derive_seed
from repro.util.tables import Table, format_table
from repro.util.timing import Stopwatch, Timer

__all__ = [
    "DeterministicRng",
    "derive_seed",
    "Stopwatch",
    "Table",
    "Timer",
    "format_table",
]
