"""JSON <-> XML conversions (orders and invoices).

``order_to_invoice`` re-derives the invoice tree; its gold standard is
the generator's :func:`~repro.datagen.generator.build_invoice`.
``invoice_to_order_summary`` parses an invoice back into a JSON summary
whose gold standard is computed from the original order document — a
true round-trip check across two models.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConversionError
from repro.models.xml.node import XmlElement, element
from repro.models.xml.node import text as xml_text
from repro.models.xml.xpath import XPath

_LINES_PATH = XPath("/invoice/lines/line")
_TOTAL_PATH = XPath("/invoice/total/text()")
_CUSTOMER_PATH = XPath("/invoice/customer/@id")
_NAME_PATH = XPath("/invoice/customer/name/text()")


def order_to_invoice(
    order: dict[str, Any], customer: dict[str, Any]
) -> XmlElement:
    """Build the invoice XML for an order (system under test for E5)."""
    invoice = element(
        "invoice", {"id": order["_id"], "date": order.get("order_date", "")}
    )
    cust = element("customer", {"id": str(customer["id"])})
    cust.append(
        element(
            "name", {},
            xml_text(f"{customer['first_name']} {customer['last_name']}"),
        )
    )
    cust.append(element("country", {}, xml_text(customer.get("country") or "")))
    invoice.append(cust)
    lines = element("lines")
    for item in order.get("items", []):
        line = element(
            "line",
            {"product": item["product_id"], "quantity": str(item["quantity"])},
        )
        line.append(element("unitPrice", {}, xml_text(f"{item['unit_price']:.2f}")))
        line.append(element("amount", {}, xml_text(f"{item['amount']:.2f}")))
        lines.append(line)
    invoice.append(lines)
    invoice.append(element("total", {}, xml_text(f"{order['total_price']:.2f}")))
    return invoice


def invoice_to_order_summary(invoice: XmlElement) -> dict[str, Any]:
    """Parse an invoice tree back into a JSON order summary.

    The summary is the lossy-but-canonical projection: id, date, customer
    id and name, line items (product/quantity/amount), and total.
    """
    if invoice.tag != "invoice":
        raise ConversionError(f"expected <invoice>, got <{invoice.tag}>")
    customer_ids = _CUSTOMER_PATH.find(invoice)
    names = _NAME_PATH.find(invoice)
    items = []
    for line in _LINES_PATH.find(invoice):
        assert isinstance(line, XmlElement)
        quantity_raw = line.get("quantity")
        amount_node = line.find("amount")
        items.append(
            {
                "product_id": line.get("product"),
                "quantity": int(quantity_raw) if quantity_raw is not None else None,
                "amount": float(amount_node.text_content())
                if amount_node is not None
                else None,
            }
        )
    totals = _TOTAL_PATH.find(invoice)
    return {
        "_id": invoice.get("id"),
        "order_date": invoice.get("date"),
        "customer_id": int(customer_ids[0]) if customer_ids else None,
        "customer_name": names[0] if names else None,
        "items": items,
        "total_price": float(totals[0]) if totals else None,
    }


def gold_order_summary(
    order: dict[str, Any], customer: dict[str, Any]
) -> dict[str, Any]:
    """Gold standard for the XML->JSON direction, derived from the order."""
    return {
        "_id": order["_id"],
        "order_date": order.get("order_date", ""),
        "customer_id": customer["id"],
        "customer_name": f"{customer['first_name']} {customer['last_name']}",
        "items": [
            {
                "product_id": item["product_id"],
                "quantity": item["quantity"],
                "amount": round(item["amount"], 2),
            }
            for item in order.get("items", [])
        ],
        "total_price": round(order["total_price"], 2),
    }
