"""Multi-model data conversion with gold-standard verification (pillar 4).

The paper: "data generators must support the creation of reasonable gold
standard outputs for different transformation tasks."  Every converter
here is paired with a gold-standard function derived *independently*
from the generator's source entities, and
:func:`~repro.conversion.base.run_conversion_suite` scores converters
against their gold outputs (experiment E5).

Tasks:

- relational -> JSON  (customers to documents)
- JSON -> relational  (orders shredded into orders_rel + order_items_rel)
- JSON -> XML         (order + customer to invoice)
- XML -> JSON         (invoice back to an order summary)
- relational -> graph (customers + orders to a purchase graph)
- graph -> relational (knows edges to an edge table)
- JSON <-> KV         (document flattening to path keys and back)
"""

from repro.conversion.base import ConversionOutcome, ConversionTask, run_conversion_suite
from repro.conversion.json_kv import document_to_kv_pairs, kv_pairs_to_document
from repro.conversion.json_xml import invoice_to_order_summary, order_to_invoice
from repro.conversion.relational_graph import (
    graph_to_edge_rows,
    purchase_graph_from_entities,
)
from repro.conversion.relational_json import (
    documents_to_order_rows,
    rows_to_documents,
)

__all__ = [
    "ConversionOutcome",
    "ConversionTask",
    "document_to_kv_pairs",
    "documents_to_order_rows",
    "graph_to_edge_rows",
    "invoice_to_order_summary",
    "kv_pairs_to_document",
    "order_to_invoice",
    "purchase_graph_from_entities",
    "rows_to_documents",
    "run_conversion_suite",
]
