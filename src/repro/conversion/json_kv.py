"""JSON <-> key-value conversions via path flattening.

A document becomes a set of (path, scalar) pairs — the standard trick
for storing documents in a plain KV store — and the inverse rebuilds the
document.  The round trip is exact for documents whose keys contain no
'/' or '#' (the path separators), which the generator guarantees.

Encoding::

    {"a": 1, "b": {"c": [2, 3]}}
      ->  a      = 1
          b/c#0  = 2
          b/c#1  = 3

Empty objects/arrays are encoded with a type marker so the inverse is
faithful: ``path = {}`` / ``path = []``.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConversionError

_EMPTY_OBJECT = "\x00{}"
_EMPTY_ARRAY = "\x00[]"


def document_to_kv_pairs(doc: dict[str, Any], prefix: str = "") -> list[tuple[str, Any]]:
    """Flatten a document to sorted (path, scalar) pairs.

    The empty document flattens to no pairs (and unflattens back to {}).
    """
    if not doc:
        return []
    pairs: list[tuple[str, Any]] = []
    _flatten(doc, prefix, pairs)
    pairs.sort(key=lambda kv: kv[0])
    return pairs


def _flatten(value: Any, path: str, pairs: list[tuple[str, Any]]) -> None:
    if isinstance(value, dict):
        if not value:
            pairs.append((path, _EMPTY_OBJECT))
            return
        for key, item in value.items():
            if "/" in key or "#" in key or "\x00" in key:
                raise ConversionError(
                    f"key {key!r} contains a reserved character; not flattenable"
                )
            child = f"{path}/{key}" if path else key
            _flatten(item, child, pairs)
        return
    if isinstance(value, list):
        if not value:
            pairs.append((path, _EMPTY_ARRAY))
            return
        for index, item in enumerate(value):
            _flatten(item, f"{path}#{index}", pairs)
        return
    pairs.append((path, value))


def kv_pairs_to_document(pairs: list[tuple[str, Any]]) -> dict[str, Any]:
    """Rebuild the nested document from flattened pairs."""
    root: dict[str, Any] = {}
    for path, value in pairs:
        _insert(root, path, value)
    return _finalise(root)


def _insert(root: dict[str, Any], path: str, value: Any) -> None:
    # Split the path into dict steps ('/') and array steps ('#').
    steps: list[tuple[str, str]] = []  # (kind, key) kind in {"key", "idx"}
    for segment in path.split("/"):
        if "#" in segment:
            head, *indices = segment.split("#")
            if head:
                steps.append(("key", head))
            for idx in indices:
                steps.append(("idx", idx))
        else:
            steps.append(("key", segment))
    node: Any = root
    for i, (kind, key) in enumerate(steps):
        last = i == len(steps) - 1
        marker = key if kind == "key" else int(key)
        if last:
            if value == _EMPTY_OBJECT:
                node[marker] = {}
            elif value == _EMPTY_ARRAY:
                node[marker] = {"\x00kind": "list"}
            else:
                node[marker] = value
        else:
            next_kind = steps[i + 1][0]
            if marker not in node:
                node[marker] = {} if next_kind == "key" else {"\x00kind": "list"}
            node = node[marker]


def _finalise(node: Any) -> Any:
    """Convert index-keyed dicts marked as lists back into real lists."""
    if not isinstance(node, dict):
        return node
    if node.get("\x00kind") == "list":
        items = {k: v for k, v in node.items() if k != "\x00kind"}
        return [_finalise(items[i]) for i in sorted(items)]
    # A dict whose keys are all ints is an implicit array node.
    if node and all(isinstance(k, int) for k in node):
        return [_finalise(node[i]) for i in sorted(node)]
    return {k: _finalise(v) for k, v in node.items() if k != "\x00kind"}
