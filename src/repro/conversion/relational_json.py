"""Relational <-> JSON conversions.

- :func:`rows_to_documents`: any table's rows become documents; the
  single-column primary key becomes ``_id``.
- :func:`documents_to_order_rows`: the *shredding* direction — a nested
  order document becomes one ``orders_rel`` row plus N
  ``order_items_rel`` rows (the canonical 1NF decomposition declared in
  :mod:`repro.datagen.schemas`).
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConversionError
from repro.models.relational.schema import TableSchema


def rows_to_documents(
    rows: list[dict[str, Any]], schema: TableSchema
) -> list[dict[str, Any]]:
    """Convert table rows to documents, mapping the PK to ``_id``.

    Composite keys become a string join (``"a|b"``); NULLs are dropped
    rather than stored, matching document-store convention.
    """
    if not schema.primary_key:
        raise ConversionError(f"table {schema.name!r} has no primary key")
    out: list[dict[str, Any]] = []
    for row in rows:
        pk = tuple(row[c] for c in schema.primary_key)
        doc_id: Any = pk[0] if len(pk) == 1 else "|".join(str(p) for p in pk)
        doc: dict[str, Any] = {"_id": doc_id}
        for column in schema.column_names:
            if column in schema.primary_key and len(schema.primary_key) == 1:
                continue  # already encoded as _id
            value = row.get(column)
            if value is not None:
                doc[column] = value
        out.append(doc)
    return out


def gold_customer_document(row: dict[str, Any]) -> dict[str, Any]:
    """Gold standard for one customers row (independent derivation)."""
    doc = {"_id": row["id"]}
    for key in ("first_name", "last_name", "country", "city", "join_date"):
        if row.get(key) is not None:
            doc[key] = row[key]
    return doc


def documents_to_order_rows(
    order: dict[str, Any]
) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Shred one order document into (orders_rel row, order_items_rel rows)."""
    if "_id" not in order:
        raise ConversionError("order document missing _id")
    head = {
        "id": order["_id"],
        "customer_id": order.get("customer_id"),
        "order_date": order.get("order_date"),
        "status": order.get("status"),
        "total_price": order.get("total_price"),
    }
    items: list[dict[str, Any]] = []
    for line_no, item in enumerate(order.get("items", []), start=1):
        items.append(
            {
                "order_id": order["_id"],
                "line_no": line_no,
                "product_id": item["product_id"],
                "quantity": item["quantity"],
                "unit_price": item["unit_price"],
                "amount": item["amount"],
            }
        )
    return head, items


def gold_order_rows(
    order: dict[str, Any]
) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Gold standard for the shredding task (derived field by field)."""
    head = {
        "id": order["_id"],
        "customer_id": order.get("customer_id"),
        "order_date": order.get("order_date"),
        "status": order.get("status"),
        "total_price": order.get("total_price"),
    }
    rows = []
    line_no = 0
    for item in order.get("items", []):
        line_no += 1
        rows.append(
            {
                "order_id": order["_id"],
                "line_no": line_no,
                "product_id": item["product_id"],
                "quantity": item["quantity"],
                "unit_price": item["unit_price"],
                "amount": item["amount"],
            }
        )
    return head, rows


def order_rows_to_document(
    head: dict[str, Any], items: list[dict[str, Any]]
) -> dict[str, Any]:
    """Inverse of shredding: reassemble the nested order document.

    Round-trip property: ``order_rows_to_document(*documents_to_order_rows(o))``
    equals *o* for canonical orders (tests pin this).
    """
    doc: dict[str, Any] = {
        "_id": head["id"],
        "customer_id": head.get("customer_id"),
        "order_date": head.get("order_date"),
        "total_price": head.get("total_price"),
        "items": [
            {
                "product_id": item["product_id"],
                "quantity": item["quantity"],
                "unit_price": item["unit_price"],
                "amount": item["amount"],
            }
            for item in sorted(items, key=lambda r: r["line_no"])
        ],
    }
    if head.get("status") is not None:
        doc["status"] = head["status"]
    return doc
