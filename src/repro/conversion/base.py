"""Conversion-task framework and gold-standard scoring."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.models.document.document import json_equal
from repro.models.xml.node import XmlElement


@dataclass
class ConversionTask:
    """One transformation task with its gold standard.

    ``convert`` is the system under test; ``gold`` produces the expected
    output from the same input via an independent derivation.  Both take
    one source item and return the converted form.
    """

    name: str
    convert: Callable[[Any], Any]
    gold: Callable[[Any], Any]


@dataclass
class ConversionOutcome:
    """Score of one task over a batch of inputs."""

    task: str
    items: int
    correct: int
    seconds: float
    mismatches: list[str]

    @property
    def accuracy(self) -> float:
        return self.correct / self.items if self.items else 1.0

    @property
    def items_per_second(self) -> float:
        return self.items / self.seconds if self.seconds > 0 else 0.0


def outputs_equal(got: Any, expected: Any) -> bool:
    """Structural equality across model value types."""
    if isinstance(got, XmlElement) or isinstance(expected, XmlElement):
        return got == expected
    if isinstance(got, (list, tuple)) and isinstance(expected, (list, tuple)):
        return len(got) == len(expected) and all(
            outputs_equal(a, b) for a, b in zip(got, expected)
        )
    return json_equal(got, expected)


def run_conversion_task(task: ConversionTask, inputs: list[Any]) -> ConversionOutcome:
    """Convert every input and compare with the gold standard."""
    mismatches: list[str] = []
    correct = 0
    start = time.perf_counter()
    converted = [task.convert(item) for item in inputs]
    seconds = time.perf_counter() - start
    for i, (got, item) in enumerate(zip(converted, inputs)):
        expected = task.gold(item)
        if outputs_equal(got, expected):
            correct += 1
        elif len(mismatches) < 10:
            mismatches.append(
                f"item {i}: expected {_preview(expected)}, got {_preview(got)}"
            )
    return ConversionOutcome(
        task=task.name,
        items=len(inputs),
        correct=correct,
        seconds=seconds,
        mismatches=mismatches,
    )


def run_conversion_suite(
    tasks: list[tuple[ConversionTask, list[Any]]]
) -> list[ConversionOutcome]:
    """Score a batch of (task, inputs) pairs — the E5 rows."""
    return [run_conversion_task(task, inputs) for task, inputs in tasks]


def _preview(value: Any) -> str:
    text = repr(value)
    return text if len(text) <= 80 else text[:77] + "..."
