"""Relational/JSON <-> graph conversions.

- :func:`purchase_graph_from_entities`: customers (relational) + orders
  (JSON) become a bipartite purchase graph — customer and product
  vertices, one ``purchased`` edge per distinct (customer, product) pair
  with accumulated quantity.
- :func:`graph_to_edge_rows`: any edge set becomes a relational edge
  table (the graph -> relational direction).
"""

from __future__ import annotations

from typing import Any

from repro.models.graph.property_graph import PropertyGraph


def purchase_graph_from_entities(
    customers: list[dict[str, Any]], orders: list[dict[str, Any]]
) -> PropertyGraph:
    """Derive the bipartite purchase graph (system under test for E5)."""
    graph = PropertyGraph("purchases")
    for customer in customers:
        graph.add_vertex(
            f"c{customer['id']}", "customer",
            name=f"{customer['first_name']} {customer['last_name']}",
        )
    product_ids = {
        item["product_id"] for order in orders for item in order.get("items", [])
    }
    for product_id in sorted(product_ids):
        graph.add_vertex(product_id, "product")
    totals: dict[tuple[str, str], int] = {}
    for order in orders:
        src = f"c{order['customer_id']}"
        for item in order.get("items", []):
            key = (src, item["product_id"])
            totals[key] = totals.get(key, 0) + item["quantity"]
    for (src, dst), quantity in sorted(totals.items()):
        graph.add_edge(src, dst, "purchased", quantity=quantity)
    return graph


def gold_purchase_edges(
    customers: list[dict[str, Any]], orders: list[dict[str, Any]]
) -> list[tuple[str, str, int]]:
    """Gold standard: sorted (customer_vertex, product, quantity) triples."""
    totals: dict[tuple[str, str], int] = {}
    for order in orders:
        for item in order.get("items", []):
            key = (f"c{order['customer_id']}", item["product_id"])
            totals[key] = totals.get(key, 0) + item["quantity"]
    return sorted((src, dst, q) for (src, dst), q in totals.items())


def purchase_graph_edges(graph: PropertyGraph) -> list[tuple[str, str, int]]:
    """Project a purchase graph back to comparable triples."""
    return sorted(
        (e.src, e.dst, e.properties.get("quantity", 0))
        for e in graph.edges("purchased")
    )


def graph_to_edge_rows(
    graph: PropertyGraph, edge_label: str | None = None
) -> list[dict[str, Any]]:
    """Convert edges to relational rows (src, dst, label + properties)."""
    rows = []
    for edge in graph.edges(edge_label):
        row: dict[str, Any] = {
            "src": edge.src,
            "dst": edge.dst,
            "label": edge.label,
        }
        row.update(edge.properties)
        rows.append(row)
    rows.sort(key=lambda r: (str(r["src"]), str(r["dst"]), r["label"]))
    return rows


def gold_knows_rows(
    knows_edges: list[tuple[int, int, int]]
) -> list[dict[str, Any]]:
    """Gold standard for the knows-edge table from generator triples."""
    rows = [
        {"src": src, "dst": dst, "label": "knows", "since": since}
        for src, dst, since in knows_edges
    ]
    rows.sort(key=lambda r: (str(r["src"]), str(r["dst"]), r["label"]))
    return rows
