"""Deterministic fault injection for the cluster stack.

The registry (:mod:`repro.faults.registry`) is the shared failpoint
mechanism every layer consults: the WAL's append path (torn writes and
bit flips behind the per-record checksums), the worker-process wire
protocol (hangs and delays behind the request deadlines), and the 2PC
coordinator (whose PR-4 ``crash_*`` attributes are now thin shims over
registry failpoints).  The chaos soak (:mod:`repro.faults.chaos` — kept
out of this namespace so importing :data:`FAULTS` never drags in the
cluster layer) drives seeded random schedules of those faults against a
live replicated cluster and asserts the invariants that make them safe.
"""

from repro.faults.registry import (
    ACTION_KINDS,
    FAULTS,
    FaultAction,
    Failpoint,
    FaultInjector,
)

__all__ = [
    "ACTION_KINDS",
    "FAULTS",
    "FaultAction",
    "Failpoint",
    "FaultInjector",
]
