"""``python -m repro chaos`` — run seeded chaos soaks from the shell.

Usage::

    python -m repro chaos --seed 7              # one soak
    python -m repro chaos --seeds 0-19          # a seed sweep (CI smoke)
    python -m repro chaos --seed 3 --pool processes --rounds 10

Each soak prints one summary line; any invariant violation aborts the
sweep with a non-zero exit code and the failing seed, which is all a
bisecting developer needs to reproduce it (`--seed N` replays the
exact schedule).
"""

from __future__ import annotations

import argparse

from repro.errors import ChaosInvariantError
from repro.faults.chaos import run_chaos


def _parse_seeds(spec: str) -> list[int]:
    """``"0-19"`` or ``"1,5,12"`` (ranges inclusive, mixable)."""
    seeds: list[int] = []
    for part in spec.split(","):
        part = part.strip()
        if "-" in part.lstrip("-")[1:] or ("-" in part and not part.startswith("-")):
            low, _, high = part.partition("-")
            seeds.extend(range(int(low), int(high) + 1))
        else:
            seeds.append(int(part))
    return seeds


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Seeded chaos soak over a live replicated cluster.",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--seed", type=int, help="run one soak with this seed")
    group.add_argument(
        "--seeds", metavar="SPEC",
        help='seed sweep: "0-19" (inclusive) or "1,5,12", mixable',
    )
    parser.add_argument(
        "--rounds", type=int, default=6, help="fault rounds per soak (default 6)"
    )
    parser.add_argument(
        "--pool", choices=("threads", "processes"), default="threads",
        help="shard scatter pool (processes adds the worker-hang drill)",
    )
    args = parser.parse_args(argv)

    seeds = [args.seed] if args.seed is not None else _parse_seeds(args.seeds)
    failed: list[int] = []
    for seed in seeds:
        try:
            report = run_chaos(seed, rounds=args.rounds, pool=args.pool)
        except ChaosInvariantError as exc:
            failed.append(seed)
            print(f"seed {seed}: FAIL — {exc}")
            continue
        print(
            f"seed {seed}: ok — events={','.join(report['events'])} "
            f"committed={report['committed']} "
            f"ambiguous={report['ambiguous_applied']}+"
            f"{report['ambiguous_dropped']} "
            f"checks={report['invariant_checks']}"
        )
    if failed:
        print(f"{len(failed)}/{len(seeds)} soak(s) failed: {failed}")
        return 1
    print(f"{len(seeds)}/{len(seeds)} soak(s) passed")
    return 0
