"""A seeded chaos soak over a live replicated sharded cluster.

The soak drives a 4-shard (by default) cluster with replica sets under
concurrent client load, injecting one scheduled fault *drill* per round
— coordinator crashes at every 2PC protocol step, torn WAL writes
followed by a power failure, follower bit rot repaired on rejoin,
leader kills, quorum loss with degraded-mode recovery, whole-cluster
crashes, and (with ``pool="processes"``) wedged shard workers caught by
the request deadline — and asserts the invariants that make those
faults survivable:

- **all-or-nothing**: a transfer moves both legs or neither; a
  half-applied transfer fails the soak immediately.
- **conservation**: the sum of all account balances never changes.
- **oracle parity**: after every round the cluster's balances match a
  single-process oracle ledger replaying the same committed transfers —
  the "1 node vs N nodes" equivalence check.
- **no hung threads**: every client thread joins; a wedged thread
  fails the soak.

Determinism: the entire fault schedule (which drill, which shard,
which replica, which protocol step) is drawn from one
``random.Random(seed)``; client load runs with *no* faults armed (the
drills are stop-the-world, single-threaded), so two runs with the same
seed produce the same event sequence and the same final ledger.

Transactions interrupted mid-protocol are *ambiguous* — the client got
an exception but the commit may or may not have happened.  The soak
resolves each one the way a real client would: read the accounts back
after recovery and accept exactly the pre-state or the post-state,
anything else being an atomicity violation.
"""

from __future__ import annotations

import random
import threading
from typing import Any

from repro.errors import (
    ChaosInvariantError,
    QuorumLostError,
    ReproError,
    SimulatedCrash,
)
from repro.faults.registry import FAULTS

NAMESPACE = "acct"
DOCS = "chaos_docs"
INITIAL_BALANCE = 100

#: Fault drills (one per round, seed-scheduled).  ``worker_hang`` is
#: appended when the cluster runs worker processes.
DRILLS = (
    "calm",
    "coordinator_crash",
    "wal_torn_crash",
    "bitrot_rejoin",
    "kill_leader",
    "quorum_loss",
    "cluster_crash",
)

TWO_PC_SITES = (
    "txn.2pc.after_prepares",
    "txn.2pc.before_decision",
    "txn.2pc.after_decision",
    "txn.2pc.commit_fanout",
)


class ChaosSoak:
    """One seeded soak run; see the module docstring for the contract."""

    def __init__(
        self,
        seed: int,
        rounds: int = 6,
        clients: int = 3,
        accounts: int = 48,
        n_shards: int = 4,
        transfers_per_client: int = 6,
        pool: str = "threads",
        request_timeout: float = 1.5,
    ) -> None:
        from repro.cluster.sharded import ShardedDatabase
        from repro.replication import ReplicaSetConfig

        self.seed = seed
        self.rounds = rounds
        self.clients = clients
        self.transfers_per_client = transfers_per_client
        self.pool = pool
        self.rng = random.Random(seed)
        self.db = ShardedDatabase(
            n_shards=n_shards,
            pool=pool,
            pool_workers=2 if pool == "processes" else None,
            replication=ReplicaSetConfig(
                replicas_per_shard=3,
                write_acks="majority",
                quorum_timeout_s=0.02,
            ),
            remote_request_timeout=request_timeout,
        )
        self.keys = [f"a{i:04d}" for i in range(accounts)]
        self.oracle: dict[str, int] = {}
        self.events: list[str] = []
        self.committed = 0
        self.ambiguous_applied = 0
        self.ambiguous_dropped = 0
        self.invariant_checks = 0

    # -- cluster interaction -------------------------------------------------

    def _load(self) -> None:
        db = self.db
        db.create_kv_namespace(NAMESPACE)
        db.create_collection(DOCS)
        with db.transaction() as s:
            for key in self.keys:
                s.kv_put(NAMESPACE, key, INITIAL_BALANCE)
            for i in range(16):
                s.doc_insert(DOCS, {"_id": f"d{i}", "n": i})
        self.oracle = {key: INITIAL_BALANCE for key in self.keys}
        for replica_set in db.replica_sets:
            replica_set.catch_up()

    def _transfer(self, src: str, dst: str, amount: int) -> None:
        def body(session: Any) -> None:
            a = session.kv_get(NAMESPACE, src)
            b = session.kv_get(NAMESPACE, dst)
            session.kv_put(NAMESPACE, src, a - amount)
            session.kv_put(NAMESPACE, dst, b + amount)

        self.db.run_transaction(body)

    def _read(self, *keys: str) -> list[int]:
        with self.db.transaction() as s:
            return [s.kv_get(NAMESPACE, key) for key in keys]

    def _keys_on_shard(self, shard_id: int) -> list[str]:
        router = self.db.router
        return [
            key for key in self.keys
            if router.shard_for(NAMESPACE, key) == shard_id
        ]

    def _cross_shard_pair(self) -> tuple[str, str]:
        router = self.db.router
        src = self.rng.choice(self.keys)
        home = router.shard_for(NAMESPACE, src)
        others = [
            key for key in self.keys
            if router.shard_for(NAMESPACE, key) != home
        ]
        return src, self.rng.choice(others)

    # -- ambiguity resolution -------------------------------------------------

    def _resolve(self, src: str, dst: str, amount: int) -> None:
        """Post-recovery verdict for an interrupted transfer.

        All-or-nothing is asserted here: the only legal observations
        are both legs applied or neither.
        """
        actual_src, actual_dst = self._read(src, dst)
        pre_src, pre_dst = self.oracle[src], self.oracle[dst]
        if (actual_src, actual_dst) == (pre_src - amount, pre_dst + amount):
            self.oracle[src] = actual_src
            self.oracle[dst] = actual_dst
            self.ambiguous_applied += 1
        elif (actual_src, actual_dst) == (pre_src, pre_dst):
            self.ambiguous_dropped += 1
        else:
            raise ChaosInvariantError(
                f"seed {self.seed}: half-applied transfer {src}->{dst} "
                f"({amount}): expected {(pre_src, pre_dst)} or "
                f"{(pre_src - amount, pre_dst + amount)}, "
                f"read {(actual_src, actual_dst)}"
            )

    def _check_invariants(self, where: str) -> None:
        balances = self._read(*self.keys)
        total = sum(balances)
        expected_total = INITIAL_BALANCE * len(self.keys)
        if total != expected_total:
            raise ChaosInvariantError(
                f"seed {self.seed} [{where}]: conservation violated — "
                f"total {total} != {expected_total}"
            )
        for key, balance in zip(self.keys, balances):
            if balance != self.oracle[key]:
                raise ChaosInvariantError(
                    f"seed {self.seed} [{where}]: {key} holds {balance}, "
                    f"oracle says {self.oracle[key]} (1-vs-N parity broken)"
                )
        self.invariant_checks += 1

    # -- concurrent load ------------------------------------------------------

    def _load_round(self) -> None:
        """Concurrent transfers on disjoint account slices, no faults armed.

        Disjoint slices mean no write-write conflicts: every transfer
        is expected to commit, and the per-thread plans (drawn from the
        master RNG *before* the threads start) apply to the oracle in
        plan order regardless of scheduling.
        """
        per_client = len(self.keys) // self.clients
        plans: list[list[tuple[str, str, int]]] = []
        for c in range(self.clients):
            slice_keys = self.keys[c * per_client : (c + 1) * per_client]
            plan = []
            for _ in range(self.transfers_per_client):
                src, dst = self.rng.sample(slice_keys, 2)
                plan.append((src, dst, self.rng.randint(1, 9)))
            plans.append(plan)
        # stopped_at[c] = index of client c's interrupted transfer (the
        # ambiguous one); everything before it definitely committed.
        stopped_at: dict[int, int] = {}
        stopped_lock = threading.Lock()

        def client(c: int, plan: list[tuple[str, str, int]]) -> None:
            for i, (src, dst, amount) in enumerate(plan):
                try:
                    self._transfer(src, dst, amount)
                except ReproError:
                    # Ambiguous; resolved single-threaded after the
                    # join.  Stop this plan — later expected states
                    # would build on an unknown outcome.
                    with stopped_lock:
                        stopped_at[c] = i
                    return

        threads = [
            threading.Thread(target=client, args=(c, plan), daemon=True)
            for c, plan in enumerate(plans)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        if any(thread.is_alive() for thread in threads):
            raise ChaosInvariantError(
                f"seed {self.seed}: client thread hung during load round"
            )
        for c, plan in enumerate(plans):
            cutoff = stopped_at.get(c, len(plan))
            for src, dst, amount in plan[:cutoff]:
                self.oracle[src] -= amount
                self.oracle[dst] += amount
                self.committed += 1
        for c, i in sorted(stopped_at.items()):
            self._resolve(*plans[c][i])

    # -- fault drills ---------------------------------------------------------

    def _drill(self, name: str) -> None:
        getattr(self, f"_drill_{name}")()

    def _drill_calm(self) -> None:
        """No fault this round — the baseline the others diff against."""

    def _drill_coordinator_crash(self) -> None:
        """SimulatedCrash at a seed-chosen 2PC protocol step."""
        site = self.rng.choice(TWO_PC_SITES)
        rule = FAULTS.arm(site, "raise", exc=SimulatedCrash)
        src, dst = self._cross_shard_pair()
        amount = self.rng.randint(1, 9)
        try:
            self._transfer(src, dst, amount)
        except SimulatedCrash:
            pass
        finally:
            FAULTS.disarm(rule)
        self.db.recover_in_doubt()
        self._resolve(src, dst, amount)

    def _drill_wal_torn_crash(self) -> None:
        """Torn write on a leader WAL + whole-cluster power failure.

        The torn record models the append in flight when power died.
        Recovery truncates the leader's log at the bad checksum; the
        follower copies (shipped before the tear — their own appends
        re-checksum independently) elect an intact leader, so the
        committed prefix survives and only the in-flight transfer is
        ambiguous.
        """
        shard_id = self.rng.randrange(self.db.n_shards)
        tag = f"shard{shard_id}"
        rule = FAULTS.arm(
            "wal.append",
            "torn_write",
            when=lambda ctx: ctx["tag"] == tag and ctx["type"] == "write",
        )
        keys = self._keys_on_shard(shard_id)
        src, dst = self.rng.sample(keys, 2)
        amount = self.rng.randint(1, 9)
        try:
            self._transfer(src, dst, amount)
        except ReproError:
            pass
        finally:
            FAULTS.disarm(rule)
        self.db = self.db.crash()
        self._resolve(src, dst, amount)

    def _drill_bitrot_rejoin(self) -> None:
        """Flip a bit in one follower's log; rejoin repairs it.

        The rejoining node verifies checksums, truncates at the rotten
        record, and reships the cut suffix from the leader — detected
        corruption, zero data loss.
        """
        shard_id = self.rng.randrange(self.db.n_shards)
        replica_set = self.db.replica_sets[shard_id]
        followers = replica_set.live_followers()
        if not followers:
            return
        victim = self.rng.choice(followers)
        if victim.wal.durable_length == 0:
            return
        # Only the durable prefix is checksum-verified (an unsynced
        # tail is discarded wholesale at restart anyway).
        victim.wal.corrupt(self.rng.randrange(victim.wal.durable_length))
        replica_set.kill(victim.replica_id)
        replica_set.rejoin(victim.replica_id)
        if victim.wal.corrupt_records_detected == 0:
            raise ChaosInvariantError(
                f"seed {self.seed}: bit rot on shard {shard_id} follower "
                f"{victim.replica_id} went undetected on rejoin"
            )
        if replica_set.lag_records(victim) != 0:
            raise ChaosInvariantError(
                f"seed {self.seed}: corrupted follower {victim.replica_id} "
                "did not fully resync after rejoin"
            )

    def _drill_kill_leader(self) -> None:
        """Shard leader dies; a follower promotes; the old leader rejoins."""
        shard_id = self.rng.randrange(self.db.n_shards)
        replica_set = self.db.replica_sets[shard_id]
        old_leader = replica_set.leader_id
        self.db.kill_leader(shard_id)
        replica_set.rejoin(old_leader)

    def _drill_quorum_loss(self) -> None:
        """Lose the write quorum: fail fast, keep reading, auto-recover."""
        shard_id = self.rng.randrange(self.db.n_shards)
        replica_set = self.db.replica_sets[shard_id]
        follower_ids = [r.replica_id for r in replica_set.live_followers()]
        for follower_id in follower_ids:
            replica_set.kill(follower_id)
        keys = self._keys_on_shard(shard_id)
        src, dst = self.rng.sample(keys, 2)
        amount = self.rng.randint(1, 9)
        try:
            self._transfer(src, dst, amount)
        except QuorumLostError:
            pass
        else:
            raise ChaosInvariantError(
                f"seed {self.seed}: write acknowledged on shard {shard_id} "
                "with its quorum lost"
            )
        if not replica_set.degraded:
            raise ChaosInvariantError(
                f"seed {self.seed}: shard {shard_id} not marked degraded "
                "after quorum loss"
            )
        # Reads must keep serving from the degraded shard.
        self._read(src, dst)
        for follower_id in follower_ids:
            replica_set.rejoin(follower_id)
        # The refused transfer was durable on the leader but never
        # acknowledged — resolve it like any ambiguous outcome.
        self._resolve(src, dst, amount)
        # Writes resume (this also proves the degraded flag cleared).
        retry_amount = self.rng.randint(1, 9)
        self._transfer(src, dst, retry_amount)
        self.oracle[src] -= retry_amount
        self.oracle[dst] += retry_amount
        self.committed += 1
        if replica_set.degraded:
            raise ChaosInvariantError(
                f"seed {self.seed}: shard {shard_id} still degraded after "
                "follower rejoin + successful write"
            )

    def _drill_cluster_crash(self) -> None:
        """Whole-cluster power failure; every committed transfer survives."""
        self.db = self.db.crash()

    def _drill_worker_hang(self) -> None:
        """Wedge one shard worker; the request deadline must recover."""
        rule = FAULTS.arm("remote.request", "hang")
        try:
            rows = self.db.query(f"FOR d IN {DOCS} RETURN d")
        finally:
            FAULTS.disarm(rule)
            FAULTS.release()
        if len(rows) != 16:
            raise ChaosInvariantError(
                f"seed {self.seed}: scatter under a hung worker returned "
                f"{len(rows)} of 16 rows"
            )
        pool = self.db._remote_pool
        if pool is not None and pool.request_timeouts == 0:
            raise ChaosInvariantError(
                f"seed {self.seed}: hang fault armed but no request "
                "deadline fired"
            )

    # -- the soak -------------------------------------------------------------

    def run(self) -> dict[str, Any]:
        FAULTS.reset()
        FAULTS.seed(self.seed)
        drills = list(DRILLS)
        if self.pool == "processes":
            drills.append("worker_hang")
        injected = 0
        try:
            self._load()
            self._check_invariants("load")
            for round_no in range(self.rounds):
                self._load_round()
                drill = self.rng.choice(drills)
                self.events.append(drill)
                self._drill(drill)
                self._check_invariants(f"round {round_no}: {drill}")
            injected = sum(FAULTS.site_fires.values())
        finally:
            FAULTS.reset()
            self.db.close()
        return {
            "seed": self.seed,
            "rounds": self.rounds,
            "pool": self.pool,
            "events": list(self.events),
            "committed": self.committed,
            "ambiguous_applied": self.ambiguous_applied,
            "ambiguous_dropped": self.ambiguous_dropped,
            "invariant_checks": self.invariant_checks,
            "faults_injected": injected,
            "ok": True,
        }


def run_chaos(seed: int, **kwargs: Any) -> dict[str, Any]:
    """Run one seeded soak; returns its report (raises on violation)."""
    return ChaosSoak(seed, **kwargs).run()
