"""A process-wide failpoint registry with deterministic seeded schedules.

Fault sites are plain dotted names (``"wal.append"``,
``"remote.request"``, ``"txn.2pc.before_decision"``) that production
code *evaluates* at the matching point; what — if anything — happens
there is decided by the rules armed on the registry.  The split keeps
the disabled hot path exact: every call site guards with
``if FAULTS.enabled:`` — a single attribute load — so a cluster with no
armed failpoints executes the pre-instrumentation code byte for byte.

Schedules (all deterministic under :meth:`FaultInjector.seed`):

- **fire-on-Nth-hit** (``nth=k``): the rule fires on its k-th matching
  evaluation, then consumes itself (unless ``count`` allows more).
- **probability** (``probability=p``): each matching evaluation fires
  with probability *p* drawn from the registry's seeded RNG.
- **one-shot** is the default (``count=1``); ``count=n`` allows n
  fires, ``count=None`` with a probability means "until disarmed".

Actions:

=============  ============================================================
``raise``      raise an exception (default
               :class:`~repro.errors.SimulatedCrash`) at the site
``torn_write`` data fault: the caller (the WAL) records the write as
               partially flushed — its checksum can never re-validate
``bit_flip``   data fault: the caller flips a stored bit so the record's
               checksum mismatches on verification
``delay``      sleep ``seconds`` at the site
``hang``       block at the site until :meth:`FaultInjector.release`
               (or ``seconds`` as a safety bound) — models a wedged
               worker or a stuck I/O
=============  ============================================================

``raise``/``delay``/``hang`` execute inline when the site is evaluated
with :meth:`FaultInjector.hit`; the data faults are returned to the
caller (only the WAL knows how to tear its own record).  Rules can be
narrowed with ``when=lambda ctx: ...`` over the keyword context the
site supplies (e.g. ``ctx["tag"]`` names the WAL's owning shard).
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from collections.abc import Callable, Iterator
from typing import Any

from repro.errors import SimulatedCrash

ACTION_KINDS = ("raise", "torn_write", "bit_flip", "delay", "hang")


class Failpoint:
    """One armed rule: a site, an action kind, and a firing schedule."""

    __slots__ = (
        "site", "kind", "nth", "probability", "remaining", "when",
        "exc", "seconds", "payload", "hits", "fires", "armed", "event",
    )

    def __init__(
        self,
        site: str,
        kind: str,
        *,
        nth: int | None,
        probability: float | None,
        count: int | None,
        when: Callable[[dict[str, Any]], bool] | None,
        exc: Callable[..., BaseException] | type[BaseException] | None,
        seconds: float,
        payload: dict[str, Any],
    ) -> None:
        if kind not in ACTION_KINDS:
            raise ValueError(f"unknown fault action {kind!r}")
        if nth is not None and nth < 1:
            raise ValueError(f"nth must be >= 1, got {nth}")
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self.site = site
        self.kind = kind
        self.nth = nth
        self.probability = probability
        # None = unlimited fires (meaningful with a probability schedule).
        self.remaining = count
        self.when = when
        self.exc = exc
        self.seconds = seconds
        self.payload = payload
        self.hits = 0       # matching evaluations seen
        self.fires = 0      # times the action actually triggered
        self.armed = True
        # Hang actions block on this; release() sets it.
        self.event = threading.Event() if kind == "hang" else None

    def exception(self, ctx: dict[str, Any] | None = None) -> BaseException:
        """Build the exception a ``raise`` action throws at its site."""
        if self.exc is None:
            return SimulatedCrash(f"failpoint {self.site!r} fired")
        if isinstance(self.exc, type) and issubclass(self.exc, BaseException):
            return self.exc(f"failpoint {self.site!r} fired")
        return self.exc(self.site, ctx or {})


class FaultAction:
    """What one evaluation of a site produced: the fired rule + context."""

    __slots__ = ("rule", "ctx")

    def __init__(self, rule: Failpoint, ctx: dict[str, Any]) -> None:
        self.rule = rule
        self.ctx = ctx

    @property
    def kind(self) -> str:
        return self.rule.kind

    @property
    def seconds(self) -> float:
        return self.rule.seconds

    @property
    def payload(self) -> dict[str, Any]:
        return self.rule.payload

    def exception(self) -> BaseException:
        return self.rule.exception(self.ctx)


class FaultInjector:
    """Thread-safe failpoint registry with a seeded RNG for schedules.

    One process-global instance (:data:`FAULTS`) serves the whole stack;
    private instances exist where cross-talk must be impossible (each
    2PC coordinator keeps one for its legacy ``crash_*`` shims).
    ``enabled`` is maintained as a plain attribute so hot paths pay one
    attribute load when nothing is armed.
    """

    def __init__(self, seed: int = 0) -> None:
        self._lock = threading.RLock()
        self._rules: dict[str, list[Failpoint]] = {}
        self._rng = random.Random(seed)
        self.enabled = False
        self.site_hits: dict[str, int] = {}
        self.site_fires: dict[str, int] = {}

    # -- arming ---------------------------------------------------------------

    def seed(self, seed: int) -> None:
        """Re-seed the probability-schedule RNG (determinism anchor)."""
        with self._lock:
            self._rng = random.Random(seed)

    def arm(
        self,
        site: str,
        kind: str = "raise",
        *,
        nth: int | None = None,
        probability: float | None = None,
        count: int | None = 1,
        when: Callable[[dict[str, Any]], bool] | None = None,
        exc: Callable[..., BaseException] | type[BaseException] | None = None,
        seconds: float = 0.0,
        **payload: Any,
    ) -> Failpoint:
        """Arm one rule at *site*; returns it (pass to :meth:`disarm`)."""
        rule = Failpoint(
            site, kind, nth=nth, probability=probability, count=count,
            when=when, exc=exc, seconds=seconds, payload=payload,
        )
        with self._lock:
            self._rules.setdefault(site, []).append(rule)
            self.enabled = True
        return rule

    def disarm(self, target: Failpoint | str | None = None) -> None:
        """Disarm one rule, every rule at a site, or (None) everything."""
        with self._lock:
            if isinstance(target, Failpoint):
                target.armed = False
            elif isinstance(target, str):
                for rule in self._rules.get(target, ()):
                    rule.armed = False
            else:
                for rules in self._rules.values():
                    for rule in rules:
                        rule.armed = False
            self._refresh_enabled_locked()

    def reset(self) -> None:
        """Disarm everything, release hangs, zero counters, reseed to 0."""
        with self._lock:
            self.release()
            self._rules.clear()
            self.enabled = False
            self.site_hits.clear()
            self.site_fires.clear()
            self._rng = random.Random(0)

    def _refresh_enabled_locked(self) -> None:
        self.enabled = any(
            rule.armed for rules in self._rules.values() for rule in rules
        )

    @contextlib.contextmanager
    def scoped(self, site: str, kind: str = "raise", **kw: Any) -> Iterator[Failpoint]:
        """``with FAULTS.scoped("wal.append", "torn_write"): ...``"""
        rule = self.arm(site, kind, **kw)
        try:
            yield rule
        finally:
            self.disarm(rule)

    # -- evaluation -----------------------------------------------------------

    def fire(self, site: str, **ctx: Any) -> FaultAction | None:
        """Evaluate *site*: the first armed matching rule that is due fires.

        Returns the action for the caller to apply (data faults), or
        None.  Does *not* execute raise/delay/hang — use :meth:`hit`
        at sites where inline execution is wanted.
        """
        with self._lock:
            rules = self._rules.get(site)
            if not rules:
                return None
            self.site_hits[site] = self.site_hits.get(site, 0) + 1
            for rule in rules:
                if not rule.armed:
                    continue
                if rule.when is not None and not rule.when(ctx):
                    continue
                rule.hits += 1
                if rule.nth is not None and rule.hits != rule.nth:
                    continue
                if (
                    rule.probability is not None
                    and self._rng.random() >= rule.probability
                ):
                    continue
                rule.fires += 1
                self.site_fires[site] = self.site_fires.get(site, 0) + 1
                if rule.remaining is not None:
                    rule.remaining -= 1
                    if rule.remaining <= 0:
                        rule.armed = False
                        self._refresh_enabled_locked()
                return FaultAction(rule, ctx)
            return None

    def hit(self, site: str, **ctx: Any) -> FaultAction | None:
        """Evaluate *site* and execute inline actions (raise/delay/hang).

        Data-fault actions (torn_write/bit_flip) are returned untouched
        for the caller to apply; sites that cannot apply them may
        ignore the return value.
        """
        action = self.fire(site, **ctx)
        if action is None:
            return None
        if action.kind == "raise":
            raise action.exception()
        if action.kind == "delay":
            time.sleep(action.seconds)
            return None
        if action.kind == "hang":
            # Block until released; `seconds` bounds the hang so an
            # unreleased failpoint cannot wedge a test run forever.
            action.rule.event.wait(action.seconds or None)
            return None
        return action

    def release(self, site: str | None = None) -> int:
        """Unblock hang actions (all sites when *site* is None)."""
        released = 0
        with self._lock:
            for name, rules in self._rules.items():
                if site is not None and name != site:
                    continue
                for rule in rules:
                    if rule.event is not None and not rule.event.is_set():
                        rule.event.set()
                        released += 1
        return released

    # -- exposition -----------------------------------------------------------

    def metrics(self) -> dict[str, int]:
        """Flat counters for the observability registry's collector."""
        with self._lock:
            out: dict[str, int] = {
                "armed": sum(
                    1 for rules in self._rules.values()
                    for rule in rules if rule.armed
                ),
                "injected_total": sum(self.site_fires.values()),
            }
            for site, n in sorted(self.site_fires.items()):
                out[f"injected_{site}_total"] = n
            return out


#: The process-wide registry every production call site consults.
FAULTS = FaultInjector()
