"""Quorum reads and client-session guarantees over the replicated store.

Extensions of the consistency pillar beyond the paper's minimum:

- :meth:`quorum_read` — Dynamo-style read from R replicas taking the
  newest version; with W=1 primary writes, R=N is guaranteed fresh for
  delivered versions and larger R monotonically improves freshness.
- :class:`ClientSession` — *session guarantees* (read-your-writes,
  monotonic reads): the client remembers the highest sequence number it
  has observed per key and falls back to the primary whenever a replica
  read would violate the guarantee.  The measured fallback rate is the
  price of the guarantee — it rises with replication lag, which is the
  E4b ablation's shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.consistency.replication import ReadObservation, ReplicatedStore
from repro.errors import BenchmarkError
from repro.util.rng import DeterministicRng


def quorum_read(
    store: ReplicatedStore, key: str, r: int, rng: DeterministicRng
) -> ReadObservation:
    """Read *r* distinct replicas and return the freshest observation."""
    n = store.config.replicas
    if not 1 <= r <= n:
        raise BenchmarkError(f"quorum size {r} out of range 1..{n}")
    replicas = rng.sample(list(range(n)), r)
    best: ReadObservation | None = None
    for replica in replicas:
        obs = store.read_replica(key, replica)
        if best is None or obs.seq_read > best.seq_read:
            best = obs
    assert best is not None
    return best


@dataclass
class SessionStats:
    """Accounting for one client session."""

    reads: int = 0
    fresh: int = 0
    fallbacks: int = 0
    guarantee_violations_prevented: int = 0

    @property
    def fallback_rate(self) -> float:
        return self.fallbacks / self.reads if self.reads else 0.0


@dataclass
class ClientSession:
    """A client with read-your-writes and monotonic-reads guarantees.

    ``floor[key]`` is the highest sequence number this session has
    *observed or written* for the key; a replica read below the floor
    would violate a guarantee, so the session falls back to the primary
    (and the fallback is counted — that's the metric).
    """

    store: ReplicatedStore
    rng: DeterministicRng
    read_your_writes: bool = True
    monotonic_reads: bool = True
    stats: SessionStats = field(default_factory=SessionStats)
    _floor: dict[str, int] = field(default_factory=dict)

    def write(self, key: str, value: Any) -> int:
        seq = self.store.write(key, value)
        if self.read_your_writes:
            self._floor[key] = seq
        return seq

    def read(self, key: str) -> Any:
        """Guarantee-respecting read; prefers a random replica."""
        self.stats.reads += 1
        obs = self.store.read_replica(
            key, self.rng.randint(0, self.store.config.replicas - 1)
        )
        if obs.is_fresh:
            self.stats.fresh += 1
        floor = self._floor.get(key, 0)
        if obs.seq_read < floor:
            # Guarantee would be violated: go to the primary instead.
            self.stats.fallbacks += 1
            self.stats.guarantee_violations_prevented += 1
            value = self.store.read_primary(key)
            latest = obs.seq_latest
            if self.monotonic_reads:
                self._floor[key] = max(floor, latest)
            return value
        if self.monotonic_reads and obs.seq_read > floor:
            self._floor[key] = obs.seq_read
        return obs.value


@dataclass
class ClusterSessionToken:
    """Per-shard read-your-writes/monotonic-reads floor for the cluster.

    The cluster-scale sibling of :class:`ClientSession`: where the
    simulator keys its floor on per-key sequence numbers, the real
    replica sets key it on **per-shard commit timestamps** — the one
    monotonic quantity that survives compaction, crash recovery *and*
    leader failover (a promoted follower's manager resumes at the
    maximum replayed commit ts).  A follower may serve a shard's read
    only when it has applied at least ``floor(shard_id)``; otherwise the
    replica set falls back to the leader and counts it, same metric as
    the simulator.  Pass a token to ``ShardedDatabase.query(...,
    session=token)`` and ``begin(session=token)`` to tie reads and
    writes into one session.
    """

    floors: dict[int, int] = field(default_factory=dict)

    def observe(self, shard_id: int, commit_ts: int) -> None:
        """Raise the shard's floor to *commit_ts* (never lowers it)."""
        if commit_ts > self.floors.get(shard_id, 0):
            self.floors[shard_id] = commit_ts

    def floor(self, shard_id: int) -> int:
        return self.floors.get(shard_id, 0)


def quorum_freshness(
    store_factory,
    r_values: list[int],
    samples: int = 300,
    seed: int = 23,
    probe_delay: int | None = None,
) -> dict[int, float]:
    """P(quorum read is fresh) per quorum size R.

    Probes *probe_delay* ticks after the write — by default the store's
    base lag, i.e. mid-delivery-window, where some replicas have the
    version and some (jittered) don't.  That is exactly where quorum
    size matters: R=1 hits a stale replica often, R=N almost never.
    *store_factory* builds a fresh store per R so in-flight traffic is
    identical across the sweep.
    """
    out: dict[int, float] = {}
    for r in r_values:
        store = store_factory()
        delay = probe_delay if probe_delay is not None else store.config.base_lag
        rng = DeterministicRng(seed)
        fresh = 0
        for i in range(samples):
            key = f"q{i}"
            store.write(key, i)
            store.advance(delay)
            obs = quorum_read(store, key, r, rng)
            if obs.is_fresh:
                fresh += 1
            store.advance(1)
        out[r] = fresh / samples
    return out


def session_fallback_rate(
    store_factory, trials: int = 400, think_ticks: int = 1, seed: int = 29
) -> SessionStats:
    """Write-then-read loop through a guaranteed session.

    Returns the aggregated stats; the fallback rate is the fraction of
    reads the session had to redirect to the primary to honour
    read-your-writes/monotonic-reads.
    """
    store = store_factory()
    session = ClientSession(store, DeterministicRng(seed))
    for i in range(trials):
        key = f"s{i % 20}"
        session.write(key, i)
        store.advance(think_ticks)
        value = session.read(key)
        if value != i:
            raise BenchmarkError(
                "session guarantee violated: read-your-writes returned "
                f"{value!r} after writing {i!r}"
            )
        store.advance(1)
    return session.stats
