"""A deterministic discrete-event simulator of an eventually consistent store.

One primary accepts all writes; R replicas receive them asynchronously
with configurable delay and loss.  Anti-entropy repairs lost updates on
a fixed period, so the store is genuinely *eventually* consistent.  Time
is a logical tick counter advanced by the caller — every run is exactly
reproducible from the seed (the substitution DESIGN.md documents for the
paper's "actually deployed systems").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from repro.errors import BenchmarkError
from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class ReplicationConfig:
    """Tuning knobs for the replicated store."""

    replicas: int = 3
    base_lag: int = 4  # minimum delivery delay in ticks
    jitter: int = 4  # uniform extra delay in [0, jitter]
    loss_probability: float = 0.0  # chance a replication message is dropped
    anti_entropy_period: int = 50  # full repair every N ticks (0 = never)
    seed: int = 7

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise BenchmarkError("need at least one replica")
        if self.base_lag < 0 or self.jitter < 0:
            raise BenchmarkError("lag/jitter must be non-negative")
        if not 0.0 <= self.loss_probability < 1.0:
            raise BenchmarkError("loss probability must be in [0, 1)")


@dataclass(frozen=True)
class _Versioned:
    """A versioned value: sequence number + write tick."""

    seq: int
    write_tick: int
    value: Any


@dataclass
class ReadObservation:
    """What one replica read returned, with staleness accounting."""

    key: str
    replica: int
    tick: int
    value: Any
    seq_read: int  # 0 = key unseen at the replica
    seq_latest: int  # primary's latest sequence for the key
    latest_write_tick: int

    @property
    def is_fresh(self) -> bool:
        return self.seq_read == self.seq_latest

    @property
    def version_staleness(self) -> int:
        """How many committed versions behind the read was."""
        return self.seq_latest - self.seq_read

    @property
    def time_staleness(self) -> int:
        """Ticks since the latest write the read failed to observe (0 if fresh)."""
        return 0 if self.is_fresh else max(0, self.tick - self.latest_write_tick)


class ReplicatedStore:
    """Primary + async replicas over a logical clock."""

    def __init__(self, config: ReplicationConfig | None = None) -> None:
        self.config = config if config is not None else ReplicationConfig()
        self._rng = DeterministicRng(self.config.seed)
        self.now = 0
        self._seq = 0
        self._primary: dict[str, _Versioned] = {}
        self._replicas: list[dict[str, _Versioned]] = [
            {} for _ in range(self.config.replicas)
        ]
        # (deliver_tick, tiebreak, replica, key, version)
        self._in_flight: list[tuple[int, int, int, str, _Versioned]] = []
        self._tiebreak = 0
        self.messages_sent = 0
        self.messages_lost = 0

    # -- time ------------------------------------------------------------

    def advance(self, ticks: int = 1) -> None:
        """Advance the clock, delivering due messages and running repair."""
        if ticks < 0:
            raise BenchmarkError("cannot advance time backwards")
        for _ in range(ticks):
            self.now += 1
            self._deliver_due()
            period = self.config.anti_entropy_period
            if period and self.now % period == 0:
                self.anti_entropy()

    def _deliver_due(self) -> None:
        while self._in_flight and self._in_flight[0][0] <= self.now:
            _, _, replica, key, version = heapq.heappop(self._in_flight)
            current = self._replicas[replica].get(key)
            if current is None or current.seq < version.seq:
                self._replicas[replica][key] = version

    # -- writes ------------------------------------------------------------

    def write(self, key: str, value: Any) -> int:
        """Write through the primary; returns the sequence number."""
        self._seq += 1
        version = _Versioned(self._seq, self.now, value)
        self._primary[key] = version
        for replica in range(self.config.replicas):
            self.messages_sent += 1
            if self._rng.bernoulli(self.config.loss_probability):
                self.messages_lost += 1
                continue  # anti-entropy will repair it eventually
            delay = self.config.base_lag + (
                self._rng.randint(0, self.config.jitter) if self.config.jitter else 0
            )
            self._tiebreak += 1
            heapq.heappush(
                self._in_flight,
                (self.now + delay, self._tiebreak, replica, key, version),
            )
        return self._seq

    def anti_entropy(self) -> int:
        """Synchronise every replica to the primary; returns repairs made."""
        repairs = 0
        for replica_state in self._replicas:
            for key, version in self._primary.items():
                current = replica_state.get(key)
                if current is None or current.seq < version.seq:
                    replica_state[key] = version
                    repairs += 1
        return repairs

    # -- reads ------------------------------------------------------------------

    def read_primary(self, key: str) -> Any:
        version = self._primary.get(key)
        return version.value if version is not None else None

    def read_replica(self, key: str, replica: int | None = None) -> ReadObservation:
        """Read from a replica (random when unspecified), with accounting."""
        if replica is None:
            replica = self._rng.randint(0, self.config.replicas - 1)
        if not 0 <= replica < self.config.replicas:
            raise BenchmarkError(f"no replica {replica}")
        latest = self._primary.get(key)
        seen = self._replicas[replica].get(key)
        return ReadObservation(
            key=key,
            replica=replica,
            tick=self.now,
            value=seen.value if seen is not None else None,
            seq_read=seen.seq if seen is not None else 0,
            seq_latest=latest.seq if latest is not None else 0,
            latest_write_tick=latest.write_tick if latest is not None else 0,
        )

    # -- introspection -------------------------------------------------------------

    def replica_lag_versions(self) -> list[int]:
        """Per-replica count of keys whose replica copy is behind the primary."""
        lags = []
        for replica_state in self._replicas:
            lag = 0
            for key, version in self._primary.items():
                seen = replica_state.get(key)
                if seen is None or seen.seq < version.seq:
                    lag += 1
            lags.append(lag)
        return lags

    def pending_messages(self) -> int:
        return len(self._in_flight)
