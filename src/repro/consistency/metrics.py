"""Eventual-consistency metrics over the replicated store.

Three metrics, all computed by driving the simulator with a seeded
workload so results are exactly reproducible:

- **staleness distribution**: version- and time-staleness of replica
  reads under a steady write load;
- **consistency probability curve** (PBS-style): P(read is fresh | Δt
  ticks after the write) as Δt grows — the "probabilistically bounded
  staleness" shape;
- **read-your-writes violation rate**: a client writes then immediately
  reads from a (possibly different) replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consistency.replication import ReplicatedStore, ReplicationConfig
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.timing import Timer


@dataclass
class StalenessStats:
    """Aggregated staleness of a batch of replica reads."""

    reads: int
    fresh: int
    version_staleness: Timer = field(default_factory=Timer)
    time_staleness: Timer = field(default_factory=Timer)

    @property
    def fresh_fraction(self) -> float:
        return self.fresh / self.reads if self.reads else 1.0

    def summary(self) -> dict[str, float]:
        return {
            "reads": float(self.reads),
            "fresh_fraction": self.fresh_fraction,
            "mean_version_staleness": self.version_staleness.mean,
            "p95_version_staleness": self.version_staleness.percentile(95),
            "mean_time_staleness": self.time_staleness.mean,
            "p95_time_staleness": self.time_staleness.percentile(95),
        }


def staleness_distribution(
    config: ReplicationConfig,
    num_keys: int = 50,
    num_ops: int = 2000,
    write_fraction: float = 0.3,
    seed: int = 11,
) -> StalenessStats:
    """Steady mixed read/write load; every read's staleness is recorded."""
    store = ReplicatedStore(config)
    rng = DeterministicRng(derive_seed(seed, "staleness"))
    keys = [f"k{i}" for i in range(num_keys)]
    reads = 0
    fresh = 0
    stats = StalenessStats(reads=0, fresh=0)
    for op in range(num_ops):
        key = keys[rng.zipf(num_keys, 0.9)]
        if rng.bernoulli(write_fraction):
            store.write(key, op)
        else:
            obs = store.read_replica(key)
            if obs.seq_latest == 0:
                continue  # key never written; nothing to measure
            reads += 1
            if obs.is_fresh:
                fresh += 1
            stats.version_staleness.record(float(obs.version_staleness))
            stats.time_staleness.record(float(obs.time_staleness))
        store.advance(1)
    stats.reads = reads
    stats.fresh = fresh
    return stats


@dataclass
class ConsistencyCurve:
    """P(fresh read) as a function of ticks elapsed since the write."""

    delays: list[int]
    probabilities: list[float]
    samples_per_delay: int

    def probability_at(self, delay: int) -> float:
        return self.probabilities[self.delays.index(delay)]

    def time_to_probability(self, target: float) -> int | None:
        """Smallest measured delay whose freshness probability >= target."""
        for delay, p in zip(self.delays, self.probabilities):
            if p >= target:
                return delay
        return None


def consistency_probability(
    config: ReplicationConfig,
    delays: list[int] | None = None,
    samples: int = 300,
    seed: int = 13,
) -> ConsistencyCurve:
    """PBS-style curve: write, wait Δt, read a random replica.

    Each sample uses a fresh key so earlier writes never mask staleness.
    """
    delays = delays if delays is not None else [0, 1, 2, 4, 8, 16, 32, 64]
    probabilities: list[float] = []
    for delay in delays:
        store = ReplicatedStore(config)
        rng = DeterministicRng(derive_seed(seed, "pbs", delay))
        fresh = 0
        for i in range(samples):
            key = f"probe_{delay}_{i}"
            store.write(key, i)
            store.advance(delay)
            obs = store.read_replica(key, rng.randint(0, config.replicas - 1))
            if obs.is_fresh:
                fresh += 1
            # Space the probes out so in-flight traffic stays realistic.
            store.advance(1)
        probabilities.append(fresh / samples)
    return ConsistencyCurve(delays, probabilities, samples)


def read_your_writes_violation_rate(
    config: ReplicationConfig,
    trials: int = 500,
    read_delay: int = 1,
    seed: int = 17,
) -> float:
    """Fraction of write-then-read sequences that miss the client's write."""
    store = ReplicatedStore(config)
    rng = DeterministicRng(derive_seed(seed, "ryw"))
    violations = 0
    for i in range(trials):
        key = f"ryw_{i}"
        store.write(key, i)
        store.advance(read_delay)
        obs = store.read_replica(key, rng.randint(0, config.replicas - 1))
        if not obs.is_fresh:
            violations += 1
        store.advance(1)
    return violations / trials
