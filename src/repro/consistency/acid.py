"""ACID anomaly probes across isolation levels.

Each probe stages a canonical anomaly as a deterministic schedule on a
fresh :class:`~repro.engine.database.MultiModelDatabase` and reports
whether the anomaly *occurred* at a given isolation level.  A prevented
anomaly shows up either as correct values (MVCC hides the problem) or as
an abort/block (locking or first-committer-wins stops it) — both count
as "not occurred".

The probes deliberately span models where the anomaly is multi-model in
nature: the *fractured read* probe is the paper's own example (an order
update touching JSON orders, KV feedback and XML invoices must never be
half-visible).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.consistency.schedules import ScriptedTxn, run_interleaved
from repro.engine.database import MultiModelDatabase, Session
from repro.engine.transactions import IsolationLevel
from repro.models.relational.schema import Column, ColumnType, TableSchema
from repro.models.xml.node import element, text as xml_text

ACCOUNTS_SCHEMA = TableSchema(
    "accounts",
    (
        Column("id", ColumnType.INTEGER, nullable=False),
        Column("balance", ColumnType.INTEGER, nullable=False),
    ),
    primary_key=("id",),
)


def _fresh_db() -> MultiModelDatabase:
    db = MultiModelDatabase()
    db.create_table(ACCOUNTS_SCHEMA)
    db.create_collection("orders")
    db.create_kv_namespace("feedback")
    db.create_xml_collection("invoices")
    with db.transaction() as tx:
        tx.sql_insert("accounts", {"id": 1, "balance": 100})
        tx.sql_insert("accounts", {"id": 2, "balance": 100})
        tx.doc_insert("orders", {"_id": "o1", "status": "pending", "total_price": 30.0})
        tx.kv_put("feedback", "p1/1", {"rating": 3})
        tx.xml_put(
            "invoices", "o1",
            element("invoice", {"id": "o1"},
                    element("status", {}, xml_text("pending"))),
        )
    return db


# ---------------------------------------------------------------------------
# Probes: return True when the anomaly OCCURRED
# ---------------------------------------------------------------------------


def probe_dirty_read(isolation: IsolationLevel) -> bool:
    """T2 reads T1's uncommitted write; T1 then aborts.

    Anomaly iff T2 observed the never-committed value.
    """
    db = _fresh_db()
    observed: list[int | None] = []

    def t1_write(s: Session) -> None:
        s.sql_update("accounts", (1,), {"balance": 999})

    def t1_abort(s: Session) -> None:
        s.abort()

    def t2_read(s: Session) -> None:
        row = s.sql_get("accounts", (1,))
        observed.append(row["balance"] if row else None)

    txns = [
        ScriptedTxn("T1", [t1_write, t1_abort]),
        ScriptedTxn("T2", [t2_read]),
    ]
    # order: T1 writes, T2 reads, T1 aborts, T2 commits
    run_interleaved(db, txns, isolation, order=[0, 1, 0, 1])
    return bool(observed and observed[0] == 999)


def probe_lost_update(isolation: IsolationLevel) -> bool:
    """Classic increment race: both read 100, both write read+10.

    Anomaly iff the final balance is 110 (one increment lost) when both
    transactions reported success.
    """
    db = _fresh_db()

    def make_increment() -> Callable[[Session], None]:
        state: dict[str, int] = {}

        def read(s: Session) -> None:
            state["seen"] = s.sql_get("accounts", (1,))["balance"]

        def write(s: Session) -> None:
            s.sql_update("accounts", (1,), {"balance": state["seen"] + 10})

        read.pair = write  # type: ignore[attr-defined]
        return read

    r1 = make_increment()
    r2 = make_increment()
    txns = [
        ScriptedTxn("T1", [r1, r1.pair]),  # type: ignore[attr-defined]
        ScriptedTxn("T2", [r2, r2.pair]),  # type: ignore[attr-defined]
    ]
    # interleave reads before writes: T1.read T2.read T1.write T1.commit T2.write T2.commit
    result = run_interleaved(db, txns, isolation, order=[0, 1, 0, 0, 1, 1])
    with db.transaction() as tx:
        final = tx.sql_get("accounts", (1,))["balance"]
    both_committed = len(result.committed) == 2
    return both_committed and final == 110


def probe_non_repeatable_read(isolation: IsolationLevel) -> bool:
    """T1 reads a row twice; T2 updates and commits in between.

    Anomaly iff T1's two reads differ.
    """
    db = _fresh_db()
    seen: list[int] = []

    def t1_read(s: Session) -> None:
        seen.append(s.sql_get("accounts", (2,))["balance"])

    def t2_update(s: Session) -> None:
        s.sql_update("accounts", (2,), {"balance": 555})

    txns = [
        ScriptedTxn("T1", [t1_read, t1_read]),
        ScriptedTxn("T2", [t2_update]),
    ]
    # T1 reads, T2 updates+commits, T1 reads again
    run_interleaved(db, txns, isolation, order=[0, 1, 1, 0, 0])
    return len(seen) == 2 and seen[0] != seen[1]


def probe_fractured_multimodel_read(isolation: IsolationLevel) -> bool:
    """The paper's example: an order update touches JSON + KV + XML.

    T2 updates all three models atomically (status pending->shipped,
    rating 3->5, invoice status text).  T1 reads the three models with
    T2's commit in between.  Anomaly iff T1 sees a *mixed* state — some
    models updated, others not.
    """
    db = _fresh_db()
    seen: dict[str, object] = {}

    def t1_read_doc(s: Session) -> None:
        seen["doc"] = s.doc_get("orders", "o1")["status"]

    def t1_read_kv_xml(s: Session) -> None:
        seen["kv"] = s.kv_get("feedback", "p1/1")["rating"]
        seen["xml"] = s.xml_xpath("invoices", "o1", "/invoice/status/text()")[0]

    def t2_update_all(s: Session) -> None:
        s.doc_update("orders", "o1", {"status": "shipped"})
        s.kv_put("feedback", "p1/1", {"rating": 5})
        s.xml_put(
            "invoices", "o1",
            element("invoice", {"id": "o1"},
                    element("status", {}, xml_text("shipped"))),
        )

    txns = [
        ScriptedTxn("T1", [t1_read_doc, t1_read_kv_xml]),
        ScriptedTxn("T2", [t2_update_all]),
    ]
    # T1 reads the order, T2 commits its three-model update, T1 reads KV+XML
    run_interleaved(db, txns, isolation, order=[0, 1, 1, 0, 0])
    if not seen:
        return False
    old_state = seen.get("doc") == "pending"
    new_tail = seen.get("kv") == 5 or seen.get("xml") == "shipped"
    return old_state and new_tail


def probe_write_skew(isolation: IsolationLevel) -> bool:
    """Two accounts with invariant balance(1)+balance(2) >= 100.

    Each transaction checks the sum then withdraws 100 from a *different*
    account.  Under snapshot isolation both pass the check on disjoint
    write sets — committing both violates the invariant.  Anomaly iff
    both commit and the final sum < 100.
    """
    db = _fresh_db()

    def make_withdraw(account: int) -> list[Callable[[Session], None]]:
        state: dict[str, int] = {}

        def check(s: Session) -> None:
            a = s.sql_get("accounts", (1,))["balance"]
            b = s.sql_get("accounts", (2,))["balance"]
            state["sum"] = a + b

        def withdraw(s: Session) -> None:
            if state["sum"] >= 200:  # enough to take 100 and keep >= 100
                row = s.sql_get("accounts", (account,))
                s.sql_update("accounts", (account,), {"balance": row["balance"] - 100})

        return [check, withdraw]

    txns = [
        ScriptedTxn("T1", make_withdraw(1)),
        ScriptedTxn("T2", make_withdraw(2)),
    ]
    result = run_interleaved(db, txns, isolation, order=[0, 1, 0, 1, 0, 1])
    if len(result.committed) != 2:
        return False
    with db.transaction() as tx:
        total = (
            tx.sql_get("accounts", (1,))["balance"]
            + tx.sql_get("accounts", (2,))["balance"]
        )
    return total < 100


PROBES: dict[str, Callable[[IsolationLevel], bool]] = {
    "dirty_read": probe_dirty_read,
    "lost_update": probe_lost_update,
    "non_repeatable_read": probe_non_repeatable_read,
    "fractured_multimodel_read": probe_fractured_multimodel_read,
    "write_skew": probe_write_skew,
}


@dataclass
class AnomalyMatrix:
    """anomaly name -> isolation level -> occurred?"""

    cells: dict[str, dict[IsolationLevel, bool]] = field(default_factory=dict)

    def occurred(self, anomaly: str, isolation: IsolationLevel) -> bool:
        return self.cells[anomaly][isolation]

    def anomalies_at(self, isolation: IsolationLevel) -> int:
        return sum(1 for row in self.cells.values() if row[isolation])


def probe_all(
    levels: list[IsolationLevel] | None = None,
) -> AnomalyMatrix:
    """Run every probe at every isolation level (the E3 anomaly table)."""
    levels = levels or list(IsolationLevel)
    matrix = AnomalyMatrix()
    for name, probe in PROBES.items():
        matrix.cells[name] = {level: probe(level) for level in levels}
    return matrix
