"""Multi-model transaction & consistency metrics (pillar 3).

Two halves, matching the paper's "consistency metrics of ACID and
eventual consistency":

- :mod:`repro.consistency.schedules` + :mod:`repro.consistency.acid` —
  deterministic interleaved schedules against the engine and anomaly
  probes (dirty read, lost update, non-repeatable read, fractured
  multi-model read, write skew) across isolation levels.
- :mod:`repro.consistency.replication` + :mod:`repro.consistency.metrics`
  — a discrete-event replicated store with configurable lag/loss and the
  staleness / PBS-style probability / read-your-writes metrics over it.
"""

from repro.consistency.acid import AnomalyMatrix, probe_all, PROBES
from repro.consistency.metrics import (
    ConsistencyCurve,
    StalenessStats,
    consistency_probability,
    read_your_writes_violation_rate,
    staleness_distribution,
)
from repro.consistency.replication import ReplicatedStore, ReplicationConfig
from repro.consistency.schedules import ScheduleResult, ScriptedTxn, run_interleaved

__all__ = [
    "AnomalyMatrix",
    "ConsistencyCurve",
    "PROBES",
    "ReplicatedStore",
    "ReplicationConfig",
    "ScheduleResult",
    "ScriptedTxn",
    "StalenessStats",
    "consistency_probability",
    "probe_all",
    "read_your_writes_violation_rate",
    "run_interleaved",
    "staleness_distribution",
]
