"""Deterministic interleaved execution of scripted transactions.

The engine's logical concurrency (see :mod:`repro.engine.locks`) lets the
benchmark execute *exact* interleavings single-threadedly: every anomaly
experiment is a schedule, and every run of it is bit-identical.  The
executor advances transactions step by step, parks transactions whose
lock requests raise :class:`~repro.engine.locks.WouldBlock`, and records
aborts from deadlock or first-committer-wins conflicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.engine.database import MultiModelDatabase, Session
from repro.engine.locks import WouldBlock
from repro.engine.transactions import IsolationLevel
from repro.errors import BenchmarkError, TransactionAborted

Step = Callable[[Session], Any]


@dataclass
class ScriptedTxn:
    """A named transaction as an ordered list of step callables."""

    name: str
    steps: list[Step]


@dataclass
class ScheduleResult:
    """Outcome of one interleaved run."""

    committed: list[str] = field(default_factory=list)
    aborted: dict[str, str] = field(default_factory=dict)  # name -> reason
    step_values: dict[str, list[Any]] = field(default_factory=dict)
    blocked_events: int = 0

    def value(self, txn_name: str, step_index: int) -> Any:
        return self.step_values[txn_name][step_index]

    @property
    def abort_count(self) -> int:
        return len(self.aborted)


def run_interleaved(
    db: MultiModelDatabase,
    txns: list[ScriptedTxn],
    isolation: IsolationLevel,
    order: list[int] | None = None,
    max_rounds: int = 10_000,
) -> ScheduleResult:
    """Run *txns* interleaved under *isolation*.

    *order* is a sequence of transaction indices; each entry means "run
    the next step of that transaction".  Extra entries for finished
    transactions are skipped; if order is exhausted (or None), remaining
    steps run round-robin.  A transaction's commit is an implicit final
    step.  Blocked transactions retry whenever another transaction
    commits or aborts; a schedule where every live transaction is blocked
    and none can finish raises (it would be a real deadlock the detector
    missed — asserting here keeps the lock manager honest).
    """
    result = ScheduleResult(step_values={t.name: [] for t in txns})
    sessions: list[Session | None] = [db.begin(isolation) for t in txns]
    cursors = [0] * len(txns)
    done = [False] * len(txns)
    blocked = [False] * len(txns)

    explicit = list(order) if order is not None else []
    explicit_pos = 0
    rounds = 0
    rr_next = 0

    def finished() -> bool:
        return all(done)

    def pick_next() -> int | None:
        nonlocal explicit_pos, rr_next
        while explicit_pos < len(explicit):
            idx = explicit[explicit_pos]
            explicit_pos += 1
            if not 0 <= idx < len(txns):
                raise BenchmarkError(f"schedule index {idx} out of range")
            if not done[idx] and not blocked[idx]:
                return idx
        for offset in range(len(txns)):
            idx = (rr_next + offset) % len(txns)
            if not done[idx] and not blocked[idx]:
                rr_next = idx + 1
                return idx
        return None

    def unblock_all() -> None:
        for i in range(len(txns)):
            blocked[i] = False

    while not finished():
        rounds += 1
        if rounds > max_rounds:
            raise BenchmarkError("schedule did not terminate (livelock?)")
        idx = pick_next()
        if idx is None:
            live = [t.name for i, t in enumerate(txns) if not done[i]]
            raise BenchmarkError(
                f"all live transactions blocked: {live} — undetected deadlock"
            )
        txn = txns[idx]
        session = sessions[idx]
        assert session is not None
        try:
            if cursors[idx] < len(txn.steps):
                value = txn.steps[cursors[idx]](session)
                result.step_values[txn.name].append(value)
                cursors[idx] += 1
                if session.txn.state.value == "aborted":
                    # The script aborted its own transaction.
                    result.aborted[txn.name] = "scripted abort"
                    done[idx] = True
                    sessions[idx] = None
                    unblock_all()
            else:
                session.commit()
                result.committed.append(txn.name)
                done[idx] = True
                sessions[idx] = None
                unblock_all()
        except WouldBlock:
            result.blocked_events += 1
            blocked[idx] = True
        except TransactionAborted as exc:
            # Deadlock victims are still ACTIVE (the lock manager raised
            # mid-acquire); first-committer-wins losers were already
            # aborted by the commit path.  Normalise to aborted.
            if session.txn.state.value == "active":
                session.abort()
            result.aborted[txn.name] = f"{type(exc).__name__}: {exc}"
            done[idx] = True
            sessions[idx] = None
            unblock_all()
    return result
