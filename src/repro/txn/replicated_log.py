"""A replicated coordinator decision log.

The 2PC coordinator's decision record *is* the commit point of a
cross-shard transaction, which makes the coordinator log the single
scariest object in the cluster: lose it and every in-doubt participant
is stuck.  :class:`ReplicatedCoordinatorLog` removes that single point
of failure the same way the shard replica sets do for data — every
append is shipped synchronously to enough follower copies that a
majority (or all, or just the primary, per ``write_acks``) holds the
record before the append returns.  Because :meth:`CoordinatorLog.append`
is the funnel for every record, a durable COMMIT decision has reached
its quorum before :meth:`TwoPhaseCoordinator._run_commit` starts the
commit fan-out — the satellite guarantee "quorum ack before commit-all".

Failure model (mirrors the WAL crash simulation):

- :meth:`crash` — power loss: the primary's unsynced tail vanishes, but
  follower copies were synced on ship, so recovery adopts the longest
  copy; a quorum-acked decision always survives.
- :meth:`kill_primary` — the primary log *node* is lost entirely.  The
  longest follower copy is promoted to primary (Raft-style longest-log
  election, degenerate because follower copies are always prefixes of
  the primary stream and therefore never conflict).
"""

from __future__ import annotations

from typing import Any

from repro.errors import ClusterError
from repro.txn.coordinator import CoordinatorLog


def _acks_needed(write_acks: int | str, n_replicas: int) -> int:
    """Resolve a ``write_acks`` knob (1 | "majority" | "all" | int)."""
    if write_acks == "majority":
        return n_replicas // 2 + 1
    if write_acks == "all":
        return n_replicas
    try:
        acks = int(write_acks)
    except (TypeError, ValueError):
        raise ClusterError(
            f"write_acks={write_acks!r}: expected 1..{n_replicas}, "
            '"majority" or "all"'
        ) from None
    if not 1 <= acks <= n_replicas:
        raise ClusterError(
            f"write_acks={write_acks!r} out of range 1..{n_replicas}"
        )
    return acks


class ReplicatedCoordinatorLog(CoordinatorLog):
    """CoordinatorLog whose records are mirrored onto follower copies.

    The primary keeps the base-class behaviour (locking, durability
    watermark, truncation, the global-id floor); followers are plain
    record lists that receive every append synchronously up to the
    quorum and are fully resynced whenever the primary truncates.
    Follower copies model log replicas on other nodes: they are always
    a prefix of the primary's append stream, synced on arrival.
    """

    def __init__(
        self,
        n_replicas: int = 3,
        write_acks: int | str = "majority",
        sync_every_append: bool = True,
    ) -> None:
        super().__init__(sync_every_append)
        if n_replicas < 1:
            raise ClusterError(f"coordinator log needs >= 1 replica, got {n_replicas}")
        self.n_replicas = n_replicas
        self.write_acks = write_acks
        self.acks_needed = _acks_needed(write_acks, n_replicas)
        self._followers: list[list[dict[str, Any]]] = [
            [] for _ in range(n_replicas - 1)
        ]
        self.ships = 0
        self.failovers = 0

    # -- replication ---------------------------------------------------------

    def _ship_locked(self, n_targets: int) -> None:
        """Mirror the primary's record list onto the first *n_targets* copies."""
        for follower in self._followers[:n_targets]:
            missing = self._records[len(follower):]
            if missing:
                follower.extend(missing)
                self.ships += len(missing)

    def append(self, record: dict[str, Any]) -> None:
        super().append(record)
        with self._lock:
            # The quorum counts the primary itself; lagging copies past
            # the quorum catch up on the next truncate/crash resync.
            self._ship_locked(self.acks_needed - 1)

    def replica_lengths(self) -> list[int]:
        """Record count per copy, primary first (observability surface)."""
        with self._lock:
            return [len(self._records)] + [len(f) for f in self._followers]

    # -- crash & failover ----------------------------------------------------

    def crash(self) -> int:
        """Power failure: drop the unsynced tail, adopt the longest copy.

        Follower copies are synced on ship, so a record that reached its
        quorum outlives the primary's page cache — the replicated log's
        entire reason to exist.
        """
        with self._lock:
            lost = len(self._records) - self._durable
            del self._records[self._durable:]
            self._adopt_longest_locked()
            return lost

    def kill_primary(self) -> int:
        """Lose the primary log node entirely; fail over to a follower copy.

        Returns the number of records the promoted copy holds.  Raises
        :class:`ClusterError` when there is no follower to promote (a
        1-replica log has no failover story — that is the point of the
        knob).
        """
        if not self._followers:
            raise ClusterError("coordinator log has no follower copy to promote")
        with self._lock:
            self._records.clear()
            self._durable = 0
            self._adopt_longest_locked()
            self.failovers += 1
            return len(self._records)

    def _adopt_longest_locked(self) -> None:
        """Promote the longest copy (primary included) and resync the rest.

        Copies are prefixes of one append stream, so "longest" is the
        complete merge — no conflict resolution needed.
        """
        best = max(self._followers, key=len, default=None)
        if best is not None and len(best) > len(self._records):
            self._records[:] = best
        self._durable = len(self._records)
        for follower in self._followers:
            follower[:] = self._records

    # -- truncation (propagates to every copy) -------------------------------

    def truncate(self) -> int:
        dropped = super().truncate()
        if dropped:
            with self._lock:
                for follower in self._followers:
                    follower[:] = self._records[: self._durable]
        return dropped

    def checkpoint(self) -> int:
        dropped = super().checkpoint()
        if dropped:
            with self._lock:
                for follower in self._followers:
                    follower.clear()
        return dropped

    # -- metrics -------------------------------------------------------------

    def replication_metrics(self) -> dict[str, int]:
        lengths = self.replica_lengths()
        return {
            "coordinator_log_replicas": self.n_replicas,
            "coordinator_log_acks_needed": self.acks_needed,
            "coordinator_log_ships": self.ships,
            "coordinator_log_failovers": self.failovers,
            "coordinator_log_min_copy_records": min(lengths),
            "coordinator_log_max_copy_records": max(lengths),
        }
