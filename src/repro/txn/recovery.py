"""Crash recovery for in-doubt 2PC participants.

After a crash a shard's WAL may contain prepared transactions with no
verdict — their writes are durable but neither redone nor discarded by
:meth:`~repro.engine.wal.WriteAheadLog.replay`.  The resolver closes
each one by consulting the coordinator log:

- durable COMMIT decision for the global txn → append a participant
  commit-decision record (with a fresh local commit timestamp, since
  the crashed participant never assigned one), so replay redoes it;
- anything else → presumed abort: append an abort decision, so replay
  keeps skipping it.

Either way the WAL leaves recovery with zero in-doubt transactions, so
no crash schedule can strand a cross-shard transaction half-applied.
"""

from __future__ import annotations

from repro.engine.wal import WriteAheadLog
from repro.txn.coordinator import CoordinatorLog


def resolve_in_doubt(
    wal: WriteAheadLog, coordinator_log: CoordinatorLog
) -> dict[str, int]:
    """Settle every in-doubt prepared txn in *wal*; returns counters.

    Must run after ``wal.crash()`` (or on a freshly loaded log) and
    before :meth:`MultiModelDatabase.recover`, which only replays
    decided transactions.  Idempotent: a second pass finds nothing in
    doubt.
    """
    committed = coordinator_log.committed_global_txns()
    in_doubt = wal.prepared_in_doubt()
    stats = {"recovered_commit": 0, "recovered_abort": 0}
    next_ts = wal.max_commit_ts() + 1
    # Local txn-id order is prepare order on this shard, which is the
    # coordinator's participant order — a deterministic replay schedule.
    for txn_id in sorted(in_doubt):
        global_id = in_doubt[txn_id]
        if global_id in committed:
            wal.log_decision(txn_id, "commit", next_ts, global_id)
            next_ts += 1
            stats["recovered_commit"] += 1
        else:
            wal.log_decision(txn_id, "abort", None, global_id)
            stats["recovered_abort"] += 1
    return stats
