"""The two-phase-commit coordinator and its durable decision log.

Cross-shard transactions need a single commit point; per-shard WALs
each have their own.  The coordinator supplies it: participants make
their writes durable and vote at PREPARE, the coordinator's durable
COMMIT decision record *is* the transaction's commit, and the commit
fan-out merely tells each participant a verdict that can no longer
change.  Crash anywhere and recovery re-derives every in-doubt
participant's verdict from this log (see :mod:`repro.txn.recovery`):

- decision record durable → the transaction committed; redo it
  everywhere it prepared.
- no decision record → presumed abort; a prepared participant that
  never hears back rolls its writes away.

The protocol objects here are deliberately cluster-agnostic: a
*participant* is anything with ``prepare(global_id)``,
``commit_prepared()`` and ``abort_prepared()`` (the shard adapter lives
in :mod:`repro.cluster.sharded`).  Fault injection goes through
failpoints (:mod:`repro.faults.registry`) evaluated at each protocol
step — ``txn.2pc.after_prepares``, ``txn.2pc.before_decision``,
``txn.2pc.after_decision``, ``txn.2pc.commit_fanout``.  The classic
``crash_*`` attributes survive as shims that arm one-shot rules on a
coordinator-**private** injector (a process-global rule would fire on
whichever concurrent cluster commits first); the process-global
registry is consulted too, which is how the chaos soak reaches these
sites.  Either way the coordinator raises
:class:`~repro.errors.SimulatedCrash` at exactly that protocol step,
and everything already durable stays durable.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from time import perf_counter
from typing import Any, Protocol

from repro.errors import SimulatedCrash, TransactionAborted, WalError
from repro.faults.registry import FAULTS, Failpoint, FaultInjector


class Participant(Protocol):
    """What the coordinator needs from one prepared resource manager."""

    def prepare(self, global_id: int) -> None: ...

    def commit_prepared(self) -> int: ...

    def abort_prepared(self) -> None: ...


class CoordinatorLog:
    """The coordinator's append-only decision log with a durability line.

    Same crash model as the shard WALs: :meth:`sync` advances the
    durable watermark, :meth:`crash` discards the unsynced tail.
    Decision appends always force a sync — an unsynced commit decision
    would be a commit point that a power failure can undo.

    Record shapes:

    - ``{"type": "decision", "gtxn": id, "decision": "commit"|"abort",
      "shards": [ids]}``
    - ``{"type": "end", "gtxn": id}`` — every participant acknowledged;
      the transaction needs no recovery work (log-truncation marker).
    """

    def __init__(self, sync_every_append: bool = True) -> None:
        self._records: list[dict[str, Any]] = []
        self._durable = 0
        self.sync_every_append = sync_every_append
        self.appends = 0
        self.syncs = 0
        self.truncations = 0
        # Global-id high-water mark preserved across truncation, so id
        # allocation stays monotonic after ended records are dropped.
        self._gtxn_floor = 0
        # Unlike the per-shard WALs (whose managers are serialised by the
        # cluster's shard locks), this log is shared by every client
        # thread committing cross-shard transactions — appends must be
        # atomic or record counters drift under concurrency.
        self._lock = threading.Lock()

    # -- appending -----------------------------------------------------------

    def append(self, record: dict[str, Any]) -> None:
        if "type" not in record:
            raise WalError(f"coordinator record missing 'type': {record!r}")
        with self._lock:
            self._records.append(record)
            self.appends += 1
            if self.sync_every_append:
                self._sync_locked()

    def log_decision(
        self,
        global_id: int,
        decision: str,
        shards: list[int],
        trace_id: int | None = None,
    ) -> None:
        if decision not in ("commit", "abort"):
            raise WalError(f"bad coordinator decision {decision!r}")
        record: dict[str, Any] = {
            "type": "decision", "gtxn": global_id, "decision": decision,
            "shards": list(shards),
        }
        # The query/transaction trace id rides on the decision record so
        # a span tree can be correlated with its commit point; absent
        # entirely when tracing was off (recovery ignores it either way).
        if trace_id is not None:
            record["trace"] = trace_id
        self.append(record)
        if not self.sync_every_append:
            self.sync()

    def log_end(self, global_id: int) -> None:
        self.append({"type": "end", "gtxn": global_id})

    def sync(self) -> None:
        with self._lock:
            self._sync_locked()

    def _sync_locked(self) -> None:
        self._durable = len(self._records)
        self.syncs += 1

    # -- crash & recovery ----------------------------------------------------

    def crash(self) -> int:
        """Discard the unsynced tail; returns records lost."""
        with self._lock:
            lost = len(self._records) - self._durable
            del self._records[self._durable:]
            return lost

    def truncate(self) -> int:
        """Drop durable records of fully-acknowledged transactions.

        A transaction with an ``end`` marker needs no recovery work —
        every participant acknowledged the verdict — so its decision
        and end records are dead weight.  Without this the log grows
        forever (one decision + one end per cross-shard commit).
        Called after crash recovery has resolved in-doubt participants;
        may also be called any time as an online checkpoint.  Returns
        the number of records dropped.  The global-id high-water mark
        survives via an internal floor, so
        :meth:`max_global_txn` (id-allocation) is unaffected.
        """
        with self._lock:
            durable = self._records[: self._durable]
            ended = {rec["gtxn"] for rec in durable if rec["type"] == "end"}
            if not ended:
                return 0
            kept = [rec for rec in durable if rec["gtxn"] not in ended]
            dropped = len(durable) - len(kept)
            self._records[: self._durable] = kept
            self._durable -= dropped
            self._gtxn_floor = max(self._gtxn_floor, max(ended))
            self.truncations += 1
            return dropped

    def checkpoint(self) -> int:
        """Drop *every* durable record, preserving the global-id floor.

        Only safe when the caller knows no participant anywhere can
        still be in doubt — i.e. immediately after cluster-wide crash
        recovery, where :func:`~repro.txn.recovery.resolve_in_doubt`
        has appended a force-synced verdict to every prepared
        participant's WAL.  At that point even decision records without
        ``end`` markers (in-flight at the crash) are dead weight, which
        plain :meth:`truncate` must conservatively keep.  Returns the
        number of records dropped.
        """
        with self._lock:
            durable = self._records[: self._durable]
            if not durable:
                return 0
            self._gtxn_floor = max(
                self._gtxn_floor, max(rec["gtxn"] for rec in durable)
            )
            del self._records[: self._durable]
            self._durable = 0
            self.truncations += 1
            return len(durable)

    def records(self) -> Iterator[dict[str, Any]]:
        return iter(self._records[: self._durable])

    def __len__(self) -> int:
        return len(self._records)

    def committed_global_txns(self) -> set[int]:
        """Global ids with a durable COMMIT decision (the commit points)."""
        return {
            rec["gtxn"]
            for rec in self.records()
            if rec["type"] == "decision" and rec["decision"] == "commit"
        }

    def max_global_txn(self) -> int:
        """Largest global id ever logged (0 when none) — id allocation floor.

        Truncation-safe: ids of dropped (fully-ended) transactions are
        remembered in an internal floor.
        """
        highest = max((rec["gtxn"] for rec in self.records()), default=0)
        return max(highest, self._gtxn_floor)


class CommitStats:
    """Commit-protocol counters surfaced by ``ShardedDatabase.stats()``."""

    _FIELDS = (
        "fast_path_commits",
        "two_phase_commits",
        "prepares",
        "aborts_in_prepare",
        "recovered_in_doubt",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self._FIELDS:
            setattr(self, name, 0)

    def incr(self, name: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + by)

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in self._FIELDS}


class TwoPhaseCoordinator:
    """Drives prepare-all → decide → commit-all over 2PC participants.

    One instance per cluster; global transaction ids are allocated
    monotonically and survive restarts via the decision log's high-water
    mark.  The four ``crash_*`` attributes inject a simulated failure at
    the matching protocol step (each fires once, then clears) — they are
    properties arming one-shot failpoints on this coordinator's private
    injector, so concurrent clusters in one process can never trip each
    other's crash points.
    """

    def __init__(self, log: CoordinatorLog, stats: CommitStats | None = None) -> None:
        self.log = log
        self.stats = stats if stats is not None else CommitStats()
        # Set by the owning cluster when its Observability is enabled:
        # prepare/commit latencies land in histograms and every protocol
        # outcome (commit/abort/in_doubt) is counted.  None = no
        # instrumentation, the default for standalone use.
        self.obs: Any = None
        self._id_lock = threading.Lock()
        self._next_global_id = log.max_global_txn() + 1
        # Fault injection: the private registry behind the crash_*
        # shims; chaos schedules additionally reach the same sites via
        # the process-global FAULTS (see _fire).
        self.faults = FaultInjector()
        self._legacy: dict[str, tuple[Failpoint, Any]] = {}

    # -- legacy crash-point shims ------------------------------------------

    def _arm_legacy(
        self, name: str, site: str, value: Any, when: Any, exc: Any
    ) -> None:
        old = self._legacy.pop(name, None)
        if old is not None:
            self.faults.disarm(old[0])
        if value is None or value is False:
            return
        rule = self.faults.arm(site, when=when, exc=exc)
        self._legacy[name] = (rule, value)

    def _legacy_value(self, name: str, default: Any) -> Any:
        entry = self._legacy.get(name)
        if entry is None or not entry[0].armed:
            return default
        return entry[1]

    @property
    def crash_after_prepares(self) -> int | None:
        """Crash after N participants prepared (0 = before any)."""
        return self._legacy_value("crash_after_prepares", None)

    @crash_after_prepares.setter
    def crash_after_prepares(self, value: int | None) -> None:
        self._arm_legacy(
            "crash_after_prepares",
            "txn.2pc.after_prepares",
            value,
            when=lambda ctx: ctx["n_done"] == value,
            exc=lambda site, ctx: SimulatedCrash(
                f"global txn {ctx['gtxn']}: coordinator crashed after "
                f"{ctx['n_done']} prepare(s)"
            ),
        )

    @property
    def crash_before_decision(self) -> bool:
        """Crash before the decision record (presumed abort)."""
        return self._legacy_value("crash_before_decision", False)

    @crash_before_decision.setter
    def crash_before_decision(self, value: bool) -> None:
        self._arm_legacy(
            "crash_before_decision",
            "txn.2pc.before_decision",
            bool(value),
            when=None,
            exc=lambda site, ctx: SimulatedCrash(
                f"global txn {ctx['gtxn']}: coordinator crashed before the "
                "commit decision (presumed abort)"
            ),
        )

    @property
    def crash_after_decision(self) -> bool:
        """Crash after the durable commit decision (in doubt, must commit)."""
        return self._legacy_value("crash_after_decision", False)

    @crash_after_decision.setter
    def crash_after_decision(self, value: bool) -> None:
        self._arm_legacy(
            "crash_after_decision",
            "txn.2pc.after_decision",
            bool(value),
            when=None,
            exc=lambda site, ctx: SimulatedCrash(
                f"global txn {ctx['gtxn']}: coordinator crashed after the "
                "commit decision (participants in doubt, must commit)"
            ),
        )

    @property
    def crash_after_commits(self) -> int | None:
        """Crash after N participants learned the commit verdict."""
        return self._legacy_value("crash_after_commits", None)

    @crash_after_commits.setter
    def crash_after_commits(self, value: int | None) -> None:
        self._arm_legacy(
            "crash_after_commits",
            "txn.2pc.commit_fanout",
            value,
            when=lambda ctx: ctx["n_done"] == value,
            exc=lambda site, ctx: SimulatedCrash(
                f"global txn {ctx['gtxn']}: crashed mid commit fan-out "
                f"after {ctx['n_done']} of {ctx['n_total']} participants"
            ),
        )

    def _fire(self, site: str, **ctx: Any) -> None:
        """Evaluate one protocol failpoint: private shims, then global."""
        if self.faults.enabled:
            self.faults.hit(site, **ctx)
        if FAULTS.enabled:
            FAULTS.hit(site, **ctx)

    def next_global_id(self) -> int:
        with self._id_lock:
            global_id = self._next_global_id
            self._next_global_id += 1
            return global_id

    def commit(
        self,
        participants: list[tuple[int, Participant]],
        trace_id: int | None = None,
    ) -> int:
        """Atomically commit one transaction across *participants*.

        ``participants`` are ``(shard_id, participant)`` pairs, each with
        buffered writes.  Returns the global transaction id.  Raises
        :class:`TransactionAborted` (after aborting every participant)
        when any prepare votes NO, or :class:`SimulatedCrash` at an
        injected fault — leaving prepared participants in doubt, exactly
        as a real coordinator failure would.

        *trace_id* (from the session's tracer, when tracing is on) is
        stamped onto the decision record; with :attr:`obs` set, the
        protocol's latencies and outcome are recorded too.
        """
        obs = self.obs
        if obs is not None and not obs.enabled:
            obs = None
        started = perf_counter()
        try:
            global_id = self._run_commit(participants, trace_id, obs)
        except SimulatedCrash:
            if obs is not None:
                obs.observe_2pc_outcome("in_doubt")
            raise
        except BaseException:
            if obs is not None:
                obs.observe_2pc_outcome("abort")
            raise
        if obs is not None:
            obs.twopc_commit_seconds.observe(perf_counter() - started)
            obs.observe_2pc_outcome("commit")
        return global_id

    def _run_commit(
        self,
        participants: list[tuple[int, Participant]],
        trace_id: int | None,
        obs: Any,
    ) -> int:
        global_id = self.next_global_id()
        shard_ids = [shard_id for shard_id, _ in participants]
        prepared: list[Participant] = []
        try:
            for n_done, (_, participant) in enumerate(participants):
                self._fire(
                    "txn.2pc.after_prepares", n_done=n_done, gtxn=global_id
                )
                prepare_started = perf_counter()
                participant.prepare(global_id)
                if obs is not None:
                    obs.twopc_prepare_seconds.observe(
                        perf_counter() - prepare_started
                    )
                prepared.append(participant)
                self.stats.incr("prepares")
            self._fire(
                "txn.2pc.after_prepares",
                n_done=len(participants),
                gtxn=global_id,
            )
        except SimulatedCrash:
            raise  # in-doubt on purpose: recovery must resolve
        except BaseException as exc:
            # A NO vote (or any participant failure): the decision is
            # ABORT.  Log it for observability (presumed abort would
            # let us skip this) and release every prepared participant.
            self.stats.incr("aborts_in_prepare")
            self.log.log_decision(global_id, "abort", shard_ids, trace_id=trace_id)
            for participant in prepared:
                participant.abort_prepared()
            if isinstance(exc, TransactionAborted):
                raise
            raise TransactionAborted(
                f"global txn {global_id}: prepare failed: {exc}"
            ) from exc
        self._fire("txn.2pc.before_decision", gtxn=global_id)
        # THE commit point: once this record is durable the transaction
        # is committed, whatever happens to the fan-out below.
        self.log.log_decision(global_id, "commit", shard_ids, trace_id=trace_id)
        self._fire("txn.2pc.after_decision", gtxn=global_id)
        for n_done, (_, participant) in enumerate(participants):
            self._fire(
                "txn.2pc.commit_fanout",
                n_done=n_done,
                n_total=len(participants),
                gtxn=global_id,
            )
            participant.commit_prepared()
        self.log.log_end(global_id)
        self.stats.incr("two_phase_commits")
        return global_id
