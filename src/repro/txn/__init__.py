"""Distributed atomic commit: the 2PC coordinator subsystem.

Gives cross-shard transactions the same all-or-nothing guarantee the
single-node engine already has, by layering a two-phase-commit
coordinator (with its own durable decision log) over the per-shard
write-ahead logs.  See :mod:`repro.txn.coordinator` for the protocol
and :mod:`repro.txn.recovery` for in-doubt resolution after a crash.
"""

from repro.txn.coordinator import (
    CommitStats,
    CoordinatorLog,
    Participant,
    TwoPhaseCoordinator,
)
from repro.txn.recovery import resolve_in_doubt
from repro.txn.replicated_log import ReplicatedCoordinatorLog

__all__ = [
    "CommitStats",
    "CoordinatorLog",
    "Participant",
    "ReplicatedCoordinatorLog",
    "TwoPhaseCoordinator",
    "resolve_in_doubt",
]
