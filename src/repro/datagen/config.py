"""Generator configuration and scale factors."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BenchmarkError


@dataclass(frozen=True)
class GeneratorConfig:
    """Controls dataset size, skew, and schema variability.

    ``scale_factor`` multiplies every base count; SF=1 is the default
    benchmark size (1 000 customers).  ``schema_variability`` is the
    probability that a generated document deviates from the canonical
    shape (drops an optional field or gains an extra one) — the paper's
    "data first, schema later or never" knob.
    """

    seed: int = 42
    scale_factor: float = 1.0
    # base entity counts at SF = 1
    base_customers: int = 1000
    base_vendors: int = 100
    base_products: int = 500
    base_orders: int = 3000
    # skew and shape
    zipf_theta: float = 0.8
    max_items_per_order: int = 5
    feedback_probability: float = 0.6
    knows_edges_per_person: float = 6.0
    schema_variability: float = 0.0

    def __post_init__(self) -> None:
        if self.scale_factor <= 0:
            raise BenchmarkError("scale_factor must be positive")
        if not 0.0 <= self.schema_variability <= 1.0:
            raise BenchmarkError("schema_variability must be in [0, 1]")
        if not 0.0 <= self.feedback_probability <= 1.0:
            raise BenchmarkError("feedback_probability must be in [0, 1]")
        if self.max_items_per_order < 1:
            raise BenchmarkError("max_items_per_order must be >= 1")

    # -- scaled counts -------------------------------------------------------

    @property
    def num_customers(self) -> int:
        return max(2, round(self.base_customers * self.scale_factor))

    @property
    def num_vendors(self) -> int:
        return max(1, round(self.base_vendors * self.scale_factor))

    @property
    def num_products(self) -> int:
        return max(2, round(self.base_products * self.scale_factor))

    @property
    def num_orders(self) -> int:
        return max(1, round(self.base_orders * self.scale_factor))
