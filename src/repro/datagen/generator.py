"""The deterministic multi-model dataset generator.

Generation order matters: customers and vendors first, then products
(owned by vendors), then orders (Zipf-skewed over customers and
products), then feedback (only for products the customer actually
ordered), invoices (derived 1:1 from orders — the conversion gold
standard), and finally the social graph (preferential attachment over
the customer population).  Every cross-model reference is therefore
resolvable, and :meth:`Dataset.verify_integrity` checks exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.datagen import text as textgen
from repro.datagen.config import GeneratorConfig
from repro.datagen.schemas import ORDER_STATUSES
from repro.errors import BenchmarkError
from repro.models.xml.node import XmlElement, element
from repro.models.xml.node import text as xml_text
from repro.util.rng import DeterministicRng, derive_seed


@dataclass
class Dataset:
    """The generated social-commerce dataset, ready for any driver."""

    config: GeneratorConfig
    customers: list[dict[str, Any]] = field(default_factory=list)
    vendors: list[dict[str, Any]] = field(default_factory=list)
    products: list[dict[str, Any]] = field(default_factory=list)
    orders: list[dict[str, Any]] = field(default_factory=list)
    feedback: list[tuple[str, dict[str, Any]]] = field(default_factory=list)
    invoices: list[tuple[str, XmlElement]] = field(default_factory=list)
    persons: list[dict[str, Any]] = field(default_factory=list)
    knows_edges: list[tuple[int, int, int]] = field(default_factory=list)  # src,dst,since

    # -- integrity -----------------------------------------------------------

    def verify_integrity(self) -> list[str]:
        """Return a list of referential-integrity violations (empty = OK)."""
        problems: list[str] = []
        customer_ids = {c["id"] for c in self.customers}
        vendor_ids = {v["id"] for v in self.vendors}
        product_ids = {p["_id"] for p in self.products}
        order_ids = set()
        for order in self.orders:
            order_ids.add(order["_id"])
            if order["customer_id"] not in customer_ids:
                problems.append(f"order {order['_id']} has unknown customer")
            for item in order["items"]:
                if item["product_id"] not in product_ids:
                    problems.append(
                        f"order {order['_id']} references unknown product "
                        f"{item['product_id']}"
                    )
        for product in self.products:
            if product["vendor_id"] not in vendor_ids:
                problems.append(f"product {product['_id']} has unknown vendor")
        ordered_pairs = {
            (item["product_id"], order["customer_id"])
            for order in self.orders
            for item in order["items"]
        }
        for key, _ in self.feedback:
            product_id, _, customer_raw = key.partition("/")
            pair = (product_id, int(customer_raw))
            if pair not in ordered_pairs:
                problems.append(f"feedback {key} without a matching order")
        invoice_ids = {inv_id for inv_id, _ in self.invoices}
        if invoice_ids != order_ids:
            problems.append("invoices are not 1:1 with orders")
        person_ids = {p["id"] for p in self.persons}
        if person_ids != customer_ids:
            problems.append("social persons are not 1:1 with customers")
        for src, dst, _ in self.knows_edges:
            if src not in person_ids or dst not in person_ids:
                problems.append(f"knows edge ({src},{dst}) dangling")
        return problems

    def summary(self) -> dict[str, int]:
        """Entity counts per model (the Figure 1 table)."""
        return {
            "relational_customers": len(self.customers),
            "relational_vendors": len(self.vendors),
            "json_products": len(self.products),
            "json_orders": len(self.orders),
            "kv_feedback": len(self.feedback),
            "xml_invoices": len(self.invoices),
            "graph_persons": len(self.persons),
            "graph_knows_edges": len(self.knows_edges),
        }


class DatasetGenerator:
    """Generates a :class:`Dataset` from a :class:`GeneratorConfig`."""

    def __init__(self, config: GeneratorConfig | None = None) -> None:
        self.config = config if config is not None else GeneratorConfig()

    def generate(self) -> Dataset:
        cfg = self.config
        dataset = Dataset(cfg)
        self._generate_customers(dataset)
        self._generate_vendors(dataset)
        self._generate_products(dataset)
        self._generate_orders(dataset)
        self._generate_feedback(dataset)
        self._generate_invoices(dataset)
        self._generate_social_graph(dataset)
        problems = dataset.verify_integrity()
        if problems:  # pragma: no cover - generator invariant
            raise BenchmarkError(
                f"generator produced inconsistent data: {problems[:3]}"
            )
        return dataset

    # -- per-model generators ---------------------------------------------------

    def _rng(self, label: str) -> DeterministicRng:
        return DeterministicRng(derive_seed(self.config.seed, "datagen", label))

    def _generate_customers(self, dataset: Dataset) -> None:
        rng = self._rng("customers")
        for cid in range(1, self.config.num_customers + 1):
            first, last = textgen.person_name(rng)
            country, city = textgen.country_and_city(rng)
            dataset.customers.append(
                {
                    "id": cid,
                    "first_name": first,
                    "last_name": last,
                    "country": country,
                    "city": city,
                    "join_date": textgen.iso_date(rng, 2010, 2015),
                }
            )

    def _generate_vendors(self, dataset: Dataset) -> None:
        rng = self._rng("vendors")
        for vid in range(1, self.config.num_vendors + 1):
            country, _ = textgen.country_and_city(rng)
            dataset.vendors.append(
                {
                    "id": vid,
                    "name": textgen.company_name(rng),
                    "country": country,
                    "industry": rng.choice(textgen.PRODUCT_CATEGORIES),
                }
            )

    def _generate_products(self, dataset: Dataset) -> None:
        rng = self._rng("products")
        variability = self.config.schema_variability
        for pid in range(1, self.config.num_products + 1):
            product: dict[str, Any] = {
                "_id": f"p{pid}",
                "title": textgen.product_title(rng),
                "category": rng.choice(textgen.PRODUCT_CATEGORIES),
                "price": round(rng.uniform(2.0, 500.0), 2),
                "vendor_id": rng.randint(1, self.config.num_vendors),
                "stock": rng.randint(0, 1000),
            }
            if rng.bernoulli(0.5):
                product["attributes"] = {
                    "weight_kg": round(rng.uniform(0.1, 20.0), 2),
                    "colour": rng.choice(["black", "white", "red", "blue", "green"]),
                }
            if variability and rng.bernoulli(variability):
                # "schema later or never": drop an optional field or add a stray one
                if rng.bernoulli(0.5):
                    product.pop("stock", None)
                else:
                    product["legacy_code"] = f"L{rng.randint(1000, 9999)}"
            dataset.products.append(product)

    def _generate_orders(self, dataset: Dataset) -> None:
        rng = self._rng("orders")
        cfg = self.config
        n_customers = cfg.num_customers
        n_products = cfg.num_products
        variability = cfg.schema_variability
        price_of = {p["_id"]: p["price"] for p in dataset.products}
        for oid in range(1, cfg.num_orders + 1):
            # Zipf over customers: a few heavy buyers, a long tail.
            customer_id = rng.zipf(n_customers, cfg.zipf_theta) + 1
            item_count = rng.randint(1, cfg.max_items_per_order)
            chosen: dict[str, int] = {}
            for _ in range(item_count):
                product_idx = rng.zipf(n_products, cfg.zipf_theta)
                product_id = dataset.products[product_idx]["_id"]
                chosen[product_id] = chosen.get(product_id, 0) + rng.randint(1, 3)
            items = []
            total = 0.0
            for product_id, quantity in sorted(chosen.items()):
                price = price_of[product_id]
                amount = round(price * quantity, 2)
                total += amount
                items.append(
                    {
                        "product_id": product_id,
                        "quantity": quantity,
                        "unit_price": price,
                        "amount": amount,
                    }
                )
            order: dict[str, Any] = {
                "_id": f"o{oid}",
                "customer_id": customer_id,
                "order_date": textgen.iso_date(rng),
                "status": rng.choice(ORDER_STATUSES),
                "total_price": round(total, 2),
                "items": items,
            }
            if variability and rng.bernoulli(variability):
                if rng.bernoulli(0.5):
                    order.pop("status", None)
                else:
                    order["coupon"] = f"C{rng.randint(10, 99)}"
            dataset.orders.append(order)

    def _generate_feedback(self, dataset: Dataset) -> None:
        rng = self._rng("feedback")
        seen: set[str] = set()
        for order in dataset.orders:
            for item in order["items"]:
                if not rng.bernoulli(self.config.feedback_probability):
                    continue
                key = f"{item['product_id']}/{order['customer_id']}"
                if key in seen:
                    continue
                seen.add(key)
                dataset.feedback.append(
                    (
                        key,
                        {
                            "rating": rng.weighted_choice(
                                [1, 2, 3, 4, 5], [5, 7, 15, 35, 38]
                            ),
                            "text": textgen.review_text(rng),
                            "date": textgen.iso_date(rng),
                        },
                    )
                )
        dataset.feedback.sort(key=lambda pair: pair[0])

    def _generate_invoices(self, dataset: Dataset) -> None:
        customers_by_id = {c["id"]: c for c in dataset.customers}
        for order in dataset.orders:
            customer = customers_by_id[order["customer_id"]]
            dataset.invoices.append((order["_id"], build_invoice(order, customer)))

    def _generate_social_graph(self, dataset: Dataset) -> None:
        rng = self._rng("graph")
        cfg = self.config
        for customer in dataset.customers:
            dataset.persons.append(
                {
                    "id": customer["id"],
                    "name": f"{customer['first_name']} {customer['last_name']}",
                    "country": customer["country"],
                }
            )
        n = len(dataset.persons)
        if n < 2:
            return
        target_edges = int(cfg.knows_edges_per_person * n)
        # Preferential attachment: endpoints chosen proportionally to
        # (degree + 1), giving the heavy-tailed degree distribution real
        # social graphs show.
        degree = [1] * (n + 1)  # 1-indexed by person id; +1 smoothing
        repeated: list[int] = list(range(1, n + 1))  # each id once to start
        existing: set[tuple[int, int]] = set()
        attempts = 0
        while len(dataset.knows_edges) < target_edges and attempts < target_edges * 10:
            attempts += 1
            src = rng.choice(repeated)
            dst = rng.choice(repeated)
            if src == dst or (src, dst) in existing:
                continue
            existing.add((src, dst))
            since = rng.randint(2005, 2016)
            dataset.knows_edges.append((src, dst, since))
            degree[src] += 1
            degree[dst] += 1
            repeated.append(src)
            repeated.append(dst)


def build_invoice(order: dict[str, Any], customer: dict[str, Any]) -> XmlElement:
    """Derive the canonical invoice XML for one order.

    This function *is* the gold standard for the JSON-order -> XML-invoice
    conversion task (E5): converters must reproduce its output exactly.
    """
    invoice = element(
        "invoice", {"id": order["_id"], "date": order.get("order_date", "")}
    )
    cust = element("customer", {"id": str(customer["id"])})
    cust.append(
        element(
            "name", {},
            xml_text(f"{customer['first_name']} {customer['last_name']}"),
        )
    )
    cust.append(element("country", {}, xml_text(customer.get("country") or "")))
    invoice.append(cust)
    lines = element("lines")
    for item in order["items"]:
        line = element(
            "line",
            {"product": item["product_id"], "quantity": str(item["quantity"])},
        )
        line.append(element("unitPrice", {}, xml_text(_money(item["unit_price"]))))
        line.append(element("amount", {}, xml_text(_money(item["amount"]))))
        lines.append(line)
    invoice.append(lines)
    invoice.append(element("total", {}, xml_text(_money(order["total_price"]))))
    return invoice


def _money(value: float) -> str:
    """Canonical two-decimal money rendering used across models."""
    return f"{value:.2f}"
