"""Multi-model data generation (pillar 1 of the UDBMS benchmark).

One deterministic seed produces a *social-commerce* dataset spanning all
five models of Figure 1, with cross-model referential integrity:

- relational: ``customers``, ``vendors``
- JSON documents: ``orders`` (nested line items), ``products``
- key-value: ``feedback`` keyed ``<product_id>/<customer_id>``
- XML: one ``invoice`` per order (also the conversion gold standard)
- graph: ``social`` — person vertices mirroring customers, Zipf-skewed
  preferential-attachment ``knows`` edges

Entry points: :class:`GeneratorConfig`, :class:`DatasetGenerator`,
:func:`load_dataset`.
"""

from repro.datagen.config import GeneratorConfig
from repro.datagen.generator import Dataset, DatasetGenerator
from repro.datagen.load import load_dataset
from repro.datagen.schemas import CUSTOMERS_SCHEMA, VENDORS_SCHEMA

__all__ = [
    "CUSTOMERS_SCHEMA",
    "Dataset",
    "DatasetGenerator",
    "GeneratorConfig",
    "VENDORS_SCHEMA",
    "load_dataset",
]
