"""Canonical schemas of the social-commerce scenario.

The relational half is declared as :class:`TableSchema` objects; the
document/XML/KV/graph halves are conventions documented here and
enforced by the generator (NoSQL's "schema later" is the point — the
schema-evolution pillar perturbs exactly these shapes).

Document conventions::

    orders:   {_id, customer_id, order_date, status, total_price,
               items: [{product_id, quantity, unit_price, amount}]}
    products: {_id, title, category, price, vendor_id, stock,
               attributes?: {...}}

Key-value convention::

    feedback/<product_id>/<customer_id> -> {rating: 1..5, text, date}

XML convention (per order)::

    <invoice id="..." date="...">
      <customer id="..."><name>...</name><country>...</country></customer>
      <lines>
        <line product="..." quantity="...">
          <unitPrice>...</unitPrice><amount>...</amount>
        </line>*
      </lines>
      <total>...</total>
    </invoice>

Graph convention: vertices ``person`` (mirror of customers, property
``name``, ``country``) and edges ``knows`` (property ``since``).
"""

from __future__ import annotations

from repro.models.relational.schema import Column, ColumnType, ForeignKey, TableSchema

CUSTOMERS_SCHEMA = TableSchema(
    "customers",
    (
        Column("id", ColumnType.INTEGER, nullable=False),
        Column("first_name", ColumnType.TEXT, nullable=False),
        Column("last_name", ColumnType.TEXT, nullable=False),
        Column("country", ColumnType.TEXT),
        Column("city", ColumnType.TEXT),
        Column("join_date", ColumnType.DATE),
    ),
    primary_key=("id",),
)

VENDORS_SCHEMA = TableSchema(
    "vendors",
    (
        Column("id", ColumnType.INTEGER, nullable=False),
        Column("name", ColumnType.TEXT, nullable=False),
        Column("country", ColumnType.TEXT),
        Column("industry", ColumnType.TEXT),
    ),
    primary_key=("id",),
)

# Declared for completeness; the generator keeps orders in JSON, but the
# conversion pillar (E5) materialises this relational form of orders.
ORDERS_RELATIONAL_SCHEMA = TableSchema(
    "orders_rel",
    (
        Column("id", ColumnType.TEXT, nullable=False),
        Column("customer_id", ColumnType.INTEGER, nullable=False),
        Column("order_date", ColumnType.DATE),
        Column("status", ColumnType.TEXT),
        Column("total_price", ColumnType.FLOAT),
    ),
    primary_key=("id",),
    foreign_keys=(ForeignKey("customer_id", "customers", "id"),),
)

ORDER_ITEMS_RELATIONAL_SCHEMA = TableSchema(
    "order_items_rel",
    (
        Column("order_id", ColumnType.TEXT, nullable=False),
        Column("line_no", ColumnType.INTEGER, nullable=False),
        Column("product_id", ColumnType.TEXT, nullable=False),
        Column("quantity", ColumnType.INTEGER, nullable=False),
        Column("unit_price", ColumnType.FLOAT, nullable=False),
        Column("amount", ColumnType.FLOAT, nullable=False),
    ),
    primary_key=("order_id", "line_no"),
    foreign_keys=(ForeignKey("order_id", "orders_rel", "id"),),
)

ORDER_STATUSES = ("pending", "paid", "shipped", "delivered", "cancelled")
