"""Synthetic text: names, places, product titles, review sentences.

Everything draws from a :class:`~repro.util.rng.DeterministicRng`, so the
same seed always yields the same strings.  Word lists are short on
purpose — the benchmark cares about value *distributions*, not prose.
"""

from __future__ import annotations

from repro.util.rng import DeterministicRng

FIRST_NAMES = [
    "Aino", "Bruno", "Carla", "Daniel", "Elena", "Felix", "Greta", "Hannu",
    "Ines", "Jukka", "Kaisa", "Leo", "Maria", "Nils", "Olga", "Pekka",
    "Quentin", "Rosa", "Sami", "Tiina", "Ursula", "Ville", "Wanda", "Xavier",
    "Yrjo", "Zelda",
]

LAST_NAMES = [
    "Aalto", "Bergman", "Carlsson", "Dahl", "Eklund", "Forsberg", "Gustafsson",
    "Hakala", "Ivanov", "Jokinen", "Korhonen", "Laine", "Mikkola", "Nieminen",
    "Ojala", "Peltola", "Rantanen", "Salmi", "Toivonen", "Uusitalo",
    "Virtanen", "Wikstrom",
]

COUNTRIES = [
    "Finland", "Sweden", "Norway", "Denmark", "Estonia", "Germany",
    "Netherlands", "France", "Spain", "Italy", "Poland", "Portugal",
]

CITIES = {
    "Finland": ["Helsinki", "Espoo", "Tampere", "Oulu"],
    "Sweden": ["Stockholm", "Gothenburg", "Malmo"],
    "Norway": ["Oslo", "Bergen"],
    "Denmark": ["Copenhagen", "Aarhus"],
    "Estonia": ["Tallinn", "Tartu"],
    "Germany": ["Berlin", "Munich", "Hamburg"],
    "Netherlands": ["Amsterdam", "Utrecht"],
    "France": ["Paris", "Lyon"],
    "Spain": ["Madrid", "Barcelona"],
    "Italy": ["Rome", "Milan"],
    "Poland": ["Warsaw", "Krakow"],
    "Portugal": ["Lisbon", "Porto"],
}

PRODUCT_ADJECTIVES = [
    "Arctic", "Bold", "Compact", "Deluxe", "Eco", "Flex", "Grand", "Hyper",
    "Ion", "Jet", "Kinetic", "Lumen", "Mega", "Nordic", "Omni", "Prime",
    "Quantum", "Rapid", "Smart", "Turbo", "Ultra", "Vivid",
]

PRODUCT_NOUNS = [
    "Backpack", "Blender", "Camera", "Chair", "Drone", "Headphones", "Kettle",
    "Keyboard", "Lamp", "Monitor", "Mouse", "Notebook", "Printer", "Router",
    "Scooter", "Speaker", "Tablet", "Telescope", "Tent", "Watch",
]

PRODUCT_CATEGORIES = [
    "electronics", "outdoors", "home", "office", "sports", "toys", "kitchen",
]

REVIEW_OPENERS = [
    "Absolutely love it", "Does the job", "Not what I expected",
    "Great value", "Would buy again", "Broke after a week",
    "Exceeded expectations", "Solid build quality", "Mediocre at best",
    "Fantastic purchase",
]

REVIEW_DETAILS = [
    "shipping was fast", "battery life is impressive", "setup took minutes",
    "the manual is confusing", "customer support was helpful",
    "packaging was damaged", "works exactly as described",
    "colour differs from the photos", "my kids use it daily",
    "it pairs well with my other gear",
]


def person_name(rng: DeterministicRng) -> tuple[str, str]:
    """A (first, last) name pair."""
    return rng.choice(FIRST_NAMES), rng.choice(LAST_NAMES)


def country_and_city(rng: DeterministicRng) -> tuple[str, str]:
    """A coherent (country, city) pair."""
    country = rng.choice(COUNTRIES)
    return country, rng.choice(CITIES[country])


def product_title(rng: DeterministicRng) -> str:
    """A product display name like 'Nordic Kettle 300'."""
    return (
        f"{rng.choice(PRODUCT_ADJECTIVES)} {rng.choice(PRODUCT_NOUNS)} "
        f"{rng.randint(100, 999)}"
    )


def company_name(rng: DeterministicRng) -> str:
    """A vendor name like 'Virtanen & Dahl Oy'."""
    a = rng.choice(LAST_NAMES)
    b = rng.choice(LAST_NAMES)
    suffix = rng.choice(["Oy", "AB", "GmbH", "Ltd", "BV"])
    return f"{a} & {b} {suffix}" if a != b else f"{a} {suffix}"

def review_text(rng: DeterministicRng) -> str:
    """A two-part review sentence."""
    return f"{rng.choice(REVIEW_OPENERS)}; {rng.choice(REVIEW_DETAILS)}."


def iso_date(rng: DeterministicRng, year_low: int = 2014, year_high: int = 2016) -> str:
    """A random ISO date in [year_low, year_high] (28-day months for safety)."""
    year = rng.randint(year_low, year_high)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"
