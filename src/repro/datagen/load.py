"""Loading a generated dataset into any driver."""

from __future__ import annotations

from typing import Any, Callable

from repro.cluster.partition import edges_placement_name
from repro.datagen.generator import Dataset
from repro.datagen.schemas import CUSTOMERS_SCHEMA, VENDORS_SCHEMA
from repro.drivers.base import Driver


def create_scenario_containers(driver: Driver) -> None:
    """Create the five model containers of the social-commerce scenario."""
    driver.create_table(CUSTOMERS_SCHEMA)
    driver.create_table(VENDORS_SCHEMA)
    driver.create_collection("orders")
    driver.create_collection("products")
    driver.create_kv_namespace("feedback")
    driver.create_xml_collection("invoices")
    driver.create_graph("social")


def load_dataset(
    driver: Driver,
    dataset: Dataset,
    create_containers: bool = True,
    with_indexes: bool = True,
    batch_size: int = 500,
) -> None:
    """Bulk-load *dataset* into *driver* in batched transactions.

    ``with_indexes`` creates the workload's secondary indexes (orders by
    customer_id and by product containment is not indexable — the E1
    ablation flips this off to measure scan cost).

    The load is **partition-aware**: when the driver is a sharded
    cluster (exposes a ``router``), each batch is pre-grouped by target
    shard so every bulk transaction commits on a single shard instead of
    fanning one commit across all of them.  Broadcast containers (graph
    vertices) keep plain batching — every shard receives them anyway.
    """
    if create_containers:
        create_scenario_containers(driver)

    router = getattr(driver, "router", None)

    def batches(
        items: list[Any], shard_of: Callable[[Any], int] | None = None
    ) -> list[list[Any]]:
        if router is not None and shard_of is not None:
            groups: dict[int, list[Any]] = {}
            for item in items:
                groups.setdefault(shard_of(item), []).append(item)
            out: list[list[Any]] = []
            for shard_id in sorted(groups):
                group = groups[shard_id]
                out.extend(
                    group[i : i + batch_size] for i in range(0, len(group), batch_size)
                )
            return out
        return [items[i : i + batch_size] for i in range(0, len(items), batch_size)]

    def table_shard(table: str) -> Callable[[Any], int] | None:
        key = router.shard_key(table)
        if key is None or not driver.table_schema(table).has_column(key):
            return None  # broadcast or composite-pk routing: plain batches
        return lambda row: router.shard_for(table, row[key])

    def doc_shard(collection: str) -> Callable[[Any], int] | None:
        key = router.shard_key(collection)
        if key is None:
            return None
        return lambda doc: router.shard_for(collection, doc[key])

    customers_shard = table_shard("customers") if router else None
    vendors_shard = table_shard("vendors") if router else None
    products_shard = doc_shard("products") if router else None
    orders_shard = doc_shard("orders") if router else None
    feedback_shard = (
        (lambda pair: router.shard_for("feedback", pair[0])) if router else None
    )
    invoices_shard = (
        (lambda pair: router.shard_for("invoices", pair[0])) if router else None
    )
    knows_shard = (
        (lambda edge: router.shard_for(edges_placement_name("social"), edge[0]))
        if router else None
    )

    for chunk in batches(dataset.customers, customers_shard):
        driver.load(lambda s, chunk=chunk: [
            s.sql_insert("customers", row) for row in chunk
        ])
    for chunk in batches(dataset.vendors, vendors_shard):
        driver.load(lambda s, chunk=chunk: [
            s.sql_insert("vendors", row) for row in chunk
        ])
    for chunk in batches(dataset.products, products_shard):
        driver.load(lambda s, chunk=chunk: [
            s.doc_insert("products", doc) for doc in chunk
        ])
    for chunk in batches(dataset.orders, orders_shard):
        driver.load(lambda s, chunk=chunk: [
            s.doc_insert("orders", doc) for doc in chunk
        ])
    for chunk in batches(dataset.feedback, feedback_shard):
        driver.load(lambda s, chunk=chunk: [
            s.kv_put("feedback", key, value) for key, value in chunk
        ])
    for chunk in batches(dataset.invoices, invoices_shard):
        driver.load(lambda s, chunk=chunk: [
            s.xml_put("invoices", inv_id, tree) for inv_id, tree in chunk
        ])
    for chunk in batches(dataset.persons):
        driver.load(lambda s, chunk=chunk: [
            s.graph_add_vertex(
                "social", p["id"], "person", name=p["name"], country=p["country"]
            )
            for p in chunk
        ])
    for chunk in batches(dataset.knows_edges, knows_shard):
        driver.load(lambda s, chunk=chunk: [
            s.graph_add_edge("social", src, dst, "knows", since=since)
            for src, dst, since in chunk
        ])
    if with_indexes:
        driver.create_index("collection", "orders", "customer_id")
        driver.create_index("collection", "orders", "status")
        driver.create_index("collection", "products", "category")
        driver.create_index("table", "customers", "country")
        # Ordered index: serves IndexRangeScan and top-k over order value.
        driver.create_index("collection", "orders", "total_price", index_type="sorted")
