"""Loading a generated dataset into any driver."""

from __future__ import annotations

from typing import Any

from repro.datagen.generator import Dataset
from repro.datagen.schemas import CUSTOMERS_SCHEMA, VENDORS_SCHEMA
from repro.drivers.base import Driver


def create_scenario_containers(driver: Driver) -> None:
    """Create the five model containers of the social-commerce scenario."""
    driver.create_table(CUSTOMERS_SCHEMA)
    driver.create_table(VENDORS_SCHEMA)
    driver.create_collection("orders")
    driver.create_collection("products")
    driver.create_kv_namespace("feedback")
    driver.create_xml_collection("invoices")
    driver.create_graph("social")


def load_dataset(
    driver: Driver,
    dataset: Dataset,
    create_containers: bool = True,
    with_indexes: bool = True,
    batch_size: int = 500,
) -> None:
    """Bulk-load *dataset* into *driver* in batched transactions.

    ``with_indexes`` creates the workload's secondary indexes (orders by
    customer_id and by product containment is not indexable — the E1
    ablation flips this off to measure scan cost).
    """
    if create_containers:
        create_scenario_containers(driver)

    def batches(items: list[Any]) -> list[list[Any]]:
        return [items[i : i + batch_size] for i in range(0, len(items), batch_size)]

    for chunk in batches(dataset.customers):
        driver.load(lambda s, chunk=chunk: [
            s.sql_insert("customers", row) for row in chunk
        ])
    for chunk in batches(dataset.vendors):
        driver.load(lambda s, chunk=chunk: [
            s.sql_insert("vendors", row) for row in chunk
        ])
    for chunk in batches(dataset.products):
        driver.load(lambda s, chunk=chunk: [
            s.doc_insert("products", doc) for doc in chunk
        ])
    for chunk in batches(dataset.orders):
        driver.load(lambda s, chunk=chunk: [
            s.doc_insert("orders", doc) for doc in chunk
        ])
    for chunk in batches(dataset.feedback):
        driver.load(lambda s, chunk=chunk: [
            s.kv_put("feedback", key, value) for key, value in chunk
        ])
    for chunk in batches(dataset.invoices):
        driver.load(lambda s, chunk=chunk: [
            s.xml_put("invoices", inv_id, tree) for inv_id, tree in chunk
        ])
    for chunk in batches(dataset.persons):
        driver.load(lambda s, chunk=chunk: [
            s.graph_add_vertex(
                "social", p["id"], "person", name=p["name"], country=p["country"]
            )
            for p in chunk
        ])
    for chunk in batches(dataset.knows_edges):
        driver.load(lambda s, chunk=chunk: [
            s.graph_add_edge("social", src, dst, "knows", since=since)
            for src, dst, since in chunk
        ])
    if with_indexes:
        driver.create_index("collection", "orders", "customer_id")
        driver.create_index("collection", "orders", "status")
        driver.create_index("collection", "products", "category")
        driver.create_index("table", "customers", "country")
        # Ordered index: serves IndexRangeScan and top-k over order value.
        driver.create_index("collection", "orders", "total_price", index_type="sorted")
