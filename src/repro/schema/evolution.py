"""Schema-evolution operators for multi-model data.

Each operator knows three things:

1. how to transform a :class:`~repro.schema.shapes.DocumentShape`
   (``apply_to_shape``),
2. how to migrate one existing document to the new shape
   (``migrate_document``), and
3. whether it is *additive* (old queries keep working) or *destructive*
   (it can break history queries) — the classification E2 sweeps.

Operators target top-level fields of a named collection; nested targets
use dotted paths where supported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import EvolutionError, IncompatibleEvolutionError
from repro.schema.shapes import DocumentShape, FieldSpec, SCALAR_TYPES
from repro.util.rng import DeterministicRng


class EvolutionOp:
    """Base class for schema-evolution operators."""

    collection: str
    additive: bool = False

    def apply_to_shape(self, shape: DocumentShape) -> DocumentShape:
        raise NotImplementedError

    def migrate_document(self, doc: dict[str, Any]) -> dict[str, Any]:
        """Return a migrated copy of *doc* (never mutates the input)."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def _require_field(self, shape: DocumentShape, name: str) -> FieldSpec:
        spec = shape.field(name)
        if spec is None:
            raise IncompatibleEvolutionError(
                f"{self.describe()}: no field {name!r} in "
                f"{shape.collection!r} v{shape.version}"
            )
        return spec


@dataclass
class AddField(EvolutionOp):
    """Add a new optional field with a default value.  Additive."""

    collection: str
    name: str
    type: str = "any"
    default: Any = None

    additive = True

    def apply_to_shape(self, shape: DocumentShape) -> DocumentShape:
        if shape.field(self.name) is not None:
            raise IncompatibleEvolutionError(
                f"add_field: {self.name!r} already exists in {shape.collection!r}"
            )
        if self.type not in SCALAR_TYPES:
            raise EvolutionError(f"add_field supports scalar types, not {self.type!r}")
        return shape.with_fields(
            shape.fields + (FieldSpec(self.name, self.type, required=False),)
        )

    def migrate_document(self, doc: dict[str, Any]) -> dict[str, Any]:
        out = dict(doc)
        out.setdefault(self.name, self.default)
        return out

    def describe(self) -> str:
        return f"ADD {self.collection}.{self.name}:{self.type}"


@dataclass
class DropField(EvolutionOp):
    """Remove a field.  Destructive: history queries reading it break."""

    collection: str
    name: str

    def apply_to_shape(self, shape: DocumentShape) -> DocumentShape:
        self._require_field(shape, self.name)
        if self.name == "_id":
            raise IncompatibleEvolutionError("cannot drop '_id'")
        return shape.with_fields(
            tuple(f for f in shape.fields if f.name != self.name)
        )

    def migrate_document(self, doc: dict[str, Any]) -> dict[str, Any]:
        out = dict(doc)
        out.pop(self.name, None)
        return out

    def describe(self) -> str:
        return f"DROP {self.collection}.{self.name}"


@dataclass
class RenameField(EvolutionOp):
    """Rename a field.  Destructive: old name disappears."""

    collection: str
    old: str
    new: str

    def apply_to_shape(self, shape: DocumentShape) -> DocumentShape:
        spec = self._require_field(shape, self.old)
        if self.old == "_id":
            raise IncompatibleEvolutionError("cannot rename '_id'")
        if shape.field(self.new) is not None:
            raise IncompatibleEvolutionError(
                f"rename: {self.new!r} already exists in {shape.collection!r}"
            )
        fields = tuple(
            FieldSpec(self.new, f.type, f.required, f.children, f.item_type)
            if f.name == self.old
            else f
            for f in shape.fields
        )
        del spec
        return shape.with_fields(fields)

    def migrate_document(self, doc: dict[str, Any]) -> dict[str, Any]:
        out = dict(doc)
        if self.old in out:
            out[self.new] = out.pop(self.old)
        return out

    def describe(self) -> str:
        return f"RENAME {self.collection}.{self.old} -> {self.new}"


@dataclass
class RetypeField(EvolutionOp):
    """Change a scalar field's type, casting stored values.

    Destructive in general (comparisons against the old type break);
    int -> float is the one widening we classify additive.
    """

    collection: str
    name: str
    new_type: str

    def __post_init__(self) -> None:
        if self.new_type not in SCALAR_TYPES:
            raise EvolutionError(f"retype target must be scalar, not {self.new_type!r}")

    @property
    def additive(self) -> bool:  # type: ignore[override]
        return self.new_type == "float"  # int->float widening only

    def apply_to_shape(self, shape: DocumentShape) -> DocumentShape:
        spec = self._require_field(shape, self.name)
        if spec.type in ("object", "array"):
            raise IncompatibleEvolutionError(
                f"retype: {self.name!r} is not scalar"
            )
        fields = tuple(
            FieldSpec(f.name, self.new_type, f.required) if f.name == self.name else f
            for f in shape.fields
        )
        return shape.with_fields(fields)

    def migrate_document(self, doc: dict[str, Any]) -> dict[str, Any]:
        out = dict(doc)
        if self.name not in out or out[self.name] is None:
            return out
        value = out[self.name]
        try:
            if self.new_type == "string":
                out[self.name] = str(value)
            elif self.new_type == "int":
                out[self.name] = int(float(value))
            elif self.new_type == "float":
                out[self.name] = float(value)
            elif self.new_type == "bool":
                out[self.name] = bool(value)
            # "date"/"any": leave the value as-is
        except (TypeError, ValueError) as exc:
            raise EvolutionError(
                f"retype: cannot cast {value!r} to {self.new_type}"
            ) from exc
        return out

    def describe(self) -> str:
        return f"RETYPE {self.collection}.{self.name} -> {self.new_type}"


@dataclass
class NestFields(EvolutionOp):
    """Move top-level fields under a new object field.  Destructive."""

    collection: str
    fields_to_nest: tuple[str, ...]
    into: str

    def apply_to_shape(self, shape: DocumentShape) -> DocumentShape:
        if shape.field(self.into) is not None:
            raise IncompatibleEvolutionError(
                f"nest: {self.into!r} already exists in {shape.collection!r}"
            )
        if "_id" in self.fields_to_nest:
            raise IncompatibleEvolutionError("cannot nest '_id'")
        moved = []
        for name in self.fields_to_nest:
            moved.append(self._require_field(shape, name))
        remaining = tuple(
            f for f in shape.fields if f.name not in self.fields_to_nest
        )
        nested = FieldSpec(self.into, "object", required=False, children=tuple(moved))
        return shape.with_fields(remaining + (nested,))

    def migrate_document(self, doc: dict[str, Any]) -> dict[str, Any]:
        out = dict(doc)
        nested: dict[str, Any] = {}
        for name in self.fields_to_nest:
            if name in out:
                nested[name] = out.pop(name)
        out[self.into] = nested
        return out

    def describe(self) -> str:
        inner = ",".join(self.fields_to_nest)
        return f"NEST {self.collection}.({inner}) -> {self.into}"


@dataclass
class FlattenField(EvolutionOp):
    """Inline an object field's children at top level.  Destructive."""

    collection: str
    name: str
    prefix: str = ""

    def apply_to_shape(self, shape: DocumentShape) -> DocumentShape:
        spec = self._require_field(shape, self.name)
        if spec.type != "object":
            raise IncompatibleEvolutionError(
                f"flatten: {self.name!r} is not an object field"
            )
        flattened = []
        for child in spec.children:
            new_name = f"{self.prefix}{child.name}"
            if shape.field(new_name) is not None:
                raise IncompatibleEvolutionError(
                    f"flatten: {new_name!r} collides with an existing field"
                )
            flattened.append(
                FieldSpec(new_name, child.type, False, child.children, child.item_type)
            )
        remaining = tuple(f for f in shape.fields if f.name != self.name)
        return shape.with_fields(remaining + tuple(flattened))

    def migrate_document(self, doc: dict[str, Any]) -> dict[str, Any]:
        out = dict(doc)
        inner = out.pop(self.name, None)
        if isinstance(inner, dict):
            for key, value in inner.items():
                out[f"{self.prefix}{key}"] = value
        return out

    def describe(self) -> str:
        return f"FLATTEN {self.collection}.{self.name}"


# ---------------------------------------------------------------------------
# Random chains (the E2 sweep)
# ---------------------------------------------------------------------------


def random_evolution_chain(
    shape: DocumentShape,
    length: int,
    rng: DeterministicRng,
    additive_only: bool = False,
) -> list[EvolutionOp]:
    """Generate an applicable chain of *length* ops for *shape*.

    Each op is validated against the shape as evolved so far, so the
    chain always applies cleanly.  ``additive_only`` restricts the mix to
    ADD (and int->float RETYPE), modelling conservative evolution.
    """
    ops: list[EvolutionOp] = []
    current = shape
    counter = 0
    for _ in range(length):
        for _attempt in range(50):
            op = _random_op(current, rng, additive_only, counter)
            counter += 1
            try:
                current = op.apply_to_shape(current)
            except EvolutionError:
                continue
            ops.append(op)
            break
        else:  # pragma: no cover - 50 attempts always suffice in practice
            raise EvolutionError("could not extend evolution chain")
    return ops


def _random_op(
    shape: DocumentShape, rng: DeterministicRng, additive_only: bool, counter: int
) -> EvolutionOp:
    scalar_fields = [
        f.name
        for f in shape.fields
        if f.type not in ("object", "array") and f.name != "_id"
    ]
    object_fields = [f.name for f in shape.fields if f.type == "object"]
    choices = ["add"]
    if not additive_only and scalar_fields:
        choices += ["drop", "rename", "retype"]
        if len(scalar_fields) >= 2:
            choices.append("nest")
    if not additive_only and object_fields:
        choices.append("flatten")
    kind = rng.choice(choices)
    if kind == "add":
        return AddField(
            shape.collection,
            f"extra_{counter}",
            rng.choice(["string", "int", "float", "bool"]),
            default=None,
        )
    if kind == "drop":
        return DropField(shape.collection, rng.choice(scalar_fields))
    if kind == "rename":
        old = rng.choice(scalar_fields)
        return RenameField(shape.collection, old, f"{old}_v{counter}")
    if kind == "retype":
        name = rng.choice(scalar_fields)
        spec = shape.field(name)
        # Only numeric fields can widen to float; anything casts to string.
        if spec is not None and spec.type in ("int", "float"):
            new_type = rng.choice(["string", "float"])
        else:
            new_type = "string"
        return RetypeField(shape.collection, name, new_type)
    if kind == "nest":
        nested = tuple(rng.sample(scalar_fields, 2))
        return NestFields(shape.collection, nested, f"group_{counter}")
    return FlattenField(shape.collection, rng.choice(object_fields), prefix="")
