"""History-query usability under schema evolution.

"The change of schema can affect the usability of history queries" — this
module makes that measurable.  A history MMQL query is *usable* against
an evolved shape iff every field path it dereferences on variables bound
to the evolved collection still exists in the shape.

The checker is static: it parses the query, finds ``FOR var IN
<collection>`` bindings, extracts every dotted path rooted at those
variables (following them through LET aliases and nested FORs over
array fields), and tests each path with
:meth:`~repro.schema.shapes.DocumentShape.has_path`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.ast import (
    Binary,
    CollectClause,
    Expr,
    FieldAccess,
    FilterClause,
    ForClause,
    FunctionCall,
    IndexAccess,
    LetClause,
    LimitClause,
    ListExpr,
    ObjectExpr,
    Query,
    SortClause,
    Subquery,
    Unary,
    VarRef,
)
from repro.query.parser import parse
from repro.schema.shapes import DocumentShape


@dataclass
class UsabilityReport:
    """Usability outcome for one query set against one shape version."""

    collection: str
    version: int
    total: int
    usable: int
    broken_queries: list[tuple[str, list[str]]]  # (query text, missing paths)

    @property
    def usability(self) -> float:
        return self.usable / self.total if self.total else 1.0


def extract_paths(query: Query, collection: str) -> set[tuple[str, ...]]:
    """All field paths the query dereferences on *collection* documents.

    Tracks which variables are rooted in the collection: the FOR variable
    itself, plus variables bound (via FOR or LET) to a path inside it —
    e.g. ``FOR o IN orders FOR it IN o.items FILTER it.product_id ...``
    yields ``("items",)`` and ``("items", "product_id")``.
    """
    paths: set[tuple[str, ...]] = set()

    def path_of(expr: Expr, roots: dict[str, tuple[str, ...]]) -> tuple[str, ...] | None:
        """The collection-rooted path an expression denotes, if any."""
        if isinstance(expr, VarRef):
            return roots.get(expr.name)
        if isinstance(expr, FieldAccess):
            base = path_of(expr.base, roots)
            if base is None:
                return None
            return base + (expr.field,)
        if isinstance(expr, IndexAccess):
            return path_of(expr.base, roots)  # indexing keeps the array's path
        return None

    def collect(expr: Expr, roots: dict[str, tuple[str, ...]]) -> None:
        path = path_of(expr, roots)
        if path is not None and path != ():
            paths.add(path)
        # recurse structurally
        if isinstance(expr, FieldAccess):
            collect(expr.base, roots)
        elif isinstance(expr, IndexAccess):
            collect(expr.base, roots)
            collect(expr.index, roots)
        elif isinstance(expr, Binary):
            collect(expr.left, roots)
            collect(expr.right, roots)
        elif isinstance(expr, Unary):
            collect(expr.operand, roots)
        elif isinstance(expr, FunctionCall):
            for arg in expr.args:
                collect(arg, roots)
        elif isinstance(expr, ObjectExpr):
            for _, value in expr.fields:
                collect(value, roots)
        elif isinstance(expr, ListExpr):
            for item in expr.items:
                collect(item, roots)
        elif isinstance(expr, Subquery):
            # Subqueries see the outer variables; inner bindings shadow a copy.
            process(expr.query, dict(roots))

    def process(q: Query, roots: dict[str, tuple[str, ...]]) -> None:
        for clause in q.clauses:
            if isinstance(clause, ForClause):
                if isinstance(clause.source, VarRef) and clause.source.name == collection:
                    roots[clause.var] = ()
                else:
                    source_path = path_of(clause.source, roots)
                    collect(clause.source, roots)
                    if source_path is not None:
                        roots[clause.var] = source_path
                    else:
                        roots.pop(clause.var, None)
            elif isinstance(clause, FilterClause):
                collect(clause.condition, roots)
            elif isinstance(clause, LetClause):
                alias = path_of(clause.value, roots)
                collect(clause.value, roots)
                if alias is not None:
                    roots[clause.var] = alias
                else:
                    roots.pop(clause.var, None)
            elif isinstance(clause, SortClause):
                for key in clause.keys:
                    collect(key.expr, roots)
            elif isinstance(clause, LimitClause):
                collect(clause.count, roots)
                if clause.offset is not None:
                    collect(clause.offset, roots)
            elif isinstance(clause, CollectClause):
                for _, expr in clause.keys:
                    collect(expr, roots)
                for agg in clause.aggregations:
                    collect(agg.arg, roots)
                # COLLECT re-binds the variable space
                roots.clear()
        collect(q.returning.expr, roots)

    process(query, {})
    return paths


def query_is_usable(
    text: str, shape: DocumentShape
) -> tuple[bool, list[str]]:
    """Is the MMQL query still valid against *shape*?

    Returns (usable, missing_paths).  Queries that never touch the shaped
    collection are trivially usable.
    """
    query = parse(text)
    missing = [
        ".".join(path)
        for path in sorted(extract_paths(query, shape.collection))
        if not shape.has_path(path)
    ]
    return (not missing, missing)


def check_usability(queries: list[str], shape: DocumentShape) -> UsabilityReport:
    """Usability of a whole history-query set against one shape version."""
    broken: list[tuple[str, list[str]]] = []
    usable = 0
    for text in queries:
        ok, missing = query_is_usable(text, shape)
        if ok:
            usable += 1
        else:
            broken.append((text, missing))
    return UsabilityReport(
        collection=shape.collection,
        version=shape.version,
        total=len(queries),
        usable=usable,
        broken_queries=broken,
    )
