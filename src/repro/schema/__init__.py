"""Multi-model schema management and evolution (pillar 2).

The paper: "it must be possible to control (and systematically vary)
input schema and the complexity of a schema evolution for multi-model
data", and "the change of schema can affect the usability of history
queries."

- :mod:`repro.schema.shapes`    — schema descriptions for document-shaped
  data (tables reuse :class:`~repro.models.relational.schema.TableSchema`)
- :mod:`repro.schema.evolution` — the evolution operators (add / drop /
  rename / retype / nest / flatten) with schema + data migration
- :mod:`repro.schema.registry`  — versioned multi-model schema registry
- :mod:`repro.schema.usability` — does a history MMQL query still run
  against an evolved schema?
"""

from repro.schema.evolution import (
    AddField,
    DropField,
    EvolutionOp,
    FlattenField,
    NestFields,
    RenameField,
    RetypeField,
    random_evolution_chain,
)
from repro.schema.registry import SchemaRegistry
from repro.schema.shapes import DocumentShape, FieldSpec
from repro.schema.usability import UsabilityReport, check_usability

__all__ = [
    "AddField",
    "DocumentShape",
    "DropField",
    "EvolutionOp",
    "FieldSpec",
    "FlattenField",
    "NestFields",
    "RenameField",
    "RetypeField",
    "SchemaRegistry",
    "UsabilityReport",
    "check_usability",
    "random_evolution_chain",
]
