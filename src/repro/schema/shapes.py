"""Document shapes: the "schema later" schema for document-shaped data.

A :class:`DocumentShape` describes the canonical fields of a JSON
collection (or of graph vertex properties, or KV values — anything
dict-shaped).  It is descriptive, not enforced at write time — exactly
the NoSQL stance the paper highlights — but it is what evolution
operators transform and what the usability checker reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import EvolutionError

SCALAR_TYPES = ("string", "int", "float", "bool", "date", "any")


@dataclass(frozen=True)
class FieldSpec:
    """One field: a scalar, an object with children, or an array."""

    name: str
    type: str = "any"  # one of SCALAR_TYPES, or "object", or "array"
    required: bool = True
    children: tuple["FieldSpec", ...] = ()  # for type == "object"
    item_type: str = "any"  # for type == "array"

    def __post_init__(self) -> None:
        valid = SCALAR_TYPES + ("object", "array")
        if self.type not in valid:
            raise EvolutionError(f"unknown field type {self.type!r}")
        if self.children and self.type not in ("object", "array"):
            raise EvolutionError(
                f"field {self.name!r}: children require type=object or array"
            )

    def child(self, name: str) -> "FieldSpec | None":
        for c in self.children:
            if c.name == name:
                return c
        return None


@dataclass(frozen=True)
class DocumentShape:
    """The canonical shape of one document collection, with a version."""

    collection: str
    fields: tuple[FieldSpec, ...]
    version: int = 1

    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def field(self, name: str) -> FieldSpec | None:
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def has_path(self, path: tuple[str, ...]) -> bool:
        """Does a dotted field path exist in this shape?

        Array fields absorb one path step (``items.product_id`` checks the
        array's item object when declared via children on the array spec's
        sibling convention: we model array-of-object as type="array" plus
        a child object spec named "[]").
        """
        if not path:
            return True
        specs = self.fields
        for i, step in enumerate(path):
            spec = next((s for s in specs if s.name == step), None)
            if spec is None:
                return False
            remaining = path[i + 1 :]
            if not remaining:
                return True
            if spec.type == "object":
                specs = spec.children
                continue
            if spec.type == "array":
                item = spec.child("[]")
                if item is None:
                    # untyped array: accept any deeper path (schema-less)
                    return True
                specs = item.children
                continue
            # scalar with a deeper path -> invalid
            return False
        return True

    def all_paths(self) -> list[tuple[str, ...]]:
        """Every declared path, depth-first."""
        out: list[tuple[str, ...]] = []

        def walk(specs: tuple[FieldSpec, ...], prefix: tuple[str, ...]) -> None:
            for spec in specs:
                if spec.name == "[]":
                    walk(spec.children, prefix)
                    continue
                path = prefix + (spec.name,)
                out.append(path)
                if spec.type == "object":
                    walk(spec.children, path)
                elif spec.type == "array":
                    item = spec.child("[]")
                    if item is not None:
                        walk(item.children, path)

        walk(self.fields, ())
        return out

    def with_fields(self, fields: tuple[FieldSpec, ...]) -> "DocumentShape":
        return replace(self, fields=fields, version=self.version + 1)


def orders_shape() -> DocumentShape:
    """The canonical shape of the scenario's ``orders`` collection."""
    return DocumentShape(
        "orders",
        (
            FieldSpec("_id", "string"),
            FieldSpec("customer_id", "int"),
            FieldSpec("order_date", "date"),
            FieldSpec("status", "string", required=False),
            FieldSpec("total_price", "float"),
            FieldSpec(
                "items",
                "array",
                children=(
                    FieldSpec(
                        "[]",
                        "object",
                        children=(
                            FieldSpec("product_id", "string"),
                            FieldSpec("quantity", "int"),
                            FieldSpec("unit_price", "float"),
                            FieldSpec("amount", "float"),
                        ),
                    ),
                ),
            ),
        ),
    )


def products_shape() -> DocumentShape:
    """The canonical shape of the scenario's ``products`` collection."""
    return DocumentShape(
        "products",
        (
            FieldSpec("_id", "string"),
            FieldSpec("title", "string"),
            FieldSpec("category", "string"),
            FieldSpec("price", "float"),
            FieldSpec("vendor_id", "int"),
            FieldSpec("stock", "int", required=False),
            FieldSpec(
                "attributes",
                "object",
                required=False,
                children=(
                    FieldSpec("weight_kg", "float", required=False),
                    FieldSpec("colour", "string", required=False),
                ),
            ),
        ),
    )


def _check_array_children(spec: FieldSpec) -> None:
    if spec.type == "array" and spec.children:
        item = spec.child("[]")
        if item is None or len(spec.children) != 1:
            raise EvolutionError(
                f"array field {spec.name!r} must declare exactly one '[]' child"
            )


def validate_shape(shape: DocumentShape) -> None:
    """Structural sanity checks used by property tests."""
    seen: set[str] = set()

    def walk(specs: tuple[FieldSpec, ...]) -> None:
        names = [s.name for s in specs]
        if len(names) != len(set(names)):
            raise EvolutionError(f"duplicate field names in {shape.collection!r}")
        for spec in specs:
            _check_array_children(spec)
            if spec.type == "object":
                walk(spec.children)
            elif spec.type == "array" and spec.children:
                walk(spec.children[0].children)

    walk(shape.fields)
    seen.clear()
