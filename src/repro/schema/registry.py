"""Versioned multi-model schema registry + data migration driver.

The registry tracks, per collection, the full shape history and the ops
between versions; :func:`migrate_collection` rewrites a live collection
on any driver to the current version and reports migration cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import EvolutionError
from repro.schema.evolution import EvolutionOp
from repro.schema.shapes import DocumentShape


@dataclass
class _History:
    versions: list[DocumentShape] = field(default_factory=list)
    ops: list[EvolutionOp] = field(default_factory=list)


class SchemaRegistry:
    """Tracks shape versions per collection and applies evolution ops."""

    def __init__(self) -> None:
        self._histories: dict[str, _History] = {}

    def register(self, shape: DocumentShape) -> None:
        if shape.collection in self._histories:
            raise EvolutionError(f"collection {shape.collection!r} already registered")
        self._histories[shape.collection] = _History(versions=[shape])

    def current(self, collection: str) -> DocumentShape:
        history = self._require(collection)
        return history.versions[-1]

    def version(self, collection: str, number: int) -> DocumentShape:
        history = self._require(collection)
        for shape in history.versions:
            if shape.version == number:
                return shape
        raise EvolutionError(f"no version {number} of {collection!r}")

    def versions(self, collection: str) -> list[DocumentShape]:
        return list(self._require(collection).versions)

    def ops(self, collection: str) -> list[EvolutionOp]:
        return list(self._require(collection).ops)

    def apply(self, op: EvolutionOp) -> DocumentShape:
        """Apply one op, producing and recording the next version."""
        history = self._require(op.collection)
        new_shape = op.apply_to_shape(history.versions[-1])
        history.versions.append(new_shape)
        history.ops.append(op)
        return new_shape

    def ops_between(self, collection: str, from_version: int, to_version: int) -> list[EvolutionOp]:
        """The ops migrating from one version to a later one."""
        history = self._require(collection)
        if from_version > to_version:
            raise EvolutionError("from_version must be <= to_version")
        numbers = [s.version for s in history.versions]
        if from_version not in numbers or to_version not in numbers:
            raise EvolutionError("unknown version number")
        start = numbers.index(from_version)
        end = numbers.index(to_version)
        return history.ops[start:end]

    def _require(self, collection: str) -> _History:
        history = self._histories.get(collection)
        if history is None:
            raise EvolutionError(f"collection {collection!r} is not registered")
        return history


@dataclass
class MigrationResult:
    """Outcome of migrating one collection's data."""

    collection: str
    documents_migrated: int
    seconds: float
    ops_applied: int


def migrate_documents(
    docs: list[dict[str, Any]], ops: list[EvolutionOp]
) -> list[dict[str, Any]]:
    """Pure migration of a document list through an op chain."""
    out = docs
    for op in ops:
        out = [op.migrate_document(d) for d in out]
    return out


def migrate_collection(driver: Any, collection: str, ops: list[EvolutionOp]) -> MigrationResult:
    """Rewrite a live document collection through *ops* on any driver.

    Runs as driver transactions in batches; returns cost accounting used
    by the E2 table's "migration cost" column.
    """
    start = time.perf_counter()
    ctx = driver.query_context()
    try:
        docs = [dict(d) for d in ctx.iter_collection(collection)]
    finally:
        close = getattr(ctx, "close", None)
        if close is not None:
            close()
    migrated = migrate_documents(docs, ops)
    batch = 500
    for i in range(0, len(migrated), batch):
        chunk = migrated[i : i + batch]

        def rewrite(session: Any, chunk: list[dict[str, Any]] = chunk) -> None:
            for doc in chunk:
                existing = session.doc_get(collection, doc["_id"])
                if existing is None:
                    session.doc_insert(collection, doc)
                    continue
                # Replace wholesale: delete stale fields, then merge.
                session.doc_delete(collection, doc["_id"])
                session.doc_insert(collection, doc)

        driver.run_transaction(rewrite)
    return MigrationResult(
        collection=collection,
        documents_migrated=len(migrated),
        seconds=time.perf_counter() - start,
        ops_applied=len(ops),
    )
