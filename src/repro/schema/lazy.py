"""Lazy schema migration: upgrade documents on first read.

Eager migration (:func:`repro.schema.registry.migrate_collection`)
rewrites the whole collection at evolution time; *lazy* migration tags
each document with its schema version and applies the pending operator
chain when the document is next read, optionally writing the upgraded
form back (repair-on-read).  E9 measures the trade: eager pays one big
upfront cost, lazy amortises it over reads and never touches cold data.

Documents carry their version in ``_sv`` (absent = version 1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import EvolutionError
from repro.schema.registry import SchemaRegistry

VERSION_FIELD = "_sv"


@dataclass
class LazyStats:
    """Accounting for a lazy-migrating collection."""

    reads: int = 0
    upgrades: int = 0
    ops_applied: int = 0
    repair_writes: int = 0
    upgrade_seconds: float = 0.0

    @property
    def upgrade_rate(self) -> float:
        return self.upgrades / self.reads if self.reads else 0.0


@dataclass
class LazyMigrator:
    """Read-path adapter that upgrades stale documents on access.

    ``repair`` controls write-back: True persists the upgraded document
    (first read pays, later reads are free); False upgrades in memory on
    every read (no write amplification, steady per-read tax).
    """

    driver: Any
    registry: SchemaRegistry
    collection: str
    repair: bool = True
    stats: LazyStats = field(default_factory=LazyStats)

    def current_version(self) -> int:
        return self.registry.current(self.collection).version

    def get(self, doc_id: Any) -> dict[str, Any] | None:
        """Read one document at the *current* schema version."""
        target = self.current_version()
        upgraded: dict[str, Any] | None = None

        def body(session):
            nonlocal upgraded
            doc = session.doc_get(self.collection, doc_id)
            if doc is None:
                return None
            doc, changed = self._upgrade(doc, target)
            if changed and self.repair:
                session.doc_delete(self.collection, doc_id)
                session.doc_insert(self.collection, doc)
                self.stats.repair_writes += 1
            upgraded = doc
            return doc

        self.driver.run_transaction(body)
        self.stats.reads += 1
        return upgraded

    def scan(self) -> list[dict[str, Any]]:
        """Read the whole collection at the current version (no repair)."""
        target = self.current_version()
        out: list[dict[str, Any]] = []
        ctx = self.driver.query_context()
        try:
            for doc in ctx.iter_collection(self.collection):
                upgraded, _ = self._upgrade(dict(doc), target)
                out.append(upgraded)
                self.stats.reads += 1
        finally:
            close = getattr(ctx, "close", None)
            if close is not None:
                close()
        return out

    def _upgrade(
        self, doc: dict[str, Any], target: int
    ) -> tuple[dict[str, Any], bool]:
        version = doc.get(VERSION_FIELD, 1)
        if version == target:
            return doc, False
        if version > target:
            raise EvolutionError(
                f"document {doc.get('_id')!r} is at schema v{version}, newer "
                f"than the registry's v{target}"
            )
        started = time.perf_counter()
        ops = self.registry.ops_between(self.collection, version, target)
        for op in ops:
            doc = op.migrate_document(doc)
        doc[VERSION_FIELD] = target
        self.stats.upgrades += 1
        self.stats.ops_applied += len(ops)
        self.stats.upgrade_seconds += time.perf_counter() - started
        return doc, True
