"""Per-shard replica sets: WAL shipping, quorum writes, leader election.

Each shard of a :class:`~repro.cluster.sharded.ShardedDatabase` built
with ``replication=ReplicaSetConfig(...)`` becomes a
:class:`ReplicaSet`: one leader (the shard's live
:class:`~repro.engine.database.MultiModelDatabase`) plus N-1 followers,
each holding a synced copy of the leader's WAL and an incrementally
applied materialised view.  Commits acknowledge only after the WAL has
reached a configurable quorum; a deterministic Raft-style election
(term + log-position voting, no real timeouts) promotes the most
caught-up follower when the leader dies; followers absorb reads under
stale-bounded or session-consistent guarantees.  The coordinator log's
own replica set lives in :mod:`repro.txn.replicated_log`.
"""

from repro.replication.replicaset import (
    Replica,
    ReplicaSet,
    ReplicaSetConfig,
)
from repro.txn.replicated_log import ReplicatedCoordinatorLog

__all__ = [
    "Replica",
    "ReplicaSet",
    "ReplicaSetConfig",
    "ReplicatedCoordinatorLog",
]
