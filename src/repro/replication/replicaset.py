"""One shard's replica set: leader, followers, shipping, election.

Design notes
------------

**Log shipping** is by raw record index over the leader's WAL
(:meth:`~repro.engine.wal.WriteAheadLog.records_from`): the cursor is
just the follower's record count, the same O(1) fingerprint the
worker-process replicas use.  Shipped records are synced on the
follower *including the leader's unsynced tail* — a follower's copy can
therefore be **more** durable than the leader's own page cache, which
is precisely how a quorum-acked write survives a leader crash that
eats the leader's tail.

**The follower view** is a private :class:`MultiModelDatabase`
materialised incrementally from the shipped records (write records
buffer per transaction; a commit/commit-decision applies them at the
commit timestamp; abort drops them; a prepare holds them in doubt).
The view's own WAL is throwaway — read snapshots log begin/abort noise
into it — the replica's *shipped* WAL copy is the replication truth.

**Election** is deterministic and timeout-free (injectable clock, fault
hooks instead of heartbeats): every live replica votes for the
candidate with the longest durable log (ties to the lowest replica id),
Raft's up-to-date rule; a candidate needs a majority of the *full*
membership, so a partitioned minority can never elect.  Promotion
resolves the winner's in-doubt prepares against the (replicated)
coordinator log, then rebuilds a leader database *over the winner's own
WAL* — no compaction, so surviving followers remain exact prefixes and
keep their cursors.  A deposed leader rejoins as a follower by
truncating its divergent suffix back to the common prefix and
resyncing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable

from repro.engine.database import MultiModelDatabase
from repro.engine.records import Model, RecordKey, copy_value
from repro.engine.transactions import Store, TransactionManager
from repro.engine.wal import WriteAheadLog
from repro.errors import ClusterError, QuorumLostError
from repro.txn import CoordinatorLog, resolve_in_doubt
from repro.txn.replicated_log import _acks_needed

READ_PREFERENCES = ("leader", "follower", "session")


@dataclass
class ReplicaSetConfig:
    """Knobs for every shard's replica set (and the coordinator log's).

    ``write_acks`` gates commit acknowledgement: ``1`` acks as soon as
    the leader's WAL has the records (followers lag until something
    needs them), ``"majority"``/``"all"``/an int ship synchronously to
    that many replicas (the leader counts as one ack).
    ``read_preference`` picks the default MMQL read path: ``"leader"``
    (always fresh), ``"follower"`` (stale-bounded — a follower more
    than ``max_lag_records`` behind catches up before serving), or
    ``"session"`` (a follower serves only when it has applied the
    session token's floor, else the leader does and the fallback is
    counted).  A per-query session token upgrades any mode to
    session-consistent.
    """

    replicas_per_shard: int = 3
    write_acks: int | str = "majority"
    read_preference: str = "leader"
    max_lag_records: int = 0
    # How long replicate() waits for the quorum to come back before
    # declaring the shard degraded (read-only).  0 fails immediately —
    # the pre-deadline behaviour, and what every unit test wants.
    quorum_timeout_s: float = 0.0

    def __post_init__(self) -> None:
        if self.replicas_per_shard < 1:
            raise ClusterError(
                f"replicas_per_shard must be >= 1, got {self.replicas_per_shard}"
            )
        if self.quorum_timeout_s < 0:
            raise ClusterError(
                f"quorum_timeout_s must be >= 0, got {self.quorum_timeout_s}"
            )
        if self.read_preference not in READ_PREFERENCES:
            raise ClusterError(
                f"unknown read_preference {self.read_preference!r} "
                f"(expected one of {READ_PREFERENCES})"
            )
        # Validate eagerly so a bad knob fails at construction.
        _acks_needed(self.write_acks, self.replicas_per_shard)

    @property
    def acks_needed(self) -> int:
        return _acks_needed(self.write_acks, self.replicas_per_shard)


class Replica:
    """One member of a replica set: a WAL copy plus a materialised view."""

    __slots__ = (
        "replica_id", "wal", "db", "role", "alive",
        "applied_ts", "pending", "caught_up_wall",
    )

    def __init__(
        self, replica_id: int, wal: WriteAheadLog, db: MultiModelDatabase,
        role: str, wall: float,
    ) -> None:
        self.replica_id = replica_id
        self.wal = wal
        self.db = db
        self.role = role
        self.alive = True
        # Highest commit timestamp applied to the view — the freshness
        # bound session tokens compare against.  The leader's is implied
        # by its manager; followers track it explicitly.
        self.applied_ts = 0
        # Writes shipped but not yet decided, per txn id (in-doubt
        # prepares hold here until their decision record ships).
        self.pending: dict[int, list[tuple[RecordKey, Any]]] = {}
        self.caught_up_wall = wall


class ReplicaSet:
    """Leader + followers for one shard, with quorum writes and failover."""

    def __init__(
        self,
        shard_id: int,
        leader_db: MultiModelDatabase,
        config: ReplicaSetConfig,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.shard_id = shard_id
        self.config = config
        self.n_replicas = config.replicas_per_shard
        self.acks_needed = config.acks_needed
        self.clock = clock
        self.term = 1
        self.leader_id = 0
        self.obs: Any = None  # Observability bundle, pushed by the cluster
        # Reentrant: a quorum ship inside read_db holds the same lock.
        self._lock = threading.RLock()
        self._rr = 0
        now = clock()
        self.replicas = [Replica(0, leader_db.wal, leader_db, "leader", now)]
        for i in range(1, self.n_replicas):
            # Follower WALs sync in one batch per ship (_ship), not per
            # append; the view database is private to this follower.
            self.replicas.append(
                Replica(
                    i,
                    WriteAheadLog(sync_every_append=False),
                    MultiModelDatabase(name=f"shard{shard_id}f{i}"),
                    "follower",
                    now,
                )
            )
        for follower in self.replicas[1:]:
            # Tag the shipped WAL copy so wal.append failpoints can
            # target one follower's log (the view db tags its own).
            follower.wal.tag = f"shard{shard_id}f{follower.replica_id}"
        # Degraded (read-only) mode: set when replicate() exhausts its
        # quorum wait, cleared when a later replicate/rejoin/catch_up
        # finds the quorum reachable again.  Reads keep serving
        # throughout; only write acknowledgement is refused.
        self.degraded = False
        self.degraded_entries = 0
        self.degraded_exits = 0
        # Counters (exposed via metrics(); cluster sums them per shard).
        self.elections = 0
        self.failovers = 0
        self.truncated_records = 0
        self.records_shipped = 0
        self.quorum_writes = 0
        self.leader_reads = 0
        self.follower_reads = 0
        self.session_fallbacks = 0

    # -- membership ----------------------------------------------------------

    @property
    def leader(self) -> Replica:
        return self.replicas[self.leader_id]

    @property
    def leader_db(self) -> MultiModelDatabase:
        return self.leader.db

    def live_followers(self) -> list[Replica]:
        return [
            r for r in self.replicas
            if r.alive and r.replica_id != self.leader_id
        ]

    def kill(self, replica_id: int) -> None:
        """Fault hook: a follower node dies (leader death goes through
        :meth:`fail_over`, which elects before anything reads stale)."""
        if replica_id == self.leader_id:
            raise ClusterError(
                f"shard {self.shard_id}: use fail_over() to kill the leader"
            )
        with self._lock:
            self.replicas[replica_id].alive = False

    # -- log shipping & quorum writes ----------------------------------------

    def lag_records(self, replica: Replica) -> int:
        return len(self.leader.wal) - len(replica.wal)

    def _ship(self, follower: Replica) -> int:
        """Ship the leader's outstanding records to one follower."""
        missing = self.leader.wal.records_from(len(follower.wal))
        for rec in missing:
            follower.wal.append(rec)
            self._apply_to_view(follower, rec)
        if missing:
            follower.wal.sync()  # one fsync per batch: shipped == durable
            self.records_shipped += len(missing)
        if len(follower.wal) == len(self.leader.wal):
            follower.caught_up_wall = self.clock()
        return len(missing)

    def _apply_to_view(self, follower: Replica, rec: dict[str, Any]) -> None:
        """Incremental redo: one shipped record onto the follower view."""
        kind = rec["type"]
        if kind == "ddl":
            follower.db._replay_ddl(rec)
        elif kind == "write":
            follower.pending.setdefault(rec["txn"], []).append(
                (rec["key"], rec["value"])
            )
        elif kind == "commit":
            self._apply_commit(follower, rec["txn"], rec["ts"])
        elif kind == "decision":
            if rec["decision"] == "commit":
                self._apply_commit(follower, rec["txn"], rec["ts"])
            else:
                follower.pending.pop(rec["txn"], None)
        elif kind == "abort":
            follower.pending.pop(rec["txn"], None)
        # begin / prepare / checkpoint: nothing to materialise (a
        # prepare's writes stay pending — in doubt — until the decision).

    def _apply_commit(self, follower: Replica, txn_id: int, ts: int) -> None:
        db = follower.db
        for key, value in follower.pending.pop(txn_id, ()):
            db.store.apply_committed_write(ts, key, copy_value(value), txn_id=0)
            if key.model is Model.GRAPH_EDGE and isinstance(key.key, int):
                db._next_edge_id = max(db._next_edge_id, key.key + 1)
        if ts > follower.applied_ts:
            follower.applied_ts = ts
            db.manager.current_ts = max(db.manager.current_ts, ts)

    def replicate(self) -> None:
        """Quorum write ack: ship to enough live followers, or refuse.

        Called after the leader commits (or logs a prepare/decision).
        The leader's local durability is the first ack; the first
        ``acks_needed - 1`` live followers in id order are the sync
        targets; the rest lag until catch-up, a stale-bounded read, or
        an election needs them.

        When too few followers are alive, the call waits up to
        ``config.quorum_timeout_s`` for the quorum to return (releasing
        the lock between polls so a concurrent :meth:`rejoin` can get
        in), then raises :class:`~repro.errors.QuorumLostError` and
        marks the shard **degraded**: the write is durable on the leader
        but *not acknowledged*, and subsequent writes fail fast through
        :meth:`ensure_writable` while reads keep serving.  A successful
        replicate clears the degraded flag — recovery is automatic once
        followers rejoin and catch up.
        """
        if self.acks_needed <= 1:
            return
        started = perf_counter()
        deadline: float | None = None
        while True:
            with self._lock:
                need = self.acks_needed - 1
                targets = self.live_followers()[:need]
                if len(targets) >= need:
                    for follower in targets:
                        self._ship(follower)
                    self.quorum_writes += 1
                    if self.degraded:
                        self._exit_degraded_locked()
                    break
                if deadline is None:
                    deadline = self.clock() + self.config.quorum_timeout_s
                if self.clock() >= deadline:
                    self._enter_degraded_locked()
                    raise QuorumLostError(
                        f"shard {self.shard_id}: quorum unavailable "
                        f"({1 + len(targets)}/{self.acks_needed} acks reachable)"
                    )
            time.sleep(0.001)
        obs = self.obs
        if obs is not None and obs.enabled:
            obs.replication_quorum_seconds.observe(perf_counter() - started)

    def ensure_writable(self) -> None:
        """Fail fast when the shard is degraded (read-only).

        The guard commits check *before* doing work: a degraded shard
        refuses new writes immediately instead of burning the quorum
        timeout per attempt.  The one replication probe doubles as the
        recovery path — if the quorum is back, it clears the flag and
        the write proceeds.
        """
        if not self.degraded:
            return
        self.replicate()

    def _enter_degraded_locked(self) -> None:
        if self.degraded:
            return
        self.degraded = True
        self.degraded_entries += 1
        obs = self.obs
        if obs is not None and obs.enabled:
            obs.replication_degraded_shards.inc()
            obs.replication_degraded_entries_total.inc()

    def _exit_degraded_locked(self) -> None:
        if not self.degraded:
            return
        self.degraded = False
        self.degraded_exits += 1
        obs = self.obs
        if obs is not None and obs.enabled:
            obs.replication_degraded_shards.dec()
            obs.replication_degraded_exits_total.inc()

    def catch_up(self) -> int:
        """Ship everything outstanding to every live follower."""
        with self._lock:
            shipped = sum(self._ship(f) for f in self.live_followers())
            if (
                self.degraded
                and len(self.live_followers()) >= self.acks_needed - 1
            ):
                self._exit_degraded_locked()
            return shipped

    # -- reads ---------------------------------------------------------------

    def read_replica(self, preference: str, floor_ts: int = 0) -> Replica:
        """Pick the replica that serves one shard-context read.

        ``leader`` always returns the leader.  ``follower`` rotates over
        live followers, repairing any that lag more than
        ``max_lag_records`` before they serve (bounded staleness).
        ``session`` serves from a follower only if it has applied
        *floor_ts* (the session token's floor for this shard); otherwise
        the leader serves and the fallback is counted — the same price
        metric :class:`repro.consistency.sessions.ClientSession` reports
        for the simulated store.
        """
        with self._lock:
            followers = self.live_followers()
            if preference == "leader" or not followers:
                self.leader_reads += 1
                return self.leader
            self._rr += 1
            follower = followers[self._rr % len(followers)]
            # Both follower modes honour the staleness bound first: a
            # follower lagging more than max_lag_records is repaired
            # before it may serve (bounded staleness; with the default
            # bound of 0 it reads the leader's current log).
            if self.lag_records(follower) > self.config.max_lag_records:
                self._ship(follower)
            if preference == "session" and follower.applied_ts < floor_ts:
                self.session_fallbacks += 1
                self.leader_reads += 1
                return self.leader
            self.follower_reads += 1
            return follower

    # -- election & failover -------------------------------------------------

    def elect_leader(self) -> Replica:
        """Term + log-position voting over the live membership.

        Raft's up-to-date rule, made deterministic: every live replica
        grants its vote to the candidate whose durable log is longest
        (ties to the lowest replica id).  A majority of the *full*
        membership must be alive — a minority partition cannot elect.
        """
        with self._lock:
            live = [r for r in self.replicas if r.alive]
            if 2 * len(live) <= self.n_replicas:
                raise ClusterError(
                    f"shard {self.shard_id}: only {len(live)}/{self.n_replicas} "
                    "replicas alive — no quorum to elect a leader"
                )

            def log_position(replica: Replica) -> tuple[int, int]:
                return (replica.wal.durable_length, -replica.replica_id)

            candidate = max(live, key=log_position)
            votes = sum(
                1 for voter in live
                if log_position(candidate) >= log_position(voter)
            )
            assert votes == len(live)  # deterministic rule: unanimous
            self.term += 1
            self.elections += 1
            obs = self.obs
            if obs is not None and obs.enabled:
                obs.replication_elections_total.inc()
            return candidate

    def fail_over(self, coordinator_log: CoordinatorLog) -> dict[str, int]:
        """The leader died: elect, resolve in-doubt, promote.

        The dead leader's unsynced WAL tail is gone with its page cache
        — it must not (and cannot) survive into the new leadership.
        Returns :func:`repro.txn.recovery.resolve_in_doubt`'s counters
        for the winner's WAL (``recovered_commit``/``recovered_abort``).
        """
        with self._lock:
            old = self.leader
            old.alive = False
            old.role = "dead"
            old.wal.crash()
            winner = self.elect_leader()
            resolution = resolve_in_doubt(winner.wal, coordinator_log)
            self._promote(winner)
            for replica in self.live_followers():
                self._reconcile(replica)
            self.failovers += 1
            obs = self.obs
            if obs is not None and obs.enabled:
                obs.replication_failovers_total.inc()
            return resolution

    def recover_all(self, coordinator_log: CoordinatorLog) -> dict[str, int]:
        """Whole-cluster power failure: every node restarts and re-elects.

        Every replica (dead ones included — a power cycle restarts the
        box) loses its unsynced tail, the longest durable log wins the
        election, in-doubt prepares resolve against the coordinator log,
        and every other replica reconciles to a prefix of the new leader
        and catches up fully — so the caller may checkpoint the
        coordinator log afterwards (no replica anywhere can still be in
        doubt).
        """
        with self._lock:
            old_leader_id = self.leader_id
            corrupt: set[int] = set()
            for replica in self.replicas:
                replica.alive = True
                replica.wal.crash()
                # Restart re-reads the log from disk: checksums verify
                # now, and a torn/bit-rotted record truncates *before*
                # the election — shrinking this replica's durable
                # length so an intact copy wins and reships the cut
                # suffix (bit rot repaired by replication, zero loss).
                if replica.wal.truncate_corrupt():
                    corrupt.add(replica.replica_id)
            winner = self.elect_leader()
            resolution = resolve_in_doubt(winner.wal, coordinator_log)
            self._promote(winner)
            for replica in self.replicas:
                if replica is not winner:
                    replica.role = "follower"
                    self._reconcile(
                        replica,
                        force_rebuild=replica.replica_id in corrupt,
                    )
                    self._ship(replica)
            if winner.replica_id != old_leader_id:
                self.failovers += 1
            return resolution

    def rejoin(self, replica_id: int) -> int:
        """A dead node returns as a follower; divergent entries truncate.

        The deposed leader's log may extend past what it ever shipped —
        entries the new leadership never saw.  They are cut back to the
        common prefix with the new leader's log (counted in
        ``truncated_records``), the view is rebuilt, and the follower
        resyncs.  Returns the number of records truncated.
        """
        with self._lock:
            replica = self.replicas[replica_id]
            if replica_id == self.leader_id and replica.alive:
                return 0
            replica.alive = True
            replica.role = "follower"
            # A rejoining node re-reads its log from disk: verify
            # checksums and cut any corrupt suffix before reconciling
            # (the reship repairs it from the leader's intact copy).
            corrupt_dropped = replica.wal.truncate_corrupt()
            dropped = self._reconcile(
                replica, force_rebuild=bool(corrupt_dropped)
            )
            self._ship(replica)
            if (
                self.degraded
                and len(self.live_followers()) >= self.acks_needed - 1
            ):
                self._exit_degraded_locked()
            return dropped + corrupt_dropped

    def _promote(self, winner: Replica) -> None:
        """Rebuild a leader database over the winner's own WAL.

        Unlike :meth:`MultiModelDatabase.recover` this does *not*
        compact into a fresh WAL: the winner's log must stay
        prefix-comparable with every other replica's copy, and its
        record count is the shipping cursor.  The new manager's txn-id
        allocator starts above every id in the log (a reused id would
        merge two transactions at the next replay) and its commit clock
        resumes at the highest replayed timestamp.
        """
        winner.db = _rebuild_leader_db(
            winner.wal, name=f"shard{self.shard_id}", shard_id=self.shard_id
        )
        winner.role = "leader"
        winner.pending.clear()
        winner.applied_ts = winner.db.manager.current_ts
        winner.caught_up_wall = self.clock()
        self.leader_id = winner.replica_id

    def _reconcile(self, replica: Replica, force_rebuild: bool = False) -> int:
        """Truncate *replica*'s log to its common prefix with the leader.

        Surviving followers are exact prefixes (they only ever received
        the shared stream) and truncate nothing; a deposed leader can
        hold a divergent suffix.  After a truncation the view is rebuilt
        from the surviving records — the materialised state may have
        included the truncated writes.  A deposed leader's view rebuilds
        unconditionally: its database *is* the old leader database
        (recognisable because it shares the replica's WAL object), whose
        state already contains every logged write — shipping on top of
        it would double-apply.  ``force_rebuild`` covers the third case:
        a corruption truncation happened *before* this call, so the
        prefix check sees nothing to drop but the view still holds
        writes past the cut.
        """
        leader_records = self.leader.wal.records_from(0)
        mine = replica.wal.records_from(0)
        limit = min(len(mine), len(leader_records))
        prefix = limit
        for i in range(limit):
            a, b = mine[i], leader_records[i]
            if a is not b and a != b:
                prefix = i
                break
        dropped = replica.wal.truncate_to(prefix)
        self.truncated_records += dropped
        if dropped or force_rebuild or replica.db.wal is replica.wal:
            self._rebuild_view(replica)
        return dropped

    def _rebuild_view(self, replica: Replica) -> None:
        """Re-materialise *replica*'s view from its surviving records."""
        replica.db = MultiModelDatabase(
            name=f"shard{self.shard_id}f{replica.replica_id}"
        )
        replica.pending = {}
        replica.applied_ts = 0
        for rec in replica.wal.records_from(0):
            self._apply_to_view(replica, rec)

    # -- metrics -------------------------------------------------------------

    def metrics(self) -> dict[str, Any]:
        """Flat gauge/counter snapshot (cluster prefixes it per shard)."""
        with self._lock:
            now = self.clock()
            out: dict[str, Any] = {
                "replicas": self.n_replicas,
                "live": sum(1 for r in self.replicas if r.alive),
                "term": self.term,
                "leader_id": self.leader_id,
                "acks_needed": self.acks_needed,
                "degraded": int(self.degraded),
                "degraded_entries_total": self.degraded_entries,
                "degraded_exits_total": self.degraded_exits,
                "elections_total": self.elections,
                "failovers_total": self.failovers,
                "truncated_records_total": self.truncated_records,
                "records_shipped_total": self.records_shipped,
                "quorum_writes_total": self.quorum_writes,
                "leader_reads_total": self.leader_reads,
                "follower_reads_total": self.follower_reads,
                "session_fallbacks_total": self.session_fallbacks,
            }
            for replica in self.replicas:
                if replica.replica_id == self.leader_id:
                    continue
                lag = self.lag_records(replica)
                rid = replica.replica_id
                out[f"lag_records_replica{rid}"] = lag
                out[f"lag_seconds_replica{rid}"] = (
                    0.0 if lag == 0 else max(0.0, now - replica.caught_up_wall)
                )
            return out


def _rebuild_leader_db(
    wal: WriteAheadLog, name: str, shard_id: int
) -> MultiModelDatabase:
    """WAL replay into a fresh database that keeps *wal* as its log.

    The promotion-time twin of :meth:`MultiModelDatabase.recover`,
    minus the compaction (see :meth:`ReplicaSet._promote` for why).
    """
    from repro.cluster.sharded import _EDGE_ID_STRIDE

    db = MultiModelDatabase.__new__(MultiModelDatabase)
    db.name = name
    db.store = Store()
    db.wal = wal
    db.manager = TransactionManager(db.store, wal)
    db._table_schemas = {}
    db._graphs = {}
    db._next_edge_id = 1 + shard_id * _EDGE_ID_STRIDE
    db._indexes = {}
    db.catalog_epoch = 0
    db.store.on_apply.append(db._maintain_indexes)
    db.store.on_apply.append(db._maintain_adjacency)
    max_txn_id = 0
    for rec in wal.records_from(0):
        if rec["type"] == "ddl":
            db._replay_ddl(rec)
        txn_id = rec.get("txn")
        if txn_id is not None and txn_id > max_txn_id:
            max_txn_id = txn_id
    max_ts = 0
    for ts, key, value in wal.replay():
        db.store.apply_committed_write(ts, key, value, txn_id=0)
        if ts > max_ts:
            max_ts = ts
        if key.model is Model.GRAPH_EDGE and isinstance(key.key, int):
            db._next_edge_id = max(db._next_edge_id, key.key + 1)
    db.manager.current_ts = max_ts
    db.manager._next_txn_id = max_txn_id + 1
    return db
