"""Exception hierarchy for the UDBMS-benchmark reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the major
subsystems: data models, the transactional engine, the MMQL query layer,
schema evolution, conversion, and the benchmark harness itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Data-model layer
# ---------------------------------------------------------------------------


class ModelError(ReproError):
    """Base class for errors in the five data-model substrates."""


class SchemaError(ModelError):
    """A relational schema was violated or is malformed."""


class ConstraintError(SchemaError):
    """A declared constraint (primary key, not-null, foreign key) failed."""


class TypeMismatchError(SchemaError):
    """A value did not match the declared column/field type."""


class DocumentError(ModelError):
    """A JSON document or JSONPath expression is invalid."""


class XmlError(ModelError):
    """Malformed XML text or an invalid XML tree operation."""


class XPathError(XmlError):
    """An XPath expression could not be parsed or evaluated."""


class GraphError(ModelError):
    """An invalid property-graph operation (missing vertex, bad edge...)."""


class KeyValueError(ModelError):
    """An invalid key-value store operation."""


# ---------------------------------------------------------------------------
# Engine layer
# ---------------------------------------------------------------------------


class EngineError(ReproError):
    """Base class for transactional-engine failures."""


class TransactionError(EngineError):
    """A transaction could not proceed (already closed, invalid state)."""


class TransactionAborted(TransactionError):
    """The transaction was aborted and must be retried by the caller."""


class SerializationConflict(TransactionAborted):
    """A first-committer-wins / validation conflict under MVCC."""


class DeadlockError(TransactionAborted):
    """The lock manager chose this transaction as a deadlock victim."""


class WalError(EngineError):
    """The write-ahead log is corrupt or could not be replayed."""


class WalCorruptionError(WalError):
    """A WAL record failed its checksum (torn write, bit rot)."""


class SimulatedCrash(EngineError):
    """Fault injection fired: the engine 'crashed' at a chosen point."""


class NoSuchCollectionError(EngineError):
    """A named collection/table/graph does not exist in the database."""


class DuplicateCollectionError(EngineError):
    """Attempt to create a collection that already exists."""


# ---------------------------------------------------------------------------
# Cluster layer (shard worker processes, wire protocol)
# ---------------------------------------------------------------------------


class ClusterError(ReproError):
    """Base class for cluster-layer failures (workers, wire protocol)."""


class FrameError(ClusterError):
    """A wire frame is malformed (bad length prefix, truncated payload)."""


class WorkerDied(ClusterError):
    """A shard worker process crashed and could not be restarted."""


class RemoteTimeout(ClusterError):
    """A worker did not answer a wire request within its deadline."""


class QuorumLostError(ClusterError):
    """A shard's replica set cannot reach its write-ack quorum.

    The shard is degraded (read-only): writes fail fast with this error
    until enough followers rejoin and catch up; leader and follower
    reads keep serving throughout.
    """


class ChaosInvariantError(ReproError):
    """The chaos soak caught an invariant violation under induced faults."""


# ---------------------------------------------------------------------------
# Query layer (MMQL)
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for MMQL errors."""


class MMQLSyntaxError(QueryError):
    """The MMQL text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class PlanError(QueryError):
    """The query is syntactically valid but cannot be planned."""


class ExecutionError(QueryError):
    """A runtime failure while executing a query plan."""


class UnknownFunctionError(ExecutionError):
    """An MMQL builtin function name was not recognised."""


# ---------------------------------------------------------------------------
# Schema-evolution layer
# ---------------------------------------------------------------------------


class EvolutionError(ReproError):
    """A schema-evolution operation could not be applied."""


class IncompatibleEvolutionError(EvolutionError):
    """The operation conflicts with the current schema version."""


# ---------------------------------------------------------------------------
# Conversion layer
# ---------------------------------------------------------------------------


class ConversionError(ReproError):
    """A model-to-model conversion failed."""


class GoldStandardMismatch(ConversionError):
    """Converted output did not match the generator's gold standard."""

    def __init__(self, task: str, differences: list[str]) -> None:
        preview = "; ".join(differences[:5])
        super().__init__(f"gold-standard mismatch for {task}: {preview}")
        self.task = task
        self.differences = differences


# ---------------------------------------------------------------------------
# Benchmark harness
# ---------------------------------------------------------------------------


class BenchmarkError(ReproError):
    """The benchmark harness was misconfigured or a run failed."""


class WorkloadError(BenchmarkError):
    """A workload definition is invalid for the requested driver."""
