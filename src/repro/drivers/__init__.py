"""Drivers: the uniform system-access layer of the benchmark.

The paper calls for "publicly available implementations of benchmarking
data and queries for different systems ... developed, shared, unified".
A :class:`~repro.drivers.base.Driver` is that unification: the benchmark
core talks only to this interface, and each system under test (the
unified multi-model engine, the polyglot-persistence baseline) provides
an implementation.
"""

from repro.drivers.base import Driver
from repro.drivers.polyglot import PolyglotDriver
from repro.drivers.unified import UnifiedDriver

__all__ = ["Driver", "PolyglotDriver", "UnifiedDriver"]
