"""Driver wrapping the polyglot-persistence baseline.

MMQL queries run against the five stores through application-level glue
(the executor's nested loops *are* the app-side joins the polyglot
architecture forces).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.baselines.polyglot import PolyglotPersistence, PolyglotSession
from repro.drivers.base import Driver
from repro.errors import NoSuchCollectionError
from repro.models.graph.traversal import neighbors_within, shortest_path


class PolyglotQueryContext:
    """QueryContext over the five independent stores."""

    def __init__(self, db: PolyglotPersistence) -> None:
        self.db = db

    def iter_collection(self, name: str) -> Iterable[Any]:
        if name in self.db.tables:
            yield from self.db.tables[name].scan()
        elif name in self.db.collections:
            for doc in list(self.db.collections[name].values()):
                yield dict(doc)
        elif name in self.db.xml_collections:
            for doc_id, tree in list(self.db.xml_collections[name].items()):
                yield {"_id": doc_id, "root": tree}
        elif name in self.db.graphs:
            yield from self.vertices(name, None)
        elif name in self.db.kv_namespaces:
            for key, value in self.db.kv_namespaces[name].items():
                yield {"key": key, "value": value}
        else:
            raise NoSuchCollectionError(f"no collection {name!r}")

    def index_lookup(
        self, collection: str, field: str, value: Any
    ) -> Iterable[Any] | None:
        if collection in self.db.tables:
            table = self.db.tables[collection]
            if field == "_id" and len(table.schema.primary_key) == 1:
                row = table.get((value,))
                return [row] if row is not None else []
            index = self.db.index("table", collection, field)
            if index is None:
                return None
            out = []
            for pk in index.get(value, ()):
                row = table.get(pk)
                if row is not None and row.get(field) == value:
                    out.append(row)
            return out
        if collection in self.db.collections:
            coll = self.db.collections[collection]
            if field == "_id":
                doc = coll.get(value)
                return [dict(doc)] if doc is not None else []
            index = self.db.index("collection", collection, field)
            if index is None:
                return None
            out = []
            for doc_id in index.get(value, ()):
                doc = coll.get(doc_id)
                if doc is not None and doc.get(field) == value:
                    out.append(dict(doc))
            return out
        return None

    def range_lookup(
        self,
        collection: str,
        field: str,
        low: Any,
        high: Any,
        include_low: bool,
        include_high: bool,
    ) -> Iterable[Any] | None:
        """Range lookup over the baseline's hash indexes.

        The polyglot stores keep only hash indexes, so a range probe
        walks the index's distinct values with bound checks — O(distinct
        values) instead of O(log n + k), which is itself part of the
        architectural comparison.  Incomparable values are skipped; the
        executor's residual FILTER keeps the answer exact.
        """
        if collection in self.db.tables:
            kind, fetch = "table", self.db.tables[collection].get
        elif collection in self.db.collections:
            coll = self.db.collections[collection]
            kind = "collection"

            def fetch(doc_id):
                doc = coll.get(doc_id)
                return dict(doc) if doc is not None else None
        else:
            return None
        index = self.db.index(kind, collection, field)
        if index is None:
            return None
        out = []
        for value, keys in index.items():
            try:
                if low is not None and (
                    value < low or (not include_low and value == low)
                ):
                    continue
                if high is not None and (
                    value > high or (not include_high and value == high)
                ):
                    continue
            except TypeError:
                continue
            for key in keys:
                row = fetch(key)
                if row is not None:
                    out.append(row)
        return out

    # -- graph ---------------------------------------------------------------

    def traverse(
        self,
        graph: str,
        start: Any,
        min_depth: int,
        max_depth: int,
        edge_label: str | None,
    ) -> Iterable[Any]:
        g = self.db.graphs[graph]
        for vid in neighbors_within(g, start, min_depth, max_depth, edge_label):
            vertex = g.vertex(vid)
            out = {"_id": vertex.id, "label": vertex.label}
            out.update(vertex.properties)
            yield out

    def vertices(self, graph: str, label: str | None) -> Iterable[Any]:
        for vertex in self.db.graphs[graph].vertices(label):
            out = {"_id": vertex.id, "label": vertex.label}
            out.update(vertex.properties)
            yield out

    def edges(self, graph: str, label: str | None) -> Iterable[Any]:
        for edge in self.db.graphs[graph].edges(label):
            out = {
                "_id": edge.id, "_src": edge.src, "_dst": edge.dst,
                "label": edge.label,
            }
            out.update(edge.properties)
            yield out

    def shortest_path(
        self, graph: str, start: Any, goal: Any, edge_label: str | None
    ) -> list[Any] | None:
        return shortest_path(self.db.graphs[graph], start, goal, edge_label)

    # -- KV / XML --------------------------------------------------------------

    def kv_get(self, namespace: str, key: str) -> Any:
        return self.db.kv_namespaces[namespace].get(key)

    def kv_prefix(self, namespace: str, prefix: str) -> Iterable[Any]:
        for key, value in self.db.kv_namespaces[namespace].scan_prefix(prefix):
            yield {"key": key, "value": value}

    def xml_get(self, collection: str, doc_id: Any) -> Any:
        return self.db.xml_collections[collection].get(doc_id)


class PolyglotDriver(Driver):
    """The polyglot baseline behind the uniform driver interface."""

    name = "polyglot"

    def __init__(self) -> None:
        self.db = PolyglotPersistence()
        self._ddl_epoch = 0

    def create_table(self, schema: Any) -> None:
        self.db.create_table(schema)

    def create_collection(self, name: str) -> None:
        self.db.create_collection(name)

    def create_xml_collection(self, name: str) -> None:
        self.db.create_xml_collection(name)

    def create_kv_namespace(self, name: str) -> None:
        self.db.create_kv_namespace(name)

    def create_graph(self, name: str) -> None:
        self.db.create_graph(name)

    def create_index(
        self, kind: str, collection: str, field: str, index_type: str = "hash"
    ) -> None:
        # The baseline keeps only hash indexes; range probes walk them.
        self.db.create_index(kind, collection, field)
        self._ddl_epoch += 1

    def catalog_epoch(self) -> int:
        return self._ddl_epoch

    def load(self, loader: Callable[[PolyglotSession], None]) -> None:
        self.db.run_transaction(loader)

    def query_context(self) -> PolyglotQueryContext:
        return PolyglotQueryContext(self.db)

    def run_transaction(self, body: Callable[[PolyglotSession], Any]) -> Any:
        return self.db.run_transaction(body)

    def stats(self) -> dict[str, int]:
        return self.db.stats()
