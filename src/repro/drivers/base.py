"""The abstract driver interface every system under test implements."""

from __future__ import annotations

import abc
import threading
from typing import Any, Callable

from repro.query.context import QueryContext
from repro.query.plancache import PlanCache


class Driver(abc.ABC):
    """Uniform access to one system under test.

    Responsibilities:

    - DDL: create the five model containers for the benchmark scenario.
    - Loading: bulk-insert generated data.
    - Queries: expose a :class:`QueryContext` so MMQL runs unchanged.
    - Transactions: run a multi-model read-write unit atomically (or as
      atomically as the architecture permits — the polyglot baseline's
      weaker guarantee is itself a measured result).

    Every driver owns one :class:`~repro.query.plancache.PlanCache`:
    repeated queries (and the subqueries they contain) skip parse +
    plan, and the cache key carries :meth:`catalog_epoch` so index and
    shard-map DDL invalidates stale plans instead of serving them.
    """

    name: str = "driver"
    plan_cache_capacity: int = 128
    # Guards lazy cache creation only (rare); shared across drivers is
    # fine.  Without it, two threads racing a cold driver's first query
    # would each build a cache and one would silently clobber the other.
    _plan_cache_init_lock = threading.Lock()

    @property
    def plan_cache(self) -> PlanCache:
        """The driver's shared plan cache (created lazily — subclasses
        need not call any base ``__init__``)."""
        cache = self.__dict__.get("_plan_cache")
        if cache is None:
            with Driver._plan_cache_init_lock:
                cache = self.__dict__.get("_plan_cache")
                if cache is None:
                    cache = PlanCache(self.plan_cache_capacity)
                    self.__dict__["_plan_cache"] = cache
        return cache

    def catalog_epoch(self) -> int:
        """Monotonic version of the planning catalog (indexes, shard map).

        Drivers whose DDL changes planning inputs must bump this; the
        default (a constant) means plans are never invalidated.
        """
        return 0

    def plan_catalog(self) -> Any:
        """The catalog handed to ``plan()`` (a ShardRouter, or None)."""
        return None

    # -- DDL -------------------------------------------------------------

    @abc.abstractmethod
    def create_table(self, schema: Any) -> None:
        """Create a relational table from a TableSchema."""

    @abc.abstractmethod
    def create_collection(self, name: str) -> None:
        """Create a JSON document collection."""

    @abc.abstractmethod
    def create_xml_collection(self, name: str) -> None:
        """Create an XML document collection."""

    @abc.abstractmethod
    def create_kv_namespace(self, name: str) -> None:
        """Create a key-value namespace."""

    @abc.abstractmethod
    def create_graph(self, name: str) -> None:
        """Create a property graph."""

    @abc.abstractmethod
    def create_index(
        self, kind: str, collection: str, field: str, index_type: str = "hash"
    ) -> None:
        """Create a secondary index; *kind* is 'table' or 'collection'.

        *index_type* selects the structure: ``"hash"`` (equality),
        ``"sorted"`` or ``"btree"`` (ordered, serve range scans).
        Drivers without ordered structures may ignore it — the query
        layer falls back to scans when a range probe is unanswerable.
        *field* may be a dotted path into nested documents.
        """

    # -- loading -----------------------------------------------------------

    @abc.abstractmethod
    def load(self, loader: Callable[[Any], None]) -> None:
        """Run *loader(session)* as one bulk-load unit."""

    # -- queries ------------------------------------------------------------

    @abc.abstractmethod
    def query_context(self) -> QueryContext:
        """A QueryContext over the system's current committed state."""

    def query(
        self,
        text: str,
        params: dict[str, Any] | None = None,
        use_indexes: bool = True,
        use_compiled: bool = True,
        use_batches: bool = True,
        use_fusion: bool = True,
        batch_size: int | None = None,
    ) -> list[Any]:
        """Convenience: run one MMQL query on a fresh context.

        The plan comes from the driver's shared cache.  The keyword
        switches are the ablation axes: *use_compiled* (closures vs the
        interpreter), *use_batches* (batch-at-a-time vs per-binding
        streams) and *use_fusion* (fused pipeline closures vs unfused
        batch operators); *batch_size* tunes the vectorization width.
        """
        from repro.query.executor import Executor
        from repro.query.physical import DEFAULT_BATCH_SIZE

        ctx = self.query_context()
        try:
            executor = Executor(
                ctx,
                use_indexes=use_indexes,
                use_compiled=use_compiled,
                use_batches=use_batches,
                use_fusion=use_fusion,
                batch_size=batch_size or DEFAULT_BATCH_SIZE,
                plans=self.plan_cache,
                epoch=self.catalog_epoch(),
            )
            return executor.execute(text, params)
        finally:
            close = getattr(ctx, "close", None)
            if close is not None:
                close()

    def explain(self, text: str) -> str:
        """Human-readable plan for an MMQL query (index choices, clause order).

        A plan already resident in the driver's cache renders with a
        ``plan: cached epoch=N`` header instead of the bare ``plan:``.
        """
        epoch = self.catalog_epoch()
        cached = self.plan_cache.peek(text, epoch) is not None
        planned = self.plan_cache.get_or_plan(
            text, self.plan_catalog(), epoch
        )
        header = f"plan: cached epoch={epoch}" if cached else "plan:"
        return planned.describe(header=header)

    def explain_analyze(
        self,
        text: str,
        params: dict[str, Any] | None = None,
        use_indexes: bool = True,
    ) -> str:
        """Execute the query and render the plan with actual row counts.

        EXPLAIN ANALYZE-lite: every operator line carries ``rows=N`` (the
        bindings it produced), followed by the access-path counters.  On
        a sharded driver this shows routing (``shard_fanout=1``) versus
        scatter-gather, and the per-shard subplan's gathered row totals.
        """
        from repro.query.analyze import explain_analyze

        ctx = self.query_context()
        try:
            report, _ = explain_analyze(ctx, text, params, use_indexes)
            return report
        finally:
            close = getattr(ctx, "close", None)
            if close is not None:
                close()

    # -- transactions ------------------------------------------------------------

    @abc.abstractmethod
    def run_transaction(self, body: Callable[[Any], Any]) -> Any:
        """Execute *body(session)* as one multi-model transaction.

        The session object is driver-specific but must provide the same
        method names as :class:`repro.engine.database.Session` for the
        operations the benchmark workloads use.
        """

    # -- introspection -------------------------------------------------------------

    @abc.abstractmethod
    def stats(self) -> dict[str, int]:
        """Entity counts for the dataset report (Figure 1 reproduction)."""
