"""The abstract driver interface every system under test implements."""

from __future__ import annotations

import abc
from typing import Any, Callable

from repro.query.context import QueryContext


class Driver(abc.ABC):
    """Uniform access to one system under test.

    Responsibilities:

    - DDL: create the five model containers for the benchmark scenario.
    - Loading: bulk-insert generated data.
    - Queries: expose a :class:`QueryContext` so MMQL runs unchanged.
    - Transactions: run a multi-model read-write unit atomically (or as
      atomically as the architecture permits — the polyglot baseline's
      weaker guarantee is itself a measured result).
    """

    name: str = "driver"

    # -- DDL -------------------------------------------------------------

    @abc.abstractmethod
    def create_table(self, schema: Any) -> None:
        """Create a relational table from a TableSchema."""

    @abc.abstractmethod
    def create_collection(self, name: str) -> None:
        """Create a JSON document collection."""

    @abc.abstractmethod
    def create_xml_collection(self, name: str) -> None:
        """Create an XML document collection."""

    @abc.abstractmethod
    def create_kv_namespace(self, name: str) -> None:
        """Create a key-value namespace."""

    @abc.abstractmethod
    def create_graph(self, name: str) -> None:
        """Create a property graph."""

    @abc.abstractmethod
    def create_index(
        self, kind: str, collection: str, field: str, index_type: str = "hash"
    ) -> None:
        """Create a secondary index; *kind* is 'table' or 'collection'.

        *index_type* selects the structure: ``"hash"`` (equality),
        ``"sorted"`` or ``"btree"`` (ordered, serve range scans).
        Drivers without ordered structures may ignore it — the query
        layer falls back to scans when a range probe is unanswerable.
        *field* may be a dotted path into nested documents.
        """

    # -- loading -----------------------------------------------------------

    @abc.abstractmethod
    def load(self, loader: Callable[[Any], None]) -> None:
        """Run *loader(session)* as one bulk-load unit."""

    # -- queries ------------------------------------------------------------

    @abc.abstractmethod
    def query_context(self) -> QueryContext:
        """A QueryContext over the system's current committed state."""

    def query(
        self,
        text: str,
        params: dict[str, Any] | None = None,
        use_indexes: bool = True,
    ) -> list[Any]:
        """Convenience: run one MMQL query on a fresh context."""
        from repro.query.executor import run_query

        ctx = self.query_context()
        try:
            return run_query(ctx, text, params, use_indexes)
        finally:
            close = getattr(ctx, "close", None)
            if close is not None:
                close()

    def explain(self, text: str) -> str:
        """Human-readable plan for an MMQL query (index choices, clause order)."""
        from repro.query.parser import parse
        from repro.query.planner import plan

        return plan(parse(text)).describe()

    def explain_analyze(
        self,
        text: str,
        params: dict[str, Any] | None = None,
        use_indexes: bool = True,
    ) -> str:
        """Execute the query and render the plan with actual row counts.

        EXPLAIN ANALYZE-lite: every operator line carries ``rows=N`` (the
        bindings it produced), followed by the access-path counters.  On
        a sharded driver this shows routing (``shard_fanout=1``) versus
        scatter-gather, and the per-shard subplan's gathered row totals.
        """
        from repro.query.analyze import explain_analyze

        ctx = self.query_context()
        try:
            report, _ = explain_analyze(ctx, text, params, use_indexes)
            return report
        finally:
            close = getattr(ctx, "close", None)
            if close is not None:
                close()

    # -- transactions ------------------------------------------------------------

    @abc.abstractmethod
    def run_transaction(self, body: Callable[[Any], Any]) -> Any:
        """Execute *body(session)* as one multi-model transaction.

        The session object is driver-specific but must provide the same
        method names as :class:`repro.engine.database.Session` for the
        operations the benchmark workloads use.
        """

    # -- introspection -------------------------------------------------------------

    @abc.abstractmethod
    def stats(self) -> dict[str, int]:
        """Entity counts for the dataset report (Figure 1 reproduction)."""
