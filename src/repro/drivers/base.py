"""The abstract driver interface every system under test implements."""

from __future__ import annotations

import abc
import threading
from typing import Any, Callable

from repro.query.context import QueryContext
from repro.query.plancache import PlanCache


class Driver(abc.ABC):
    """Uniform access to one system under test.

    Responsibilities:

    - DDL: create the five model containers for the benchmark scenario.
    - Loading: bulk-insert generated data.
    - Queries: expose a :class:`QueryContext` so MMQL runs unchanged.
    - Transactions: run a multi-model read-write unit atomically (or as
      atomically as the architecture permits — the polyglot baseline's
      weaker guarantee is itself a measured result).

    Every driver owns one :class:`~repro.query.plancache.PlanCache`:
    repeated queries (and the subqueries they contain) skip parse +
    plan, and the cache key carries :meth:`catalog_epoch` so index and
    shard-map DDL invalidates stale plans instead of serving them.

    Every driver also owns one :class:`~repro.obs.core.Observability`
    (same lazy pattern): metrics registry, per-query tracing, and the
    slow-query log, exposed through :meth:`metrics`,
    :meth:`metrics_text` and :meth:`slow_queries`.  Subclasses hook
    :meth:`_register_observability` to register collectors over their
    engine internals (WAL, lock manager, 2PC coordinator).
    """

    name: str = "driver"
    plan_cache_capacity: int = 128
    # Guards lazy cache creation only (rare); shared across drivers is
    # fine.  Without it, two threads racing a cold driver's first query
    # would each build a cache and one would silently clobber the other.
    _plan_cache_init_lock = threading.Lock()

    @property
    def plan_cache(self) -> PlanCache:
        """The driver's shared plan cache (created lazily — subclasses
        need not call any base ``__init__``)."""
        cache = self.__dict__.get("_plan_cache")
        if cache is None:
            with Driver._plan_cache_init_lock:
                cache = self.__dict__.get("_plan_cache")
                if cache is None:
                    cache = PlanCache(self.plan_cache_capacity)
                    self.__dict__["_plan_cache"] = cache
        return cache

    @property
    def observability(self):
        """The driver's observability bundle (created lazily, like the
        plan cache — subclasses need not call any base ``__init__``)."""
        obs = self.__dict__.get("_observability")
        if obs is None:
            from repro.obs.core import Observability

            with Driver._plan_cache_init_lock:
                obs = self.__dict__.get("_observability")
                if obs is None:
                    obs = Observability()
                    self._register_observability(obs)
                    self.__dict__["_observability"] = obs
        return obs

    def _register_observability(self, obs) -> None:
        """Register this driver's metric collectors into *obs*.

        Called exactly once, when the lazy :attr:`observability` is
        first built.  Collectors are zero-overhead pulls — callables
        invoked only at snapshot time, reading counters the engine
        already keeps.  Subclasses extend this with their engine
        internals; the base registers the shared plan cache.
        """
        obs.registry.register_collector("plan_cache", self._plan_cache_metrics)

    def _plan_cache_metrics(self) -> dict[str, Any]:
        stats = self.plan_cache.stats()
        resolved = stats["hits"] + stats["misses"]
        stats["hit_rate"] = round(stats["hits"] / resolved, 6) if resolved else 0.0
        return stats

    def metrics(self) -> dict[str, Any]:
        """Stable nested dict of every registered metric and collector."""
        return self.observability.snapshot()

    def metrics_text(self) -> str:
        """The same metrics in Prometheus text exposition format."""
        return self.observability.to_prometheus()

    def slow_queries(self, n: int | None = None) -> list[dict[str, Any]]:
        """Captured slow-query entries, slowest first (all when *n* is None)."""
        return self.observability.slow_log.slowest(n)

    def catalog_epoch(self) -> int:
        """Monotonic version of the planning catalog (indexes, shard map).

        Drivers whose DDL changes planning inputs must bump this; the
        default (a constant) means plans are never invalidated.
        """
        return 0

    def plan_catalog(self) -> Any:
        """The catalog handed to ``plan()`` (a ShardRouter, or None)."""
        return None

    # -- DDL -------------------------------------------------------------

    @abc.abstractmethod
    def create_table(self, schema: Any) -> None:
        """Create a relational table from a TableSchema."""

    @abc.abstractmethod
    def create_collection(self, name: str) -> None:
        """Create a JSON document collection."""

    @abc.abstractmethod
    def create_xml_collection(self, name: str) -> None:
        """Create an XML document collection."""

    @abc.abstractmethod
    def create_kv_namespace(self, name: str) -> None:
        """Create a key-value namespace."""

    @abc.abstractmethod
    def create_graph(self, name: str) -> None:
        """Create a property graph."""

    @abc.abstractmethod
    def create_index(
        self, kind: str, collection: str, field: str, index_type: str = "hash"
    ) -> None:
        """Create a secondary index; *kind* is 'table' or 'collection'.

        *index_type* selects the structure: ``"hash"`` (equality),
        ``"sorted"`` or ``"btree"`` (ordered, serve range scans).
        Drivers without ordered structures may ignore it — the query
        layer falls back to scans when a range probe is unanswerable.
        *field* may be a dotted path into nested documents.
        """

    # -- loading -----------------------------------------------------------

    @abc.abstractmethod
    def load(self, loader: Callable[[Any], None]) -> None:
        """Run *loader(session)* as one bulk-load unit."""

    # -- queries ------------------------------------------------------------

    @abc.abstractmethod
    def query_context(self) -> QueryContext:
        """A QueryContext over the system's current committed state."""

    def query(
        self,
        text: str,
        params: dict[str, Any] | None = None,
        use_indexes: bool = True,
        use_compiled: bool = True,
        use_batches: bool = True,
        use_fusion: bool = True,
        batch_size: int | None = None,
    ) -> list[Any]:
        """Convenience: run one MMQL query on a fresh context.

        The plan comes from the driver's shared cache.  The keyword
        switches are the ablation axes: *use_compiled* (closures vs the
        interpreter), *use_batches* (batch-at-a-time vs per-binding
        streams) and *use_fusion* (fused pipeline closures vs unfused
        batch operators); *batch_size* tunes the vectorization width.

        When the driver's observability is enabled (the default) the
        run is timed into the metrics registry and, over the slow-query
        threshold, captured into the slow log; with tracing on it also
        produces a span tree.  Disabling observability restores the
        exact pre-instrumentation path.
        """
        return self._execute_on(
            self.query_context(), text, params, use_indexes, use_compiled,
            use_batches, use_fusion, batch_size,
        )

    def _execute_on(
        self,
        ctx: QueryContext,
        text: str,
        params: dict[str, Any] | None,
        use_indexes: bool,
        use_compiled: bool,
        use_batches: bool,
        use_fusion: bool,
        batch_size: int | None,
    ) -> list[Any]:
        """Run one query on an already-built context (closing it after).

        Split out of :meth:`query` so drivers that choose the context
        per call — e.g. a replicated cluster routing a session token's
        reads to followers — reuse the execution/observability path
        without duplicating it.
        """
        from repro.query.executor import Executor
        from repro.query.physical import DEFAULT_BATCH_SIZE

        try:
            executor = Executor(
                ctx,
                use_indexes=use_indexes,
                use_compiled=use_compiled,
                use_batches=use_batches,
                use_fusion=use_fusion,
                batch_size=batch_size or DEFAULT_BATCH_SIZE,
                plans=self.plan_cache,
                epoch=self.catalog_epoch(),
            )
            obs = self.observability
            if obs.enabled:
                return obs.observe_query(executor, text, params)
            return executor.execute(text, params)
        finally:
            close = getattr(ctx, "close", None)
            if close is not None:
                close()

    def explain(self, text: str) -> str:
        """Human-readable plan for an MMQL query (index choices, clause order).

        A plan already resident in the driver's cache renders with a
        ``plan: cached epoch=N`` header instead of the bare ``plan:``.
        """
        epoch = self.catalog_epoch()
        cached = self.plan_cache.peek(text, epoch) is not None
        planned = self.plan_cache.get_or_plan(
            text, self.plan_catalog(), epoch
        )
        header = f"plan: cached epoch={epoch}" if cached else "plan:"
        return planned.describe(header=header)

    def explain_analyze(
        self,
        text: str,
        params: dict[str, Any] | None = None,
        use_indexes: bool = True,
    ) -> str:
        """Execute the query and render the plan with actual row counts.

        EXPLAIN ANALYZE-lite: every operator line carries ``rows=N`` (the
        bindings it produced), followed by the access-path counters.  On
        a sharded driver this shows routing (``shard_fanout=1``) versus
        scatter-gather, and the per-shard subplan's gathered row totals.
        """
        from repro.query.analyze import explain_analyze

        ctx = self.query_context()
        try:
            report, _ = explain_analyze(ctx, text, params, use_indexes)
            return report
        finally:
            close = getattr(ctx, "close", None)
            if close is not None:
                close()

    # -- transactions ------------------------------------------------------------

    @abc.abstractmethod
    def run_transaction(self, body: Callable[[Any], Any]) -> Any:
        """Execute *body(session)* as one multi-model transaction.

        The session object is driver-specific but must provide the same
        method names as :class:`repro.engine.database.Session` for the
        operations the benchmark workloads use.
        """

    # -- introspection -------------------------------------------------------------

    @abc.abstractmethod
    def stats(self) -> dict[str, int]:
        """Entity counts for the dataset report (Figure 1 reproduction)."""
