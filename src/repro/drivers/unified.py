"""Driver for the unified multi-model engine.

Queries read the latest committed state through a long-lived snapshot
session that is refreshed before each query; transactions run through
``db.transaction()`` with configurable isolation.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.engine.database import MultiModelDatabase, Session
from repro.engine.records import Model
from repro.engine.transactions import IsolationLevel
from repro.errors import NoSuchCollectionError, TransactionAborted
from repro.drivers.base import Driver


class UnifiedQueryContext:
    """QueryContext over one read-only snapshot session."""

    def __init__(self, db: MultiModelDatabase) -> None:
        self.db = db
        self.session: Session = db.begin(IsolationLevel.SNAPSHOT)

    def close(self) -> None:
        if self.session.txn.state.value == "active":
            self.session.abort()

    # -- collection resolution ------------------------------------------------

    def _model_of(self, name: str) -> Model:
        if self.db.store.has_collection(Model.RELATIONAL, name):
            return Model.RELATIONAL
        if self.db.store.has_collection(Model.DOCUMENT, name):
            return Model.DOCUMENT
        if self.db.store.has_collection(Model.XML, name):
            return Model.XML
        if name in self.db._graphs:
            return Model.GRAPH_VERTEX
        if self.db.store.has_collection(Model.KEY_VALUE, name):
            return Model.KEY_VALUE
        raise NoSuchCollectionError(f"no collection {name!r}")

    def iter_collection(self, name: str) -> Iterable[Any]:
        model = self._model_of(name)
        if model is Model.RELATIONAL:
            yield from self.session.sql_scan(name)
        elif model is Model.DOCUMENT:
            yield from self.session.doc_scan(name)
        elif model is Model.XML:
            for doc_id, tree in self.session.xml_scan(name):
                yield {"_id": doc_id, "root": tree}
        elif model is Model.GRAPH_VERTEX:
            yield from self.vertices(name, None)
        else:  # KEY_VALUE
            for key, value in self.session.txn.scan(Model.KEY_VALUE, name):
                yield {"key": key, "value": value}

    def index_lookup(
        self, collection: str, field: str, value: Any
    ) -> Iterable[Any] | None:
        model = self._model_of(collection)
        if model is Model.RELATIONAL and field == "_id":
            # MMQL's DOCUMENT() uses "_id"; relational PK is the id column.
            schema = self.db.table_schema(collection)
            if len(schema.primary_key) == 1:
                row = self.session.sql_get(collection, (value,))
                return [row] if row is not None else []
        if model is Model.DOCUMENT and field == "_id":
            doc = self.session.doc_get(collection, value)
            return [doc] if doc is not None else []
        index = self.db.index(
            Model.RELATIONAL if model is Model.RELATIONAL else Model.DOCUMENT,
            collection,
            field,
        )
        if index is None:
            return None
        if model is Model.RELATIONAL:
            return self.session.sql_find(collection, field, value)
        return self.session.doc_find(collection, field, value)

    def range_lookup(
        self,
        collection: str,
        field: str,
        low: Any,
        high: Any,
        include_low: bool,
        include_high: bool,
    ) -> Iterable[Any] | None:
        """Range lookup via a sorted or B+tree index, if one exists.

        Candidates are re-read through the transaction for visibility;
        the executor re-applies the filter, so over-approximation from a
        latest-committed index stays correct.  Bounds that don't compare
        with the indexed values (e.g. a string bound over a numeric
        index) degrade to a scan — the residual filter then evaluates
        the mismatched comparison to False, exactly as without an index.
        """
        model = self._model_of(collection)
        if model not in (Model.RELATIONAL, Model.DOCUMENT):
            return None
        index = None
        for kind in ("sorted", "btree"):
            index = self.db.index(model, collection, field, kind=kind)
            if index is not None:
                break
        if index is None:
            return None
        out = []
        try:
            for _, record_key in index.range(low, high, include_low, include_high):
                row = self.session.txn.read(record_key)
                if row is not None:
                    out.append(row)
        except TypeError:
            return None
        return out

    # -- graph -------------------------------------------------------------------

    def _vertex_dict(self, vertex: Any) -> dict[str, Any]:
        out = {"_id": vertex.id, "label": vertex.label}
        out.update(vertex.properties)
        return out

    def traverse(
        self,
        graph: str,
        start: Any,
        min_depth: int,
        max_depth: int,
        edge_label: str | None,
    ) -> Iterable[Any]:
        for vid in self.session.graph_traverse(
            graph, start, min_depth, max_depth, edge_label
        ):
            vertex = self.session.graph_vertex(graph, vid)
            if vertex is not None:
                yield self._vertex_dict(vertex)

    def vertices(self, graph: str, label: str | None) -> Iterable[Any]:
        for vertex in self.session.graph_vertices(graph, label):
            yield self._vertex_dict(vertex)

    def edges(self, graph: str, label: str | None) -> Iterable[Any]:
        for edge in self.session.graph_edges(graph, label):
            out = {
                "_id": edge.id, "_src": edge.src, "_dst": edge.dst,
                "label": edge.label,
            }
            out.update(edge.properties)
            yield out

    def shortest_path(
        self, graph: str, start: Any, goal: Any, edge_label: str | None
    ) -> list[Any] | None:
        """BFS shortest path over committed adjacency."""
        if start == goal:
            return [start]
        from collections import deque

        parents: dict[Any, Any] = {start: start}
        queue: deque[Any] = deque([start])
        while queue:
            vid = queue.popleft()
            for edge in self.session.graph_out_edges(graph, vid, edge_label):
                if edge.dst in parents:
                    continue
                parents[edge.dst] = vid
                if edge.dst == goal:
                    path = [goal]
                    while path[-1] != start:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                queue.append(edge.dst)
        return None

    # -- KV / XML bridges ------------------------------------------------------------

    def kv_get(self, namespace: str, key: str) -> Any:
        return self.session.kv_get(namespace, key)

    def kv_prefix(self, namespace: str, prefix: str) -> Iterable[Any]:
        for key, value in self.session.kv_scan_prefix(namespace, prefix):
            yield {"key": key, "value": value}

    def xml_get(self, collection: str, doc_id: Any) -> Any:
        return self.session.xml_get(collection, doc_id)


class UnifiedDriver(Driver):
    """The multi-model engine behind the uniform driver interface."""

    name = "unified"

    def __init__(
        self,
        isolation: IsolationLevel = IsolationLevel.SNAPSHOT,
        max_retries: int = 10,
        wal_sync_every_append: bool = True,
    ) -> None:
        self.db = MultiModelDatabase(wal_sync_every_append=wal_sync_every_append)
        self.isolation = isolation
        self.max_retries = max_retries

    # -- DDL ---------------------------------------------------------------

    def create_table(self, schema: Any) -> None:
        self.db.create_table(schema)

    def create_collection(self, name: str) -> None:
        self.db.create_collection(name)

    def create_xml_collection(self, name: str) -> None:
        self.db.create_xml_collection(name)

    def create_kv_namespace(self, name: str) -> None:
        self.db.create_kv_namespace(name)

    def create_graph(self, name: str) -> None:
        self.db.create_graph(name)

    def create_index(
        self, kind: str, collection: str, field: str, index_type: str = "hash"
    ) -> None:
        model = Model.RELATIONAL if kind == "table" else Model.DOCUMENT
        self.db.create_index(model, collection, field, kind=index_type)

    # -- loading -------------------------------------------------------------

    def load(self, loader: Callable[[Session], None]) -> None:
        with self.db.transaction(IsolationLevel.SNAPSHOT) as session:
            loader(session)

    # -- queries -------------------------------------------------------------

    def query_context(self) -> UnifiedQueryContext:
        return UnifiedQueryContext(self.db)

    def catalog_epoch(self) -> int:
        return self.db.catalog_epoch

    # -- observability -----------------------------------------------------------

    def _register_observability(self, obs) -> None:
        """Plan cache (base) + this engine's WAL, lock table and txn manager.

        Collectors close over ``self`` (not the current ``db.wal`` etc.)
        so they keep reading the live objects even if the database is
        rebuilt under the driver.
        """
        super()._register_observability(obs)
        obs.registry.register_collector("wal", lambda: self.db.wal.metrics())
        obs.registry.register_collector(
            "locks", lambda: self.db.manager.locks.metrics()
        )
        obs.registry.register_collector(
            "txn",
            lambda: {
                "commits": self.db.manager.commits,
                "aborts": self.db.manager.aborts,
                "conflicts": self.db.manager.conflicts,
            },
        )

    # -- transactions ------------------------------------------------------------

    def run_transaction(self, body: Callable[[Session], Any]) -> Any:
        """Run *body* with retry-on-conflict (first-committer-wins aborts)."""
        attempts = 0
        while True:
            attempts += 1
            try:
                with self.db.transaction(self.isolation) as session:
                    return body(session)
            except TransactionAborted:
                if attempts > self.max_retries:
                    raise

    def stats(self) -> dict[str, int]:
        return self.db.stats()
