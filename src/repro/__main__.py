"""Command-line entry point: regenerate experiment tables.

Usage::

    python -m repro                 # run every experiment, print all tables
    python -m repro F1 E3a E6       # run a subset
    python -m repro --list          # show available experiment ids
    python -m repro --out report.txt
    python -m repro metrics         # observability survey: run the query
                                    # mix, print Prometheus metrics +
                                    # slowest traces (see --help)
    python -m repro chaos --seed 7  # seeded chaos soak on a live
                                    # replicated cluster (see --help)

Core experiments come from :mod:`repro.core.experiments` (F1, E1-E6) and
extensions from :mod:`repro.core.experiments_ext` (E7-E15, YCSB).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.experiments import ALL_EXPERIMENTS
from repro.core.experiments_ext import EXTENSION_EXPERIMENTS


def _registry() -> dict[str, object]:
    combined: dict[str, object] = dict(ALL_EXPERIMENTS)
    combined.update(EXTENSION_EXPERIMENTS)
    return combined


def main(argv: list[str] | None = None) -> int:
    args_in = sys.argv[1:] if argv is None else argv
    # `metrics` is a subcommand, not an experiment id — dispatch before
    # the experiment parser rejects it (or its own flags).
    if args_in and args_in[0] == "metrics":
        from repro.obs.cli import main as metrics_main

        return metrics_main(args_in[1:])
    if args_in and args_in[0] == "chaos":
        from repro.faults.cli import main as chaos_main

        return chaos_main(args_in[1:])

    registry = _registry()
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate UDBMS-benchmark experiment tables.",
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="EXP",
        help=f"experiment ids (default: all). Available: {', '.join(registry)}",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--out", metavar="FILE", help="also write tables to FILE")
    args = parser.parse_args(argv)

    if args.list:
        for name in registry:
            print(name)
        return 0

    wanted = args.experiments or list(registry)
    unknown = [name for name in wanted if name not in registry]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    rendered: list[str] = []
    for name in wanted:
        started = time.perf_counter()
        table = registry[name]()
        text = table.render()
        rendered.append(text)
        print(text)
        print(f"[{name}: {time.perf_counter() - started:.1f}s]\n")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write("\n\n".join(rendered) + "\n")
        print(f"wrote {len(rendered)} tables to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
