"""MultiModelDatabase: five data models, one transactional backend.

This is the "unified DBMS" the benchmark evaluates.  Every model API is
available inside a single transaction::

    db = MultiModelDatabase()
    db.create_table(order_schema)
    db.create_collection("orders")
    db.create_kv_namespace("feedback")
    db.create_xml_collection("invoices")
    db.create_graph("social")

    with db.transaction() as tx:
        tx.doc_update("orders", "o1", {"status": "shipped"})
        tx.kv_put("feedback", "p1/c1", {"rating": 5})
        tx.xml_put("invoices", "o1", invoice_tree)
        # ... all-or-nothing across the three models

DDL (create_table & friends) is autocommitted and WAL-logged so crash
recovery restores structure as well as data.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Iterator

from repro.engine.indexes import (
    BTreeIndex,
    HashIndex,
    SortedIndex,
    extract_path,
    field_extractor,
)
from repro.engine.records import Model, RecordKey, copy_value
from repro.engine.transactions import (
    IsolationLevel,
    Store,
    Transaction,
    TransactionManager,
)
from repro.engine.wal import WriteAheadLog
from repro.errors import (
    ConstraintError,
    DocumentError,
    DuplicateCollectionError,
    EngineError,
    GraphError,
    NoSuchCollectionError,
    TransactionError,
)
from repro.models.document.document import validate_json_value
from repro.models.graph.property_graph import Edge, Vertex
from repro.models.graph.traversal import bfs_depth_range
from repro.models.relational.predicate import Predicate
from repro.models.relational.schema import TableSchema
from repro.models.xml.node import XmlElement
from repro.models.xml.xpath import XPath


class _GraphMeta:
    """Committed adjacency index for one named graph (latest-committed view)."""

    def __init__(self) -> None:
        self.out_edges: dict[Any, set[Any]] = {}
        self.in_edges: dict[Any, set[Any]] = {}


class MultiModelDatabase:
    """The unified multi-model database (system under test)."""

    def __init__(self, name: str = "udbms", wal_sync_every_append: bool = True) -> None:
        self.name = name
        self.store = Store()
        self.wal = WriteAheadLog(sync_every_append=wal_sync_every_append)
        self.wal.tag = name
        self.manager = TransactionManager(self.store, self.wal)
        self._table_schemas: dict[str, TableSchema] = {}
        self._graphs: dict[str, _GraphMeta] = {}
        self._next_edge_id = 1
        # indexes[(model, collection)][index_name] = HashIndex | SortedIndex
        self._indexes: dict[tuple[Model, str], dict[str, Any]] = {}
        # Bumped by DDL that changes planning inputs (index create/drop);
        # part of every plan-cache key, so cached plans go stale safely.
        self.catalog_epoch = 0
        self.store.on_apply.append(self._maintain_indexes)
        self.store.on_apply.append(self._maintain_adjacency)

    # ------------------------------------------------------------------
    # DDL (autocommitted, WAL-logged)
    # ------------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        """Register a relational table."""
        if self.store.has_collection(Model.RELATIONAL, schema.name):
            raise DuplicateCollectionError(f"table {schema.name!r} exists")
        self.store.register_collection(Model.RELATIONAL, schema.name)
        self._table_schemas[schema.name] = schema
        self.wal.append({"type": "ddl", "op": "create_table", "schema": schema})

    def set_table_schema(self, schema: TableSchema) -> None:
        """Swap in an evolved schema version (schema-evolution pillar)."""
        if schema.name not in self._table_schemas:
            raise NoSuchCollectionError(f"no table {schema.name!r}")
        self._table_schemas[schema.name] = schema
        self.wal.append({"type": "ddl", "op": "set_table_schema", "schema": schema})

    def table_schema(self, name: str) -> TableSchema:
        schema = self._table_schemas.get(name)
        if schema is None:
            raise NoSuchCollectionError(f"no table {name!r}")
        return schema

    def create_collection(self, name: str) -> None:
        """Register a JSON document collection."""
        if self.store.has_collection(Model.DOCUMENT, name):
            raise DuplicateCollectionError(f"collection {name!r} exists")
        self.store.register_collection(Model.DOCUMENT, name)
        self.wal.append({"type": "ddl", "op": "create_collection", "name": name})

    def create_xml_collection(self, name: str) -> None:
        """Register an XML document collection."""
        if self.store.has_collection(Model.XML, name):
            raise DuplicateCollectionError(f"xml collection {name!r} exists")
        self.store.register_collection(Model.XML, name)
        self.wal.append({"type": "ddl", "op": "create_xml_collection", "name": name})

    def create_kv_namespace(self, name: str) -> None:
        """Register a key-value namespace."""
        if self.store.has_collection(Model.KEY_VALUE, name):
            raise DuplicateCollectionError(f"kv namespace {name!r} exists")
        self.store.register_collection(Model.KEY_VALUE, name)
        self.wal.append({"type": "ddl", "op": "create_kv_namespace", "name": name})

    def create_graph(self, name: str) -> None:
        """Register a property graph."""
        if name in self._graphs:
            raise DuplicateCollectionError(f"graph {name!r} exists")
        self.store.register_collection(Model.GRAPH_VERTEX, name)
        self.store.register_collection(Model.GRAPH_EDGE, name)
        self._graphs[name] = _GraphMeta()
        self.wal.append({"type": "ddl", "op": "create_graph", "name": name})

    def create_index(
        self,
        model: Model,
        collection: str,
        field: str,
        kind: str = "hash",
        extractor: Callable[[Any], Any] | None = None,
    ) -> str:
        """Create a secondary index on a field of a collection.

        Returns the index name.  Existing committed records are back-filled.
        """
        index_name = self._build_index(model, collection, field, kind, extractor)
        self.wal.append(
            {"type": "ddl", "op": "create_index", "model": model,
             "collection": collection, "field": field, "kind": kind}
        )
        return index_name

    def _build_index(
        self,
        model: Model,
        collection: str,
        field: str,
        kind: str = "hash",
        extractor: Callable[[Any], Any] | None = None,
    ) -> str:
        """Register + back-fill an index without logging DDL.

        DDL replay (:meth:`_replay_ddl`) must come through here, not
        :meth:`create_index`: replaying a logged record may never append
        a fresh one, or recovery/promotion would duplicate the DDL tail
        of the very log it is replaying.
        """
        if not self.store.has_collection(model, collection):
            raise NoSuchCollectionError(f"no {model.value} collection {collection!r}")
        index_name = f"{model.value}:{collection}:{field}:{kind}"
        extract = extractor if extractor is not None else field_extractor(field)
        if kind == "hash":
            index: Any = HashIndex(index_name, extract)
        elif kind == "sorted":
            index = SortedIndex(index_name, extract)
        elif kind == "btree":
            index = BTreeIndex(index_name, extract)
        else:
            raise EngineError(f"unknown index kind {kind!r}")
        bucket = self._indexes.setdefault((model, collection), {})
        if index_name in bucket:
            raise DuplicateCollectionError(f"index {index_name!r} exists")
        # Back-fill from the latest committed state.
        for raw_key, chain in self.store.collection(model, collection).items():
            latest = chain.latest()
            if latest is not None and latest.value is not None:
                index.on_write(
                    RecordKey(model, collection, raw_key), None, latest.value
                )
        bucket[index_name] = index
        self.catalog_epoch += 1
        return index_name

    def index(self, model: Model, collection: str, field: str, kind: str = "hash"):
        """Look up an index object, or None if absent."""
        bucket = self._indexes.get((model, collection), {})
        return bucket.get(f"{model.value}:{collection}:{field}:{kind}")

    def list_collections(self) -> dict[str, list[str]]:
        """Collection names per model family (for tooling and reports)."""
        return {
            "tables": sorted(self._table_schemas),
            "collections": sorted(self.store.collection_names(Model.DOCUMENT)),
            "xml_collections": sorted(self.store.collection_names(Model.XML)),
            "kv_namespaces": sorted(self.store.collection_names(Model.KEY_VALUE)),
            "graphs": sorted(self._graphs),
        }

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def begin(
        self, isolation: IsolationLevel = IsolationLevel.SNAPSHOT
    ) -> "Session":
        """Begin an explicit transaction; caller commits or aborts."""
        return Session(self, self.manager.begin(isolation))

    @contextlib.contextmanager
    def transaction(
        self, isolation: IsolationLevel = IsolationLevel.SNAPSHOT
    ) -> Iterator["Session"]:
        """Context manager: commit on success, abort on exception."""
        session = self.begin(isolation)
        try:
            yield session
        except BaseException:
            if session.txn.state.value == "active":
                session.abort()
            raise
        else:
            if session.txn.state.value == "active":
                session.commit()

    # ------------------------------------------------------------------
    # Maintenance and fault injection
    # ------------------------------------------------------------------

    def vacuum(self) -> int:
        """Garbage-collect record versions hidden from all snapshots."""
        return self.manager.vacuum()

    def checkpoint(self) -> None:
        """Write a checkpoint record (call only with no active txns)."""
        if self.manager.active or self.manager.prepared:
            raise TransactionError("checkpoint requires a quiescent database")
        self.wal.log_checkpoint(self.manager.current_ts)

    def crash(self) -> "MultiModelDatabase":
        """Simulate a crash: lose unsynced WAL tail, recover a fresh instance.

        Returns the recovered database; the original instance must not be
        used afterwards.
        """
        self.wal.crash()
        return MultiModelDatabase.recover(self.wal)

    @classmethod
    def recover(cls, wal: WriteAheadLog) -> "MultiModelDatabase":
        """Rebuild a database from a WAL: replay DDL, then committed writes.

        Checksums are verified first: a torn or bit-flipped record (and
        everything after it) is cut before replay, so corruption bounds
        loss to the damaged suffix instead of deserialising garbage.
        """
        wal.truncate_corrupt()
        db = cls.__new__(cls)
        db.name = "recovered"
        db.store = Store()
        fresh_wal = WriteAheadLog(sync_every_append=wal.sync_every_append)
        fresh_wal.tag = wal.tag
        # Corruption counters survive recovery: the fresh WAL is the same
        # logical log, and obs collectors re-read them after rebuild.
        fresh_wal.corrupt_records_detected = wal.corrupt_records_detected
        fresh_wal.corrupt_records_dropped = wal.corrupt_records_dropped
        db.wal = fresh_wal
        db.manager = TransactionManager(db.store, fresh_wal)
        db._table_schemas = {}
        db._graphs = {}
        db._next_edge_id = 1
        db._indexes = {}
        # Fresh planning epoch: replayed create_index DDL bumps it just
        # like live DDL (recovery crashed on the += before this existed).
        db.catalog_epoch = 0
        db.store.on_apply.append(db._maintain_indexes)
        db.store.on_apply.append(db._maintain_adjacency)
        max_ts = 0
        for rec in wal.records():
            if rec["type"] == "ddl":
                db._replay_ddl(rec)
        # Collapse the committed write history to one value per record
        # (in commit order) so the state can be re-logged compactly.
        final_state: dict[RecordKey, Any] = {}
        for ts, key, value in wal.replay():
            db.store.apply_committed_write(ts, key, value, txn_id=0)
            final_state[key] = value
            max_ts = max(max_ts, ts)
            if key.model is Model.GRAPH_EDGE and isinstance(key.key, int):
                db._next_edge_id = max(db._next_edge_id, key.key + 1)
        db.manager.current_ts = max_ts
        # Re-log structure and final state into the fresh WAL so a second
        # crash also recovers (a compaction, effectively).
        for rec in wal.records():
            if rec["type"] == "ddl":
                fresh_wal.append(dict(rec))
        if final_state:
            for key, value in final_state.items():
                fresh_wal.log_write(0, key, value)
            fresh_wal.log_commit(0, max_ts)
        return db

    def _replay_ddl(self, rec: dict[str, Any]) -> None:
        op = rec["op"]
        if op == "create_table":
            self.store.register_collection(Model.RELATIONAL, rec["schema"].name)
            self._table_schemas[rec["schema"].name] = rec["schema"]
        elif op == "set_table_schema":
            self._table_schemas[rec["schema"].name] = rec["schema"]
        elif op == "create_collection":
            self.store.register_collection(Model.DOCUMENT, rec["name"])
        elif op == "create_xml_collection":
            self.store.register_collection(Model.XML, rec["name"])
        elif op == "create_kv_namespace":
            self.store.register_collection(Model.KEY_VALUE, rec["name"])
        elif op == "create_graph":
            self.store.register_collection(Model.GRAPH_VERTEX, rec["name"])
            self.store.register_collection(Model.GRAPH_EDGE, rec["name"])
            self._graphs[rec["name"]] = _GraphMeta()
        elif op == "create_index":
            self._build_index(
                rec["model"], rec["collection"], rec["field"], rec["kind"]
            )
        else:
            raise EngineError(f"unknown DDL op {op!r} in WAL")

    # ------------------------------------------------------------------
    # Apply-path hooks
    # ------------------------------------------------------------------

    def _maintain_indexes(self, key: RecordKey, old_value: Any, new_value: Any) -> None:
        bucket = self._indexes.get((key.model, key.collection))
        if not bucket:
            return
        for index in bucket.values():
            index.on_write(key, old_value, new_value)

    def _maintain_adjacency(self, key: RecordKey, old_value: Any, new_value: Any) -> None:
        if key.model is not Model.GRAPH_EDGE:
            return
        meta = self._graphs.get(key.collection)
        if meta is None:
            return
        if old_value is not None:
            meta.out_edges.get(old_value["src"], set()).discard(key.key)
            meta.in_edges.get(old_value["dst"], set()).discard(key.key)
        if new_value is not None:
            meta.out_edges.setdefault(new_value["src"], set()).add(key.key)
            meta.in_edges.setdefault(new_value["dst"], set()).add(key.key)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def count_live(self, model: Model, name: str, ts: int | None = None) -> int:
        """Live record count for one collection at snapshot *ts*
        (default: latest committed).

        Shared by :meth:`stats` and the cluster layer's per-shard /
        aggregated statistics (broadcast collections must count one
        replica, which family-level sums cannot express).  Callers
        counting several collections should capture one timestamp and
        pass it, so the counts describe a single snapshot.
        """
        coll = self.store.collection(model, name)
        if ts is None:
            ts = self.manager.current_ts
        n = 0
        for chain in coll.values():
            v = chain.visible_at(ts)
            if v is not None and v.value is not None:
                n += 1
        return n

    def stats(self) -> dict[str, int]:
        """Latest-committed record counts per model family (one snapshot)."""
        counts = {
            "tables": 0, "rows": 0, "collections": 0, "documents": 0,
            "xml_collections": 0, "xml_documents": 0, "kv_namespaces": 0,
            "kv_pairs": 0, "graphs": len(self._graphs), "vertices": 0, "edges": 0,
        }
        ts = self.manager.current_ts
        for name in self._table_schemas:
            counts["tables"] += 1
            counts["rows"] += self.count_live(Model.RELATIONAL, name, ts)
        for name in self.store.collection_names(Model.DOCUMENT):
            counts["collections"] += 1
            counts["documents"] += self.count_live(Model.DOCUMENT, name, ts)
        for name in self.store.collection_names(Model.XML):
            counts["xml_collections"] += 1
            counts["xml_documents"] += self.count_live(Model.XML, name, ts)
        for name in self.store.collection_names(Model.KEY_VALUE):
            counts["kv_namespaces"] += 1
            counts["kv_pairs"] += self.count_live(Model.KEY_VALUE, name, ts)
        for name in self._graphs:
            counts["vertices"] += self.count_live(Model.GRAPH_VERTEX, name, ts)
            counts["edges"] += self.count_live(Model.GRAPH_EDGE, name, ts)
        return counts

    def allocate_edge_id(self) -> int:
        edge_id = self._next_edge_id
        self._next_edge_id += 1
        return edge_id


class Session:
    """The per-transaction multi-model API surface.

    Thin, validated wrappers that translate model operations into record
    reads/writes on the underlying :class:`Transaction`.
    """

    def __init__(self, db: MultiModelDatabase, txn: Transaction) -> None:
        self.db = db
        self.txn = txn

    # -- lifecycle ---------------------------------------------------------

    def commit(self) -> int:
        return self.txn.commit()

    def abort(self) -> None:
        self.txn.abort()

    # -- two-phase commit (participant surface for the cluster layer) -------

    def prepare(self, global_id: int) -> None:
        """Vote on global txn *global_id*: durable writes, pinned locks."""
        self.txn.manager.prepare(self.txn, global_id)

    def commit_prepared(self) -> int:
        return self.txn.manager.commit_prepared(self.txn)

    def abort_prepared(self) -> None:
        self.txn.manager.abort_prepared(self.txn)

    def reserve_id(self, collection: str, doc_id: Any) -> None:
        """Stake a transactional claim on *doc_id* of *collection*.

        The reservation is an ordinary buffered write (value ``True``,
        tombstoned by :meth:`release_id`) on a :attr:`Model.SYSTEM`
        record, so it rides the full commit/prepare/recovery machinery:
        two transactions claiming the same id are a write-write conflict
        and first-committer-wins (or the prepare-time validation) aborts
        one.  The cluster layer reserves each inserted ``_id`` on its
        hash-owner shard to make cluster-wide ``_id`` uniqueness atomic.
        """
        self.txn.write(RecordKey(Model.SYSTEM, collection, doc_id), True)

    def release_id(self, collection: str, doc_id: Any) -> None:
        self.txn.delete(RecordKey(Model.SYSTEM, collection, doc_id))

    # -- relational ----------------------------------------------------------

    def sql_insert(self, table: str, values: dict[str, Any]) -> tuple[Any, ...]:
        schema = self.db.table_schema(table)
        row = schema.validate_row(dict(values))
        pk = schema.primary_key_of(row)
        key = RecordKey(Model.RELATIONAL, table, pk)
        self.txn.declare_insert(Model.RELATIONAL, table)
        if self.txn.read(key) is not None:
            raise ConstraintError(f"duplicate primary key {pk!r} in {table!r}")
        self.txn.write(key, row)
        return pk

    def sql_get(self, table: str, pk: tuple[Any, ...]) -> dict[str, Any] | None:
        self.db.table_schema(table)  # existence check
        return self.txn.read(RecordKey(Model.RELATIONAL, table, tuple(pk)))

    def sql_update(
        self, table: str, pk: tuple[Any, ...], changes: dict[str, Any]
    ) -> dict[str, Any]:
        schema = self.db.table_schema(table)
        key = RecordKey(Model.RELATIONAL, table, tuple(pk))
        row = self.txn.read(key)
        if row is None:
            raise ConstraintError(f"no row {pk!r} in {table!r}")
        row.update(changes)
        row = schema.validate_row(row)
        if schema.primary_key_of(row) != tuple(pk):
            raise ConstraintError("primary-key updates are not supported")
        self.txn.write(key, row)
        return row

    def sql_delete(self, table: str, pk: tuple[Any, ...]) -> bool:
        self.db.table_schema(table)
        key = RecordKey(Model.RELATIONAL, table, tuple(pk))
        self.txn.declare_insert(Model.RELATIONAL, table)
        if self.txn.read(key) is None:
            return False
        self.txn.delete(key)
        return True

    def sql_scan(
        self, table: str, predicate: Predicate | None = None
    ) -> Iterator[dict[str, Any]]:
        self.db.table_schema(table)
        for _, row in self.txn.scan(Model.RELATIONAL, table):
            if predicate is None or predicate.matches(row):
                yield row

    def sql_find(self, table: str, field: str, value: Any) -> list[dict[str, Any]]:
        """Equality lookup, via a hash index when one exists."""
        return self._indexed_find(Model.RELATIONAL, table, field, value)

    # -- documents ------------------------------------------------------------

    def doc_insert(self, collection: str, doc: dict[str, Any]) -> str | int:
        self._require(Model.DOCUMENT, collection)
        if "_id" not in doc:
            raise DocumentError("document requires an '_id' field")
        validate_json_value(doc)
        key = RecordKey(Model.DOCUMENT, collection, doc["_id"])
        self.txn.declare_insert(Model.DOCUMENT, collection)
        if self.txn.read(key) is not None:
            raise DocumentError(f"duplicate _id {doc['_id']!r} in {collection!r}")
        self.txn.write(key, dict(doc))
        return doc["_id"]

    def doc_get(self, collection: str, doc_id: str | int) -> dict[str, Any] | None:
        self._require(Model.DOCUMENT, collection)
        return self.txn.read(RecordKey(Model.DOCUMENT, collection, doc_id))

    def doc_update(
        self, collection: str, doc_id: str | int, changes: dict[str, Any]
    ) -> dict[str, Any]:
        self._require(Model.DOCUMENT, collection)
        key = RecordKey(Model.DOCUMENT, collection, doc_id)
        doc = self.txn.read(key)
        if doc is None:
            raise DocumentError(f"no document {doc_id!r} in {collection!r}")
        if changes.get("_id", doc_id) != doc_id:
            raise DocumentError("cannot change a document's _id")
        doc.update(changes)
        validate_json_value(doc)
        self.txn.write(key, doc)
        return doc

    def doc_delete(self, collection: str, doc_id: str | int) -> bool:
        self._require(Model.DOCUMENT, collection)
        key = RecordKey(Model.DOCUMENT, collection, doc_id)
        self.txn.declare_insert(Model.DOCUMENT, collection)
        if self.txn.read(key) is None:
            return False
        self.txn.delete(key)
        return True

    def doc_scan(self, collection: str) -> Iterator[dict[str, Any]]:
        self._require(Model.DOCUMENT, collection)
        for _, doc in self.txn.scan(Model.DOCUMENT, collection):
            yield doc

    def doc_find(self, collection: str, field: str, value: Any) -> list[dict[str, Any]]:
        """Equality lookup, via a hash index when one exists."""
        return self._indexed_find(Model.DOCUMENT, collection, field, value)

    # -- XML --------------------------------------------------------------------

    def xml_put(self, collection: str, doc_id: str | int, tree: XmlElement) -> None:
        self._require(Model.XML, collection)
        if not isinstance(tree, XmlElement):
            raise EngineError("xml_put requires an XmlElement root")
        self.txn.declare_insert(Model.XML, collection)
        self.txn.write(RecordKey(Model.XML, collection, doc_id), tree)

    def xml_get(self, collection: str, doc_id: str | int) -> XmlElement | None:
        self._require(Model.XML, collection)
        return self.txn.read(RecordKey(Model.XML, collection, doc_id))

    def xml_delete(self, collection: str, doc_id: str | int) -> bool:
        self._require(Model.XML, collection)
        key = RecordKey(Model.XML, collection, doc_id)
        self.txn.declare_insert(Model.XML, collection)
        if self.txn.read(key) is None:
            return False
        self.txn.delete(key)
        return True

    def xml_scan(self, collection: str) -> Iterator[tuple[str | int, XmlElement]]:
        self._require(Model.XML, collection)
        yield from self.txn.scan(Model.XML, collection)

    def xml_xpath(self, collection: str, doc_id: str | int, path: str) -> list[Any]:
        """Evaluate an XPath against one stored XML document."""
        tree = self.xml_get(collection, doc_id)
        if tree is None:
            return []
        return XPath(path).find(tree)

    # -- key-value -----------------------------------------------------------------

    def kv_put(self, namespace: str, key: str, value: Any) -> None:
        self._require(Model.KEY_VALUE, namespace)
        if not isinstance(key, str) or not key:
            raise EngineError("kv keys must be non-empty strings")
        validate_json_value(value)
        self.txn.declare_insert(Model.KEY_VALUE, namespace)
        self.txn.write(RecordKey(Model.KEY_VALUE, namespace, key), value)

    def kv_get(self, namespace: str, key: str, default: Any = None) -> Any:
        self._require(Model.KEY_VALUE, namespace)
        value = self.txn.read(RecordKey(Model.KEY_VALUE, namespace, key))
        return value if value is not None else default

    def kv_delete(self, namespace: str, key: str) -> bool:
        self._require(Model.KEY_VALUE, namespace)
        record_key = RecordKey(Model.KEY_VALUE, namespace, key)
        self.txn.declare_insert(Model.KEY_VALUE, namespace)
        if self.txn.read(record_key) is None:
            return False
        self.txn.delete(record_key)
        return True

    def kv_scan_prefix(self, namespace: str, prefix: str) -> list[tuple[str, Any]]:
        self._require(Model.KEY_VALUE, namespace)
        out = [
            (k, v)
            for k, v in self.txn.scan(Model.KEY_VALUE, namespace)
            if isinstance(k, str) and k.startswith(prefix)
        ]
        out.sort(key=lambda pair: pair[0])
        return out

    def kv_scan_range(
        self, namespace: str, low: str, high: str, limit: int | None = None
    ) -> list[tuple[str, Any]]:
        """Ordered pairs with ``low <= key < high``, optionally limited."""
        self._require(Model.KEY_VALUE, namespace)
        if low > high:
            raise EngineError(f"bad kv range [{low!r}, {high!r})")
        out = [
            (k, v)
            for k, v in self.txn.scan(Model.KEY_VALUE, namespace)
            if isinstance(k, str) and low <= k < high
        ]
        out.sort(key=lambda pair: pair[0])
        return out if limit is None else out[:limit]

    # -- graph ------------------------------------------------------------------------

    def graph_add_vertex(
        self, graph: str, vertex_id: Any, label: str, **properties: Any
    ) -> Vertex:
        self._require_graph(graph)
        key = RecordKey(Model.GRAPH_VERTEX, graph, vertex_id)
        self.txn.declare_insert(Model.GRAPH_VERTEX, graph)
        if self.txn.read(key) is not None:
            raise GraphError(f"vertex {vertex_id!r} already exists in {graph!r}")
        self.txn.write(key, {"label": label, "props": dict(properties)})
        return Vertex(vertex_id, label, dict(properties))

    def graph_vertex(self, graph: str, vertex_id: Any) -> Vertex | None:
        self._require_graph(graph)
        value = self.txn.read(RecordKey(Model.GRAPH_VERTEX, graph, vertex_id))
        if value is None:
            return None
        return Vertex(vertex_id, value["label"], value["props"])

    def graph_update_vertex(self, graph: str, vertex_id: Any, **changes: Any) -> Vertex:
        self._require_graph(graph)
        key = RecordKey(Model.GRAPH_VERTEX, graph, vertex_id)
        value = self.txn.read(key)
        if value is None:
            raise GraphError(f"no vertex {vertex_id!r} in {graph!r}")
        value["props"].update(changes)
        self.txn.write(key, value)
        return Vertex(vertex_id, value["label"], value["props"])

    def graph_add_edge(
        self, graph: str, src: Any, dst: Any, label: str, **properties: Any
    ) -> Edge:
        self._require_graph(graph)
        if self.graph_vertex(graph, src) is None:
            raise GraphError(f"edge source {src!r} does not exist in {graph!r}")
        if self.graph_vertex(graph, dst) is None:
            raise GraphError(f"edge target {dst!r} does not exist in {graph!r}")
        edge_id = self.db.allocate_edge_id()
        self.txn.declare_insert(Model.GRAPH_EDGE, graph)
        self.txn.write(
            RecordKey(Model.GRAPH_EDGE, graph, edge_id),
            {"src": src, "dst": dst, "label": label, "props": dict(properties)},
        )
        return Edge(edge_id, src, dst, label, dict(properties))

    def graph_remove_edge(self, graph: str, edge_id: int) -> bool:
        self._require_graph(graph)
        key = RecordKey(Model.GRAPH_EDGE, graph, edge_id)
        self.txn.declare_insert(Model.GRAPH_EDGE, graph)
        if self.txn.read(key) is None:
            return False
        self.txn.delete(key)
        return True

    def graph_out_edges(self, graph: str, vertex_id: Any, label: str | None = None) -> list[Edge]:
        return self._adjacent(graph, vertex_id, label, direction="out")

    def graph_in_edges(self, graph: str, vertex_id: Any, label: str | None = None) -> list[Edge]:
        return self._adjacent(graph, vertex_id, label, direction="in")

    def graph_out_neighbors(
        self, graph: str, vertex_id: Any, label: str | None = None
    ) -> list[Vertex]:
        out = []
        for edge in self.graph_out_edges(graph, vertex_id, label):
            v = self.graph_vertex(graph, edge.dst)
            if v is not None:
                out.append(v)
        return out

    def graph_in_neighbors(
        self, graph: str, vertex_id: Any, label: str | None = None
    ) -> list[Vertex]:
        out = []
        for edge in self.graph_in_edges(graph, vertex_id, label):
            v = self.graph_vertex(graph, edge.src)
            if v is not None:
                out.append(v)
        return out

    def graph_traverse(
        self,
        graph: str,
        start: Any,
        min_depth: int,
        max_depth: int,
        edge_label: str | None = None,
    ) -> list[Any]:
        """BFS vertex ids whose depth from *start* is in [min_depth, max_depth].

        This is the engine-side primitive behind MMQL's TRAVERSE clause;
        the BFS itself is shared with the cluster layer's cross-shard
        traversal (:func:`repro.models.graph.traversal.bfs_depth_range`).
        """
        if min_depth < 0 or max_depth < min_depth:
            raise GraphError(f"bad depth range {min_depth}..{max_depth}")
        if self.graph_vertex(graph, start) is None:
            raise GraphError(f"no vertex {start!r} in {graph!r}")
        return bfs_depth_range(
            start, min_depth, max_depth,
            lambda vid: self.graph_out_edges(graph, vid, edge_label),
        )

    def graph_vertices(self, graph: str, label: str | None = None) -> Iterator[Vertex]:
        self._require_graph(graph)
        for vid, value in self.txn.scan(Model.GRAPH_VERTEX, graph):
            if label is None or value["label"] == label:
                yield Vertex(vid, value["label"], value["props"])

    def graph_edges(self, graph: str, label: str | None = None) -> Iterator[Edge]:
        self._require_graph(graph)
        for eid, value in self.txn.scan(Model.GRAPH_EDGE, graph):
            if label is None or value["label"] == label:
                yield Edge(eid, value["src"], value["dst"], value["label"], value["props"])

    # -- internals ------------------------------------------------------------------------

    def _adjacent(
        self, graph: str, vertex_id: Any, label: str | None, direction: str
    ) -> list[Edge]:
        """Adjacency lookup: committed index + own write-set overlay."""
        meta = self._require_graph(graph)
        index = meta.out_edges if direction == "out" else meta.in_edges
        candidate_ids = set(index.get(vertex_id, ()))
        # Overlay: edges this transaction added or deleted.
        for record_key, value in self.txn.write_set.items():
            if record_key.model is not Model.GRAPH_EDGE or record_key.collection != graph:
                continue
            if value is None:
                candidate_ids.discard(record_key.key)
            else:
                endpoint = value["src"] if direction == "out" else value["dst"]
                if endpoint == vertex_id:
                    candidate_ids.add(record_key.key)
        edges: list[Edge] = []
        for edge_id in sorted(candidate_ids, key=lambda e: (str(type(e)), str(e))):
            value = self.txn.read(RecordKey(Model.GRAPH_EDGE, graph, edge_id))
            if value is None:
                continue  # not visible at this snapshot
            endpoint = value["src"] if direction == "out" else value["dst"]
            if endpoint != vertex_id:
                continue
            if label is not None and value["label"] != label:
                continue
            edges.append(
                Edge(edge_id, value["src"], value["dst"], value["label"], value["props"])
            )
        return edges

    def _indexed_find(
        self, model: Model, collection: str, field: str, value: Any
    ) -> list[dict[str, Any]]:
        """Equality lookup using a hash index when available, else a scan.

        Index lookups reflect the latest committed state; each candidate
        is re-read through the transaction so visibility and own-write
        overlays still apply.
        """
        self._require(model, collection)
        index = self.db.index(model, collection, field)
        results: list[dict[str, Any]] = []
        if index is not None:
            seen_keys: set[Any] = set()
            for record_key in index.lookup(value):
                seen_keys.add(record_key.key)
                row = self.txn.read(record_key)
                if row is not None and extract_path(row, field) == value:
                    results.append(row)
            # Own uncommitted writes are not in the committed index.
            for record_key, buffered in self.txn.write_set.items():
                if (
                    record_key.model is model
                    and record_key.collection == collection
                    and record_key.key not in seen_keys
                    and buffered is not None
                    and extract_path(buffered, field) == value
                ):
                    results.append(copy_value(buffered))
            return results
        for _, row in self.txn.scan(model, collection):
            if isinstance(row, dict) and extract_path(row, field) == value:
                results.append(row)
        return results

    def _require(self, model: Model, collection: str) -> None:
        if not self.store_has(model, collection):
            raise NoSuchCollectionError(
                f"no {model.value} collection {collection!r}"
            )

    def store_has(self, model: Model, collection: str) -> bool:
        return self.db.store.has_collection(model, collection)

    def _require_graph(self, graph: str) -> _GraphMeta:
        meta = self.db._graphs.get(graph)
        if meta is None:
            raise NoSuchCollectionError(f"no graph {graph!r}")
        return meta
