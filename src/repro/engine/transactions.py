"""Transactions: isolation levels, MVCC snapshots, commit protocol.

Isolation ladder (what E3 sweeps, weakest to strongest):

- ``READ_UNCOMMITTED`` — reads may see other *active* transactions'
  buffered writes (dirty reads possible).
- ``READ_COMMITTED`` — every read sees the latest committed version at
  the moment of the read (no dirty reads; non-repeatable reads, fractured
  multi-model reads and lost updates possible).
- ``SNAPSHOT`` — all reads see the database as of the transaction's start
  timestamp; commits use first-committer-wins on the write set (no lost
  updates; write skew possible).
- ``SERIALIZABLE`` — snapshot reads *plus* strict two-phase locking:
  shared locks on reads (collection-level for scans, record-level for
  point reads), exclusive locks on writes, all held to commit.  Lock
  conflicts raise :class:`repro.engine.locks.WouldBlock` for the schedule
  executor; deadlocks abort the requester.

Writes are always buffered in the transaction's private write set and
applied atomically at commit, so no isolation level ever exposes *partial*
transactions to `READ_COMMITTED` and above — which is exactly the
multi-model atomicity property the benchmark probes.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Iterator

from repro.engine.locks import LockManager, LockMode, WouldBlock
from repro.engine.records import Model, RecordKey, Version, VersionChain, copy_value
from repro.engine.wal import WriteAheadLog
from repro.errors import (
    DeadlockError,
    SerializationConflict,
    SimulatedCrash,
    TransactionError,
)


class IsolationLevel(enum.Enum):
    READ_UNCOMMITTED = "read_uncommitted"
    READ_COMMITTED = "read_committed"
    SNAPSHOT = "snapshot"
    SERIALIZABLE = "serializable"


class TxnState(enum.Enum):
    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Store:
    """The committed record store: collections of version chains.

    One instance per database; the transaction manager is its only
    writer (via :meth:`apply_committed_write`).
    """

    def __init__(self) -> None:
        self._collections: dict[tuple[Model, str], dict[Any, VersionChain]] = {}
        # apply-time hooks installed by the database facade (index and
        # adjacency maintenance): fn(record_key, old_value, new_value)
        self.on_apply: list[Callable[[RecordKey, Any, Any], None]] = []

    def register_collection(self, model: Model, name: str) -> None:
        self._collections.setdefault((model, name), {})

    def drop_collection(self, model: Model, name: str) -> None:
        self._collections.pop((model, name), None)

    def has_collection(self, model: Model, name: str) -> bool:
        return (model, name) in self._collections

    def collection(self, model: Model, name: str) -> dict[Any, VersionChain]:
        return self._collections[(model, name)]

    def collection_names(self, model: Model) -> list[str]:
        return [n for (m, n) in self._collections if m is model]

    def chain(self, key: RecordKey) -> VersionChain | None:
        coll = self._collections.get((key.model, key.collection))
        if coll is None:
            return None
        return coll.get(key.key)

    def apply_committed_write(self, ts: int, key: RecordKey, value: Any, txn_id: int) -> None:
        """Append one committed version and fire maintenance hooks."""
        coll = self._collections.setdefault((key.model, key.collection), {})
        chain = coll.get(key.key)
        old_value = None
        if chain is None:
            chain = VersionChain()
            coll[key.key] = chain
        else:
            latest = chain.latest()
            old_value = latest.value if latest is not None else None
        chain.append(Version(ts, copy_value(value) if value is not None else None, txn_id))
        for hook in self.on_apply:
            hook(key, old_value, value)

    def vacuum(self, keep_ts: int) -> int:
        """Prune versions invisible to every snapshot >= keep_ts."""
        pruned = 0
        for coll in self._collections.values():
            dead_keys = []
            for key, chain in coll.items():
                pruned += chain.prune_before(keep_ts)
                if chain.is_dead():
                    dead_keys.append(key)
            for key in dead_keys:
                del coll[key]
        return pruned


def keyspace_resource(model: Model, collection: str) -> tuple[str, str, str]:
    """The coarse lock resource guarding a collection's key population.

    Serializable scans take it shared; serializable inserts/deletes take
    it exclusive — a collection-granularity predicate lock that rules out
    phantoms at the cost of writer concurrency (documented trade-off).
    """
    return ("keyspace", model.value, collection)


class Transaction:
    """One multi-model transaction.  Created via ``TransactionManager.begin``."""

    def __init__(
        self,
        manager: "TransactionManager",
        txn_id: int,
        isolation: IsolationLevel,
        start_ts: int,
    ) -> None:
        self.manager = manager
        self.txn_id = txn_id
        self.isolation = isolation
        self.start_ts = start_ts
        self.state = TxnState.ACTIVE
        # Ordered write buffer: RecordKey -> new value (None = delete).
        self.write_set: dict[RecordKey, Any] = {}
        self.read_set: set[RecordKey] = set()
        self.commit_ts: int | None = None
        # Global (cross-shard) transaction id, set when this txn becomes
        # a 2PC participant at prepare time.
        self.global_id: int | None = None

    # -- core record operations --------------------------------------------

    def read(self, key: RecordKey) -> Any:
        """Read one record under this transaction's isolation level."""
        self._check_active()
        if key in self.write_set:
            value = self.write_set[key]
            return copy_value(value) if value is not None else None
        if self.isolation is IsolationLevel.SERIALIZABLE:
            self.manager.locks.acquire(self.txn_id, key, LockMode.SHARED)
        self.read_set.add(key)
        if self.isolation is IsolationLevel.READ_UNCOMMITTED:
            dirty = self.manager.latest_dirty_write(key, exclude=self.txn_id)
            if dirty is not _MISSING:
                return copy_value(dirty) if dirty is not None else None
        chain = self.manager.store.chain(key)
        if chain is None:
            return None
        version = chain.visible_at(self._read_ts())
        if version is None or version.value is None:
            return None
        return copy_value(version.value)

    def write(self, key: RecordKey, value: Any) -> None:
        """Buffer a write (value None = delete) in the private write set."""
        self._check_active()
        if self.isolation is IsolationLevel.SERIALIZABLE:
            self.manager.locks.acquire(self.txn_id, key, LockMode.EXCLUSIVE)
        self.write_set[key] = copy_value(value) if value is not None else None

    def delete(self, key: RecordKey) -> None:
        self.write(key, None)

    def scan(self, model: Model, collection: str) -> Iterator[tuple[Any, Any]]:
        """Yield (key, value) for every record visible in a collection.

        Own buffered writes overlay the committed state: additions appear,
        deletions disappear, updates show the new value.
        """
        self._check_active()
        if self.isolation is IsolationLevel.SERIALIZABLE:
            self.manager.locks.acquire(
                self.txn_id, keyspace_resource(model, collection), LockMode.SHARED
            )
        read_ts = self._read_ts()
        coll = (
            self.manager.store.collection(model, collection)
            if self.manager.store.has_collection(model, collection)
            else {}
        )
        emitted: set[Any] = set()
        for raw_key, chain in list(coll.items()):
            record_key = RecordKey(model, collection, raw_key)
            if record_key in self.write_set:
                continue  # handled by the overlay pass below
            if self.isolation is IsolationLevel.READ_UNCOMMITTED:
                dirty = self.manager.latest_dirty_write(record_key, exclude=self.txn_id)
                if dirty is not _MISSING:
                    if dirty is not None:
                        emitted.add(raw_key)
                        yield raw_key, copy_value(dirty)
                    continue
            version = chain.visible_at(read_ts)
            if version is not None and version.value is not None:
                emitted.add(raw_key)
                yield raw_key, copy_value(version.value)
        if self.isolation is IsolationLevel.READ_UNCOMMITTED:
            # Dirty *inserts* by other active transactions have no chain
            # yet, so the committed pass above cannot surface them.
            for record_key, value in self.manager.dirty_inserts(
                model, collection, exclude=self.txn_id
            ):
                if (
                    record_key.key not in emitted
                    and record_key not in self.write_set
                    and record_key.key not in coll
                ):
                    emitted.add(record_key.key)
                    yield record_key.key, copy_value(value)
        for record_key, value in list(self.write_set.items()):
            if record_key.model is model and record_key.collection == collection:
                if value is not None:
                    yield record_key.key, copy_value(value)

    def declare_insert(self, model: Model, collection: str) -> None:
        """Serializable phantom protection for an insert/delete."""
        if self.isolation is IsolationLevel.SERIALIZABLE:
            self.manager.locks.acquire(
                self.txn_id, keyspace_resource(model, collection), LockMode.EXCLUSIVE
            )

    # -- lifecycle -----------------------------------------------------------

    def commit(self) -> int:
        """Commit; returns the commit timestamp."""
        self._check_active()
        return self.manager.commit(self)

    def abort(self) -> None:
        self._check_active()
        self.manager.abort(self)

    @property
    def is_read_only(self) -> bool:
        return not self.write_set

    def _read_ts(self) -> int:
        """The snapshot timestamp reads use at this isolation level.

        SNAPSHOT pins the start timestamp.  SERIALIZABLE reads the latest
        committed state: strict 2PL already guarantees that state cannot
        change under the transaction's locks, and a blocked-then-granted
        reader must observe the commit it waited for.
        """
        if self.isolation is IsolationLevel.SNAPSHOT:
            return self.start_ts
        return self.manager.current_ts

    def _check_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}"
            )


_MISSING = object()


class TransactionManager:
    """Begins, commits, and aborts transactions against one Store."""

    def __init__(self, store: Store, wal: WriteAheadLog) -> None:
        self.store = store
        self.wal = wal
        self.locks = LockManager()
        self.current_ts = 0
        self._next_txn_id = 1
        self.active: dict[int, Transaction] = {}
        # 2PC participants that voted YES and await the coordinator's
        # verdict.  Their write locks stay pinned until the decision.
        self.prepared: dict[int, Transaction] = {}
        self.commits = 0
        self.aborts = 0
        self.conflicts = 0
        self.prepares = 0
        # Fault injection (E6): crash after the write records are durable
        # but before the commit record — the worst possible moment.
        self.crash_before_next_commit_record = False

    # -- lifecycle -----------------------------------------------------------

    def begin(
        self, isolation: IsolationLevel = IsolationLevel.SNAPSHOT
    ) -> Transaction:
        txn = Transaction(self, self._next_txn_id, isolation, self.current_ts)
        self._next_txn_id += 1
        self.active[txn.txn_id] = txn
        self.wal.log_begin(txn.txn_id)
        return txn

    def commit(self, txn: Transaction) -> int:
        if txn.txn_id not in self.active:
            raise TransactionError(f"transaction {txn.txn_id} is not active")
        if txn.is_read_only:
            txn.state = TxnState.COMMITTED
            txn.commit_ts = self.current_ts
            self._finish(txn)
            return self.current_ts
        if txn.isolation in (IsolationLevel.SNAPSHOT, IsolationLevel.SERIALIZABLE):
            self._first_committer_wins_check(txn)
            self._prepared_overlap_check(txn)
        commit_ts = self.current_ts + 1
        for key, value in txn.write_set.items():
            self.wal.log_write(txn.txn_id, key, value)
        if self.crash_before_next_commit_record:
            self.crash_before_next_commit_record = False
            self._finish_crashed(txn)
            raise SimulatedCrash(
                f"txn {txn.txn_id}: crash injected before the commit record"
            )
        self.wal.log_commit(txn.txn_id, commit_ts)
        # The WAL record is durable; now apply to the in-memory store.
        self.current_ts = commit_ts
        for key, value in txn.write_set.items():
            self.store.apply_committed_write(commit_ts, key, value, txn.txn_id)
        txn.state = TxnState.COMMITTED
        txn.commit_ts = commit_ts
        self.commits += 1
        self._finish(txn)
        return commit_ts

    def abort(self, txn: Transaction) -> None:
        if txn.txn_id not in self.active:
            raise TransactionError(f"transaction {txn.txn_id} is not active")
        self.wal.log_abort(txn.txn_id)
        txn.state = TxnState.ABORTED
        self.aborts += 1
        self._finish(txn)

    # -- two-phase commit (participant side) ---------------------------------

    def prepare(self, txn: Transaction, global_id: int) -> None:
        """Phase one: validate, make the writes durable, vote YES.

        On success the transaction moves to PREPARED: its writes are in
        the WAL behind a prepare record, its write locks are pinned, and
        only :meth:`commit_prepared` / :meth:`abort_prepared` (the
        coordinator's verdict) can release it.  Any validation or lock
        failure aborts the transaction — a NO vote — and raises
        :class:`SerializationConflict`.
        """
        if txn.txn_id not in self.active:
            raise TransactionError(f"transaction {txn.txn_id} is not active")
        if txn.is_read_only:
            raise TransactionError(
                f"transaction {txn.txn_id} is read-only; nothing to prepare"
            )
        if txn.isolation in (IsolationLevel.SNAPSHOT, IsolationLevel.SERIALIZABLE):
            self._first_committer_wins_check(txn)
            self._prepared_overlap_check(txn)
        # Pin exclusive locks on the write set so serializable readers
        # and writers block on the in-doubt records until the decision.
        for key in txn.write_set:
            try:
                self.locks.acquire(txn.txn_id, key, LockMode.EXCLUSIVE)
            except (WouldBlock, DeadlockError) as exc:
                self.conflicts += 1
                self.abort(txn)
                raise SerializationConflict(
                    f"txn {txn.txn_id}: cannot pin {key} at prepare: {exc}"
                ) from exc
        for key, value in txn.write_set.items():
            self.wal.log_write(txn.txn_id, key, value)
        self.wal.log_prepare(txn.txn_id, global_id)
        txn.state = TxnState.PREPARED
        txn.global_id = global_id
        self.prepared[txn.txn_id] = txn
        del self.active[txn.txn_id]
        self.prepares += 1

    def commit_prepared(self, txn: Transaction) -> int:
        """Phase two, COMMIT verdict: log the decision, apply the writes."""
        if txn.txn_id not in self.prepared:
            raise TransactionError(f"transaction {txn.txn_id} is not prepared")
        commit_ts = self.current_ts + 1
        self.wal.log_decision(txn.txn_id, "commit", commit_ts, txn.global_id)
        self.current_ts = commit_ts
        for key, value in txn.write_set.items():
            self.store.apply_committed_write(commit_ts, key, value, txn.txn_id)
        txn.state = TxnState.COMMITTED
        txn.commit_ts = commit_ts
        self.commits += 1
        self._release_prepared(txn)
        return commit_ts

    def abort_prepared(self, txn: Transaction) -> None:
        """Phase two, ABORT verdict: the buffered writes never apply."""
        if txn.txn_id not in self.prepared:
            raise TransactionError(f"transaction {txn.txn_id} is not prepared")
        self.wal.log_decision(txn.txn_id, "abort", None, txn.global_id)
        txn.state = TxnState.ABORTED
        self.aborts += 1
        self._release_prepared(txn)

    def _release_prepared(self, txn: Transaction) -> None:
        self.locks.release_all(txn.txn_id)
        del self.prepared[txn.txn_id]

    def _prepared_overlap_check(self, txn: Transaction) -> None:
        """Conflict with an in-doubt write set: the requester loses.

        A prepared transaction's writes are not in the store yet, so
        first-committer-wins cannot see them; without this check a
        concurrent commit could slip a version under a pinned record and
        be silently overwritten when the verdict lands.
        """
        for other in self.prepared.values():
            clash = [key for key in txn.write_set if key in other.write_set]
            if clash:
                self.conflicts += 1
                self.abort(txn)
                raise SerializationConflict(
                    f"txn {txn.txn_id}: record {clash[0]} is pinned by "
                    f"prepared txn {other.txn_id} (global {other.global_id})"
                )

    def _finish(self, txn: Transaction) -> None:
        self.locks.release_all(txn.txn_id)
        del self.active[txn.txn_id]

    def _finish_crashed(self, txn: Transaction) -> None:
        """Tear down a transaction interrupted by an injected crash."""
        txn.state = TxnState.ABORTED
        self._finish(txn)

    def _first_committer_wins_check(self, txn: Transaction) -> None:
        """Abort if any written record changed since the snapshot."""
        for key in txn.write_set:
            chain = self.store.chain(key)
            if chain is not None and chain.latest_begin_ts() > txn.start_ts:
                self.conflicts += 1
                self.abort(txn)
                raise SerializationConflict(
                    f"txn {txn.txn_id}: record {key} was modified at "
                    f"ts {chain.latest_begin_ts()} after snapshot "
                    f"ts {txn.start_ts}"
                )

    # -- dirty-read support (READ_UNCOMMITTED) ----------------------------------

    def latest_dirty_write(self, key: RecordKey, exclude: int) -> Any:
        """The newest buffered write to *key* by another active txn.

        Returns the sentinel ``_MISSING`` when no active transaction has
        written the record.
        """
        latest: Any = _MISSING
        for txn_id in sorted(self.active):
            if txn_id == exclude:
                continue
            txn = self.active[txn_id]
            if key in txn.write_set:
                latest = txn.write_set[key]
        return latest

    def dirty_inserts(
        self, model: Model, collection: str, exclude: int
    ) -> list[tuple[RecordKey, Any]]:
        """Buffered non-delete writes to a collection by other active txns."""
        out: list[tuple[RecordKey, Any]] = []
        for txn_id in sorted(self.active):
            if txn_id == exclude:
                continue
            for key, value in self.active[txn_id].write_set.items():
                if key.model is model and key.collection == collection and value is not None:
                    out.append((key, value))
        return out

    # -- maintenance ----------------------------------------------------------

    def oldest_active_snapshot(self) -> int:
        """The smallest start_ts among active txns (current_ts if none)."""
        if not self.active:
            return self.current_ts
        return min(t.start_ts for t in self.active.values())

    def vacuum(self) -> int:
        """Prune versions no active snapshot can see."""
        return self.store.vacuum(self.oldest_active_snapshot())
