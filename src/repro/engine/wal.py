"""A redo-only write-ahead log with crash simulation and recovery.

The log is a list of records; ``sync()`` advances the *durable
watermark*.  :meth:`WriteAheadLog.crash` discards everything after the
watermark — exactly what a power failure does to an OS page cache — and
recovery replays only transactions whose COMMIT record survived.  The
atomicity experiment (E6) crashes the engine mid-commit and checks that
multi-model invariants still hold after replay; the polyglot baseline,
which has one log per store and therefore several commit points, fails
the same check.

Record shapes (plain dicts so they serialise trivially):

- ``{"type": "begin", "txn": id}``
- ``{"type": "write", "txn": id, "key": RecordKey, "value": ...}``
  (``value is None`` encodes a delete)
- ``{"type": "commit", "txn": id, "ts": commit_ts}``
- ``{"type": "abort", "txn": id}``
- ``{"type": "checkpoint", "ts": ts}``

Two-phase commit adds participant-side records (``repro.txn`` is the
coordinator; the shard WAL only stores the participant's view):

- ``{"type": "prepare", "txn": id, "gtxn": global_id}`` — the
  transaction's writes (logged just before) are durable and validated,
  the participant votes YES and may no longer unilaterally abort.
- ``{"type": "decision", "txn": id, "gtxn": global_id,
  "decision": "commit"|"abort", "ts": commit_ts|None}`` — the
  coordinator's verdict reached this participant (or was re-derived by
  recovery from the coordinator log).

A prepared transaction with no decision/commit/abort record is
*in-doubt*: :meth:`replay` holds its writes back (neither redone nor
forgotten) and :meth:`prepared_in_doubt` surfaces it so recovery can ask
the coordinator log for the verdict.  Prepare and decision appends
force a sync even when ``sync_every_append`` is off — the protocol is
meaningless unless its votes and verdicts are durable.

Checksums: every append stores a CRC32 of the record's serialized form
(the same ``repr`` bytes the byte accounting already pays for), the
in-memory stand-in for the per-record checksum a real log writes to
disk.  Torn writes and bit rot — injectable at the ``wal.append``
failpoint or via :meth:`WriteAheadLog.corrupt` — leave a record whose
stored checksum can no longer re-validate; recovery calls
:meth:`truncate_corrupt` to cut the log at the *first* bad record
instead of replaying garbage, and the corruption counters surface
through :meth:`metrics` into the observability registry.
"""

from __future__ import annotations

import zlib
from typing import Any, Iterator

from repro.engine.records import RecordKey, copy_value
from repro.errors import WalError
from repro.faults.registry import FAULTS


class WriteAheadLog:
    """An append-only redo log with an explicit durability watermark."""

    def __init__(self, sync_every_append: bool = True) -> None:
        self._records: list[dict[str, Any]] = []
        # Parallel per-record CRC32s over the record's repr bytes —
        # every mutation of _records mirrors into _crcs.
        self._crcs: list[int] = []
        self._durable = 0
        self.sync_every_append = sync_every_append
        # Owner label for fault-site targeting ("shard0", "shard1f2");
        # set by whoever constructs the owning database.
        self.tag = ""
        self.appends = 0
        self.syncs = 0
        # Byte accounting for the metrics surface: appended_bytes grows
        # per append (repr-encoded size — an approximation of what a
        # serialised log would write), synced_bytes advances to it at
        # each sync (what an fsync would have flushed).  Both are
        # monotonic process-lifetime counters; crash() does not rewind
        # them, exactly like appends/syncs.
        self.appended_bytes = 0
        self.synced_bytes = 0
        # Corruption accounting (monotonic, like appends/syncs):
        # detections = truncate_corrupt calls that found a bad record,
        # dropped = records cut by those truncations.
        self.corrupt_records_detected = 0
        self.corrupt_records_dropped = 0

    # -- appending ---------------------------------------------------------

    def append(self, record: dict[str, Any]) -> None:
        """Append one record; auto-syncs when configured (default)."""
        if "type" not in record:
            raise WalError(f"WAL record missing 'type': {record!r}")
        data = repr(record).encode()
        crc = zlib.crc32(data)
        if FAULTS.enabled:
            action = FAULTS.fire("wal.append", tag=self.tag, type=record["type"])
            if action is not None:
                if action.kind == "torn_write":
                    # Partially flushed: the stored checksum covers only
                    # a prefix of the record's bytes, so it can never
                    # re-validate — exactly what a sector-split write
                    # under power loss leaves behind.
                    crc = zlib.crc32(data[: len(data) // 2])
                elif action.kind == "bit_flip":
                    crc ^= 1 << (action.payload.get("bit", 0) % 32)
        self._records.append(record)
        self._crcs.append(crc)
        self.appends += 1
        self.appended_bytes += len(data)
        if self.sync_every_append:
            self.sync()

    def log_begin(self, txn_id: int) -> None:
        self.append({"type": "begin", "txn": txn_id})

    def log_write(self, txn_id: int, key: RecordKey, value: Any) -> None:
        self.append(
            {"type": "write", "txn": txn_id, "key": key, "value": copy_value(value)}
        )

    def log_commit(self, txn_id: int, commit_ts: int) -> None:
        self.append({"type": "commit", "txn": txn_id, "ts": commit_ts})

    def log_abort(self, txn_id: int) -> None:
        self.append({"type": "abort", "txn": txn_id})

    def log_prepare(self, txn_id: int, global_id: int) -> None:
        """Participant PREPARE vote; forced durable regardless of config."""
        self.append({"type": "prepare", "txn": txn_id, "gtxn": global_id})
        if not self.sync_every_append:
            self.sync()

    def log_decision(
        self,
        txn_id: int,
        decision: str,
        ts: int | None = None,
        global_id: int | None = None,
    ) -> None:
        """Coordinator verdict for a prepared txn; forced durable."""
        if decision not in ("commit", "abort"):
            raise WalError(f"bad 2PC decision {decision!r}")
        if decision == "commit" and ts is None:
            raise WalError("a commit decision requires a commit timestamp")
        self.append(
            {"type": "decision", "txn": txn_id, "gtxn": global_id,
             "decision": decision, "ts": ts}
        )
        if not self.sync_every_append:
            self.sync()

    def log_checkpoint(self, ts: int) -> None:
        self.append({"type": "checkpoint", "ts": ts})

    def sync(self) -> None:
        """Advance the durable watermark to the end of the log."""
        self._durable = len(self._records)
        self.syncs += 1
        self.synced_bytes = self.appended_bytes

    def metrics(self) -> dict[str, int]:
        """Counter snapshot for the observability registry's collector."""
        return {
            "appends": self.appends,
            "syncs": self.syncs,
            "appended_bytes": self.appended_bytes,
            "synced_bytes": self.synced_bytes,
            "durable_records": self._durable,
            "records": len(self._records),
            "corrupt_records_total": self.corrupt_records_detected,
            "corrupt_records_dropped_total": self.corrupt_records_dropped,
        }

    # -- crash & recovery -----------------------------------------------------

    def crash(self) -> int:
        """Discard every record after the durable watermark.

        Returns the number of records lost.  Simulates a machine failure:
        buffered-but-unsynced appends vanish.
        """
        lost = len(self._records) - self._durable
        del self._records[self._durable :]
        del self._crcs[self._durable :]
        return lost

    # -- checksums & corruption ---------------------------------------------

    def corrupt(self, index: int, mode: str = "bit_flip", bit: int = 0) -> None:
        """Fault hook: simulate on-disk corruption of one stored record.

        ``bit_flip`` flips one bit of the record's stored bytes (modelled
        by flipping the stored checksum — detection-equivalent, since
        verification only compares recomputed vs stored CRC); ``torn``
        re-checksums a byte prefix, modelling a partially flushed
        record.  Either way :meth:`first_corrupt` now reports *index*.
        """
        if not 0 <= index < len(self._records):
            raise WalError(
                f"cannot corrupt record {index} of a {len(self._records)}-record log"
            )
        if mode == "bit_flip":
            self._crcs[index] ^= 1 << (bit % 32)
        elif mode == "torn":
            data = repr(self._records[index]).encode()
            self._crcs[index] = zlib.crc32(data[: len(data) // 2])
        else:
            raise WalError(f"unknown corruption mode {mode!r}")

    def first_corrupt(self) -> int | None:
        """Index of the first durable record failing its checksum, or None."""
        for i in range(self._durable):
            if zlib.crc32(repr(self._records[i]).encode()) != self._crcs[i]:
                return i
        return None

    def truncate_corrupt(self) -> int:
        """Cut the log at the first checksum failure; returns records dropped.

        The recovery-time guard: replaying past a torn or bit-flipped
        record would deserialize garbage, so everything from the first
        bad record onward is discarded — corruption bounds loss to the
        corrupted suffix, never to silent wrong answers.  Counted in
        ``corrupt_records_detected`` / ``corrupt_records_dropped``.
        """
        bad = self.first_corrupt()
        if bad is None:
            return 0
        dropped = len(self._records) - bad
        del self._records[bad:]
        del self._crcs[bad:]
        self._durable = min(self._durable, bad)
        self.corrupt_records_detected += 1
        self.corrupt_records_dropped += dropped
        return dropped

    def records(self) -> Iterator[dict[str, Any]]:
        """Iterate durable records (used by recovery and tests)."""
        return iter(self._records[: self._durable])

    def __len__(self) -> int:
        return len(self._records)

    @property
    def durable_length(self) -> int:
        return self._durable

    def committed_transactions(self) -> dict[int, int]:
        """Map txn_id -> commit_ts for every durably committed txn.

        A 2PC commit decision is a commit: the participant's writes were
        made durable at prepare time, the verdict makes them real.
        """
        out: dict[int, int] = {}
        for rec in self.records():
            if rec["type"] == "commit":
                out[rec["txn"]] = rec["ts"]
            elif rec["type"] == "decision" and rec["decision"] == "commit":
                out[rec["txn"]] = rec["ts"]
        return out

    def prepared_in_doubt(self) -> dict[int, int]:
        """Map txn_id -> global txn id for every unresolved prepared txn.

        A txn is in-doubt when its prepare record is durable but no
        commit, abort, or decision record follows.  Recovery must not
        redo its writes (the coordinator may have aborted) nor drop them
        (the coordinator may have committed) until the coordinator log
        settles the verdict.
        """
        out: dict[int, int] = {}
        for rec in self.records():
            if rec["type"] == "prepare":
                out[rec["txn"]] = rec["gtxn"]
            elif rec["type"] in ("commit", "abort", "decision"):
                out.pop(rec["txn"], None)
        return out

    def max_commit_ts(self) -> int:
        """The largest durable commit timestamp (0 when none)."""
        committed = self.committed_transactions()
        return max(committed.values(), default=0)

    def replay(self) -> Iterator[tuple[int, RecordKey, Any]]:
        """Yield (commit_ts, key, value) for every durably committed write.

        Writes of uncommitted or aborted transactions are skipped — this
        is the redo pass of ARIES restricted to redo-only logging (no
        undo needed because uncommitted writes never reach the store).
        Within a transaction, write order is preserved; transactions are
        yielded in commit-timestamp order.
        """
        committed = self.committed_transactions()
        writes: dict[int, list[tuple[RecordKey, Any]]] = {}
        for rec in self.records():
            if rec["type"] == "write" and rec["txn"] in committed:
                writes.setdefault(rec["txn"], []).append((rec["key"], rec["value"]))
        for txn_id in sorted(committed, key=lambda t: committed[t]):
            ts = committed[txn_id]
            for key, value in writes.get(txn_id, []):
                yield ts, key, copy_value(value)

    def ddl_records(self) -> list[dict[str, Any]]:
        """Every DDL record, oldest first — the *full* log, tail included.

        Replica sync (``repro.cluster.remote``) replays these on worker
        processes; DDL is applied the moment it is logged, so a replica
        must see it whether or not the tail is synced yet.
        """
        return [rec for rec in self._records if rec["type"] == "ddl"]

    def committed_writes_after(
        self, after_ts: int
    ) -> Iterator[tuple[int, RecordKey, Any]]:
        """(commit_ts, key, value) for committed writes with ts > *after_ts*.

        The incremental replica-sync feed: unlike :meth:`replay` this
        scans the full in-memory log *including the unsynced tail* — a
        committed-but-unsynced write is already visible to queries on
        this node, so a read replica serving the same queries must apply
        it (durability is the coordinator's concern, not the replica's).
        Writes of transactions that are uncommitted, aborted, or still
        in doubt are excluded; commit timestamps are assigned
        monotonically at commit, so filtering on ``ts > after_ts`` never
        skips a transaction that commits later.  Values are *not*
        copied: callers serialise them across a process boundary (or
        re-copy on apply).
        """
        records = list(self._records)  # snapshot; appended dicts are immutable
        committed: dict[int, int] = {}
        for rec in records:
            if rec["type"] == "commit":
                committed[rec["txn"]] = rec["ts"]
            elif rec["type"] == "decision" and rec["decision"] == "commit":
                committed[rec["txn"]] = rec["ts"]
        wanted = {txn for txn, ts in committed.items() if ts > after_ts}
        writes: dict[int, list[tuple[RecordKey, Any]]] = {}
        for rec in records:
            if rec["type"] == "write" and rec["txn"] in wanted:
                writes.setdefault(rec["txn"], []).append((rec["key"], rec["value"]))
        for txn_id in sorted(wanted, key=lambda t: committed[t]):
            ts = committed[txn_id]
            for key, value in writes.get(txn_id, []):
                yield ts, key, value

    # -- log shipping (replication) -------------------------------------------

    def records_from(self, start: int) -> list[dict[str, Any]]:
        """Raw records at index >= *start* — the log-shipping feed.

        Includes the unsynced tail on purpose: a follower that syncs a
        shipped record makes it *more* durable than the leader's page
        cache, which is exactly how a quorum ack can survive a leader
        crash.  Record dicts are treated as immutable after append, so
        sharing them with an in-process follower is safe; a remote
        follower serialises them anyway.  The cursor is a plain record
        index (``len(wal)`` after the ship), the same O(1) fingerprint
        the appends counter gives the worker-process replicas.
        """
        return self._records[start:]

    def truncate_to(self, length: int) -> int:
        """Discard every record at index >= *length*; returns count dropped.

        Follower-side divergence repair: a deposed leader rejoining the
        replica set cuts its log back to the common prefix with the new
        leader before resyncing.  The durable watermark clamps with the
        log — records that no longer exist cannot be durable.
        """
        dropped = len(self._records) - length
        if dropped <= 0:
            return 0
        del self._records[length:]
        del self._crcs[length:]
        self._durable = min(self._durable, length)
        return dropped

    def truncate_before_checkpoint(self) -> int:
        """Drop records preceding the last checkpoint; returns count dropped.

        A checkpoint asserts the store has materialised everything before
        it, so recovery only needs the suffix.
        """
        last_cp = -1
        for i, rec in enumerate(self._records[: self._durable]):
            if rec["type"] == "checkpoint":
                last_cp = i
        if last_cp <= 0:
            return 0
        dropped = last_cp
        del self._records[:last_cp]
        del self._crcs[:last_cp]
        self._durable -= dropped
        return dropped
