"""An in-memory B+tree.

Backs :class:`repro.engine.indexes.SortedIndex` (ablation E7 compares it
with the flat bisect list it replaced): leaves are linked for ordered
range scans, internal nodes hold separator keys, and the fanout is a
constructor knob so tests can force deep trees.

Keys must be mutually comparable; values are opaque.  Duplicate keys are
rejected at insert (the index layer namespaces keys to avoid them).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import EngineError


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: list[Any] = []
        self.children: list[_Node] = []  # internal nodes
        self.values: list[Any] = []  # leaves
        self.next_leaf: _Node | None = None


class BPlusTree:
    """B+tree with insert, delete, point get, and ordered range scans.

    >>> t = BPlusTree(order=4)
    >>> for i in [5, 1, 9, 3, 7]:
    ...     t.insert(i, str(i))
    >>> [k for k, _ in t.range(2, 8)]
    [3, 5, 7]
    """

    def __init__(self, order: int = 32) -> None:
        if order < 3:
            raise EngineError("B+tree order must be >= 3")
        self.order = order
        self._root = _Node(is_leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- search ------------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        while not node.is_leaf:
            idx = self._child_index(node, key)
            node = node.children[idx]
        return node

    @staticmethod
    def _child_index(node: _Node, key: Any) -> int:
        idx = 0
        while idx < len(node.keys) and key >= node.keys[idx]:
            idx += 1
        return idx

    def get(self, key: Any, default: Any = None) -> Any:
        leaf = self._find_leaf(key)
        for k, v in zip(leaf.keys, leaf.values):
            if k == key:
                return v
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    # -- insert ------------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert a new key; raises on duplicates."""
        split = self._insert(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def _insert(self, node: _Node, key: Any, value: Any):
        if node.is_leaf:
            idx = 0
            while idx < len(node.keys) and node.keys[idx] < key:
                idx += 1
            if idx < len(node.keys) and node.keys[idx] == key:
                raise EngineError(f"duplicate key {key!r} in B+tree")
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            if len(node.keys) >= self.order:
                return self._split_leaf(node)
            return None
        idx = self._child_index(node, key)
        split = self._insert(node.children[idx], key, value)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.children) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # -- delete -------------------------------------------------------------------

    def delete(self, key: Any) -> bool:
        """Delete *key*; returns whether it was present.

        Uses lazy deletion (no rebalancing): leaves may underflow but
        stay correct; the tree never grows taller from deletes.  This is
        the classic trade for in-memory indexes with churn, and keeps the
        code honest-to-verify.  Empty nodes are pruned on the way down.
        """
        leaf = self._find_leaf(key)
        for i, k in enumerate(leaf.keys):
            if k == key:
                del leaf.keys[i]
                del leaf.values[i]
                self._size -= 1
                return True
        return False

    # -- scans -----------------------------------------------------------------------

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All (key, value) pairs in key order."""
        leaf: _Node | None = self._leftmost_leaf()
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next_leaf

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """Ordered (key, value) pairs inside the bounds (default [low, high))."""
        if low is None:
            leaf: _Node | None = self._leftmost_leaf()
            start = 0
        else:
            leaf = self._find_leaf(low)
            start = 0
            while start < len(leaf.keys) and (
                leaf.keys[start] < low or (not include_low and leaf.keys[start] == low)
            ):
                start += 1
        while leaf is not None:
            for i in range(start, len(leaf.keys)):
                key = leaf.keys[i]
                if high is not None and (
                    key > high or (not include_high and key == high)
                ):
                    return
                yield key, leaf.values[i]
            leaf = leaf.next_leaf
            start = 0

    def min_key(self) -> Any:
        leaf = self._leftmost_leaf()
        return leaf.keys[0] if leaf.keys else None

    def max_key(self) -> Any:
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        # rightmost leaf may be empty after lazy deletes; walk items if so
        if node.keys:
            return node.keys[-1]
        last = None
        for key, _ in self.items():
            last = key
        return last

    # -- validation (tests) --------------------------------------------------------------

    def check_invariants(self) -> None:
        """Structural checks: sorted keys, correct separators, linked leaves."""
        keys_in_order = [k for k, _ in self.items()]
        if keys_in_order != sorted(keys_in_order):
            raise EngineError("B+tree leaf chain is out of order")
        if len(keys_in_order) != self._size:
            raise EngineError(
                f"B+tree size {self._size} != {len(keys_in_order)} reachable keys"
            )
        self._check_node(self._root, None, None)

    def _check_node(self, node: _Node, low: Any, high: Any) -> None:
        if sorted(node.keys) != node.keys:
            raise EngineError("node keys out of order")
        for k in node.keys:
            if low is not None and k < low:
                raise EngineError("separator below subtree lower bound")
            if high is not None and k > high:
                raise EngineError("separator above subtree upper bound")
        if node.is_leaf:
            return
        if len(node.children) != len(node.keys) + 1:
            raise EngineError("internal fanout mismatch")
        for i, child in enumerate(node.children):
            child_low = node.keys[i - 1] if i > 0 else low
            child_high = node.keys[i] if i < len(node.keys) else high
            self._check_node(child, child_low, child_high)
