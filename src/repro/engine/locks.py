"""A shared/exclusive lock table with waits-for deadlock detection.

The engine's transactions are *logically* concurrent: the benchmark's
schedule executor interleaves transaction steps deterministically in one
thread (so every anomaly experiment is reproducible).  A conflicting
acquire therefore cannot block a thread; instead it raises
:class:`WouldBlock`, the scheduler parks that transaction, and the lock
manager's waits-for graph is checked for cycles first — a cycle aborts
the requester with :class:`DeadlockError` (youngest-requester-dies).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import DeadlockError, EngineError


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class WouldBlock(Exception):
    """Raised when a lock cannot be granted now; the txn should be parked.

    Not a :class:`ReproError`: it is control flow for the schedule
    executor, never an application-visible failure.
    """

    def __init__(self, resource: object, holders: set[int]) -> None:
        super().__init__(f"lock on {resource!r} held by {sorted(holders)}")
        self.resource = resource
        self.holders = holders


@dataclass
class _LockEntry:
    holders: dict[int, LockMode] = field(default_factory=dict)


class LockManager:
    """Grants S/X locks on opaque resources to integer transaction ids."""

    def __init__(self) -> None:
        self._locks: dict[object, _LockEntry] = {}
        # waits_for[a] = set of txns a is currently waiting on
        self._waits_for: dict[int, set[int]] = {}
        self.deadlocks_detected = 0
        self.conflicts = 0

    # -- acquisition ---------------------------------------------------------

    def acquire(self, txn_id: int, resource: object, mode: LockMode) -> None:
        """Grant the lock or raise WouldBlock/DeadlockError.

        Re-acquiring a held lock is a no-op; upgrading S->X succeeds only
        when the requester is the sole holder.
        """
        entry = self._locks.setdefault(resource, _LockEntry())
        held = entry.holders.get(txn_id)
        if held is LockMode.EXCLUSIVE or held is mode:
            return
        others = {t for t in entry.holders if t != txn_id}
        if held is LockMode.SHARED and mode is LockMode.EXCLUSIVE:
            if not others:
                entry.holders[txn_id] = LockMode.EXCLUSIVE
                return
            self._block(txn_id, resource, others)
        if mode is LockMode.SHARED:
            blockers = {
                t for t, m in entry.holders.items()
                if t != txn_id and m is LockMode.EXCLUSIVE
            }
            if blockers:
                self._block(txn_id, resource, blockers)
            entry.holders[txn_id] = LockMode.SHARED
            self._waits_for.pop(txn_id, None)
            return
        # EXCLUSIVE request, no prior hold
        if others:
            self._block(txn_id, resource, others)
        entry.holders[txn_id] = LockMode.EXCLUSIVE
        self._waits_for.pop(txn_id, None)

    def _block(self, txn_id: int, resource: object, blockers: set[int]) -> None:
        """Record the wait edge, detect deadlock, then raise WouldBlock."""
        self.conflicts += 1
        self._waits_for[txn_id] = set(blockers)
        if self._on_cycle(txn_id):
            self.deadlocks_detected += 1
            self._waits_for.pop(txn_id, None)
            raise DeadlockError(
                f"txn {txn_id} would deadlock waiting for {sorted(blockers)} "
                f"on {resource!r}"
            )
        raise WouldBlock(resource, blockers)

    def _on_cycle(self, start: int) -> bool:
        """Does the waits-for graph contain a cycle through *start*?"""
        seen: set[int] = set()
        stack = list(self._waits_for.get(start, ()))
        while stack:
            txn = stack.pop()
            if txn == start:
                return True
            if txn in seen:
                continue
            seen.add(txn)
            stack.extend(self._waits_for.get(txn, ()))
        return False

    # -- release ------------------------------------------------------------------

    def release_all(self, txn_id: int) -> int:
        """Release every lock held by *txn_id*; returns the count released."""
        released = 0
        empty: list[object] = []
        for resource, entry in self._locks.items():
            if txn_id in entry.holders:
                del entry.holders[txn_id]
                released += 1
            if not entry.holders:
                empty.append(resource)
        for resource in empty:
            del self._locks[resource]
        self._waits_for.pop(txn_id, None)
        for waiters in self._waits_for.values():
            waiters.discard(txn_id)
        return released

    # -- introspection ---------------------------------------------------------------

    def holders_of(self, resource: object) -> dict[int, LockMode]:
        entry = self._locks.get(resource)
        return dict(entry.holders) if entry else {}

    def held_by(self, txn_id: int) -> list[object]:
        return [r for r, e in self._locks.items() if txn_id in e.holders]

    def metrics(self) -> dict[str, int]:
        """Counter snapshot for the observability registry's collector.

        ``lock_waits`` is the number of acquire attempts that could not
        be granted immediately (each raised WouldBlock or DeadlockError);
        ``held_resources``/``waiting_txns`` are point-in-time gauges of
        the table's current occupancy.
        """
        return {
            "lock_waits": self.conflicts,
            "deadlocks_detected": self.deadlocks_detected,
            "held_resources": len(self._locks),
            "waiting_txns": len(self._waits_for),
        }

    def assert_consistent(self) -> None:
        """Invariant check used by property tests."""
        for resource, entry in self._locks.items():
            modes = list(entry.holders.values())
            if modes.count(LockMode.EXCLUSIVE) > 1:
                raise EngineError(f"two X holders on {resource!r}")
            if LockMode.EXCLUSIVE in modes and len(modes) > 1:
                raise EngineError(f"X and S coexist on {resource!r}")
