"""Secondary indexes over committed record state.

Indexes map an extracted field value to the set of record keys holding
it.  They are maintained at commit time (the engine's single apply path)
and always reflect the *latest committed* state; snapshot reads therefore
re-check visibility of each candidate before returning it, which keeps
index maintenance simple and correct under MVCC.

Two flavours:

- :class:`HashIndex`   — equality lookups, O(1)
- :class:`SortedIndex` — range lookups via bisection, O(log n + k)
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Hashable, Iterator

from repro.errors import EngineError

Extractor = Callable[[Any], Hashable]


def extract_path(value: Any, field: str) -> Any:
    """Value at *field* of a dict-shaped record, following dotted paths.

    Each dot descends one nested dict — mirroring how MMQL's chained
    field access (``u.address.city``) evaluates, so an index keyed by
    this extractor always agrees with the query predicate it serves (a
    literal ``"address.city"`` key is unreachable from MMQL and is not
    consulted).  Returns None when any step is missing or not a dict.
    """
    node: Any = value
    for part in field.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def field_extractor(field: str) -> Extractor:
    """Extractor for a field of a dict-shaped record value.

    *field* may be a dotted path (``"address.city"``) into nested
    documents; container-valued results are unindexable and map to None.
    """

    def extract(value: Any) -> Hashable:
        got = extract_path(value, field)
        if isinstance(got, (list, dict)):
            return None  # unindexable nested value
        return got

    return extract


class HashIndex:
    """field value -> set of record keys."""

    def __init__(self, name: str, extractor: Extractor) -> None:
        self.name = name
        self.extractor = extractor
        self._buckets: dict[Hashable, set[Any]] = {}

    def on_write(self, record_key: Any, old_value: Any, new_value: Any) -> None:
        """Maintain the index across one committed write (None = absent)."""
        old_field = self.extractor(old_value) if old_value is not None else None
        new_field = self.extractor(new_value) if new_value is not None else None
        if old_value is not None and old_field is not None:
            bucket = self._buckets.get(old_field)
            if bucket is not None:
                bucket.discard(record_key)
                if not bucket:
                    del self._buckets[old_field]
        if new_value is not None and new_field is not None:
            self._buckets.setdefault(new_field, set()).add(record_key)

    def lookup(self, value: Hashable) -> set[Any]:
        """Record keys whose indexed field equals *value* (latest-committed)."""
        return set(self._buckets.get(value, ()))

    def distinct_values(self) -> list[Hashable]:
        return list(self._buckets.keys())

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())


class SortedIndex:
    """Ordered (field value, record key) pairs for range scans.

    Values must be mutually comparable; mixed-type fields raise at
    maintenance time so corruption is caught at the write, not the read.
    Record keys are disambiguated by ``repr`` so heterogeneous keys never
    get compared directly.
    """

    def __init__(self, name: str, extractor: Extractor) -> None:
        self.name = name
        self.extractor = extractor
        # Sorted by (value, repr(record_key)).
        self._pairs: list[tuple[Any, str, Any]] = []

    def on_write(self, record_key: Any, old_value: Any, new_value: Any) -> None:
        """Maintain the index across one committed write (None = absent)."""
        old_field = self.extractor(old_value) if old_value is not None else None
        new_field = self.extractor(new_value) if new_value is not None else None
        if old_value is not None and old_field is not None:
            self._remove(old_field, record_key)
        if new_value is not None and new_field is not None:
            self._insert(new_field, record_key)

    def _insert(self, value: Any, record_key: Any) -> None:
        entry = (value, repr(record_key), record_key)
        try:
            idx = bisect.bisect_left(self._pairs, entry[:2], key=lambda e: e[:2])
        except TypeError as exc:
            raise EngineError(
                f"index {self.name!r}: value {value!r} is not comparable with "
                "existing entries"
            ) from exc
        self._pairs.insert(idx, entry)

    def _remove(self, value: Any, record_key: Any) -> None:
        probe = (value, repr(record_key))
        try:
            idx = bisect.bisect_left(self._pairs, probe, key=lambda e: e[:2])
        except TypeError:
            return
        if idx < len(self._pairs) and self._pairs[idx][:2] == probe:
            del self._pairs[idx]

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """Yield (field value, record key) for values inside the bounds.

        ``None`` bounds are open.  Defaults give the half-open interval
        ``[low, high)``.
        """
        if low is None:
            start = 0
        else:
            start = bisect.bisect_left(self._pairs, low, key=lambda e: e[0])
        for i in range(start, len(self._pairs)):
            value, _, record_key = self._pairs[i]
            if low is not None and not include_low and value == low:
                continue
            if high is not None:
                if value > high or (not include_high and value == high):
                    break
            yield value, record_key

    def min_value(self) -> Any:
        return self._pairs[0][0] if self._pairs else None

    def max_value(self) -> Any:
        return self._pairs[-1][0] if self._pairs else None

    def __len__(self) -> int:
        return len(self._pairs)


class BTreeIndex:
    """Range index backed by :class:`repro.engine.btree.BPlusTree`.

    Same interface as :class:`SortedIndex`; the E7 ablation compares the
    two backends under write churn (a flat sorted list pays O(n) per
    maintenance insert, the tree O(log n)).
    """

    def __init__(self, name: str, extractor: Extractor, order: int = 32) -> None:
        from repro.engine.btree import BPlusTree

        self.name = name
        self.extractor = extractor
        # Tree keys are (value, repr(record_key)) so duplicates of the
        # indexed value coexist; the record key is the payload.
        self._tree = BPlusTree(order=order)

    def on_write(self, record_key: Any, old_value: Any, new_value: Any) -> None:
        """Maintain the index across one committed write (None = absent)."""
        old_field = self.extractor(old_value) if old_value is not None else None
        new_field = self.extractor(new_value) if new_value is not None else None
        if old_value is not None and old_field is not None:
            self._tree.delete((old_field, repr(record_key)))
        if new_value is not None and new_field is not None:
            try:
                self._tree.insert((new_field, repr(record_key)), record_key)
            except TypeError as exc:
                raise EngineError(
                    f"index {self.name!r}: value {new_field!r} is not comparable "
                    "with existing entries"
                ) from exc

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """Yield (field value, record key) for values inside the bounds."""
        for (value, _), record_key in self._tree.items() if low is None and high is None else self._scan(low, high):
            if low is not None:
                if value < low or (not include_low and value == low):
                    continue
            if high is not None:
                if value > high or (not include_high and value == high):
                    break
            yield value, record_key

    def _scan(self, low: Any, high: Any) -> Iterator[tuple[tuple[Any, str], Any]]:
        tree_low = (low, "") if low is not None else None
        # High bound handled by the caller (needs inclusivity semantics on
        # the *value*, not the composite key).
        yield from self._tree.range(tree_low, None)

    def min_value(self) -> Any:
        key = self._tree.min_key()
        return key[0] if key is not None else None

    def max_value(self) -> Any:
        key = self._tree.max_key()
        return key[0] if key is not None else None

    def __len__(self) -> int:
        return len(self._tree)
