"""Record identity and MVCC version chains.

Every datum in the engine — a relational row, a JSON document, an XML
tree, a graph vertex or edge, a key-value pair — is one *record*
addressed by a :class:`RecordKey` and stored as a :class:`VersionChain`
of timestamped immutable values.  This single abstraction is what makes
cross-model transactions natural: the transaction layer never needs to
know which model a record belongs to.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, NamedTuple

from repro.models.document.document import deep_copy_json
from repro.models.xml.node import XmlElement, XmlText


class Model(enum.Enum):
    """The five data models of Figure 1 (graph split into V and E records).

    ``SYSTEM`` is not a user-facing model: it addresses engine-internal
    bookkeeping records (e.g. the cluster's ``_id`` ownership
    reservations) that must ride the same transactional machinery —
    MVCC, WAL, conflict detection, recovery — without ever appearing in
    collection listings or statistics.
    """

    RELATIONAL = "relational"
    DOCUMENT = "document"
    XML = "xml"
    GRAPH_VERTEX = "graph_vertex"
    GRAPH_EDGE = "graph_edge"
    KEY_VALUE = "key_value"
    SYSTEM = "system"


class RecordKey(NamedTuple):
    """(model, collection, key) — the global address of one record."""

    model: Model
    collection: str
    key: Any

    def __str__(self) -> str:
        return f"{self.model.value}/{self.collection}/{self.key!r}"


def copy_value(value: Any) -> Any:
    """Deep-copy a record value of any model.

    JSON-ish values are copied structurally; XML trees are rebuilt node by
    node.  Copying on both write and read is what gives the engine its
    immutability guarantee: no caller can mutate committed state in place.
    """
    if isinstance(value, XmlElement):
        return XmlElement(
            value.tag,
            dict(value.attributes),
            [copy_value(c) for c in value.children],
        )
    if isinstance(value, XmlText):
        return XmlText(value.value)
    return deep_copy_json(value)


@dataclass
class Version:
    """One committed version.  ``value is None`` encodes a tombstone."""

    begin_ts: int
    value: Any
    txn_id: int = 0


@dataclass
class VersionChain:
    """Committed versions of one record, oldest first.

    Invariant: ``begin_ts`` strictly increases along the chain (enforced
    by the single commit path; asserted in tests).
    """

    versions: list[Version] = field(default_factory=list)

    def visible_at(self, ts: int) -> Version | None:
        """The version a snapshot at *ts* sees (None = record unborn)."""
        chosen: Version | None = None
        for v in self.versions:
            if v.begin_ts <= ts:
                chosen = v
            else:
                break
        return chosen

    def latest(self) -> Version | None:
        """The most recent committed version."""
        return self.versions[-1] if self.versions else None

    def latest_begin_ts(self) -> int:
        """Timestamp of the newest version, 0 if the chain is empty."""
        return self.versions[-1].begin_ts if self.versions else 0

    def append(self, version: Version) -> None:
        if self.versions and version.begin_ts <= self.versions[-1].begin_ts:
            raise AssertionError(
                "version chain timestamps must strictly increase "
                f"({version.begin_ts} after {self.versions[-1].begin_ts})"
            )
        self.versions.append(version)

    def prune_before(self, ts: int) -> int:
        """Garbage-collect versions not visible to any snapshot >= *ts*.

        Keeps the newest version with ``begin_ts <= ts`` (it is still the
        visible one) and everything after.  Returns versions removed.
        """
        if not self.versions:
            return 0
        keep_from = 0
        for i, v in enumerate(self.versions):
            if v.begin_ts <= ts:
                keep_from = i
            else:
                break
        removed = keep_from
        if removed:
            del self.versions[:keep_from]
        return removed

    def is_dead(self) -> bool:
        """True if the record's only remaining state is a tombstone."""
        return len(self.versions) == 1 and self.versions[0].value is None

    def __len__(self) -> int:
        return len(self.versions)
