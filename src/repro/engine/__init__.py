"""The transactional multi-model engine (the benchmark's system under test).

A single versioned record store holds all five data models; transactions
span models freely, which is exactly the capability the UDBMS benchmark
exercises (the paper's example transaction touches JSON orders, key-value
feedback and XML invoices at once).

Layers:

- :mod:`repro.engine.records`      record keys and MVCC version chains
- :mod:`repro.engine.wal`          redo-only write-ahead log + recovery
- :mod:`repro.engine.locks`        S/X lock table with deadlock detection
- :mod:`repro.engine.indexes`      hash and sorted secondary indexes
- :mod:`repro.engine.transactions` isolation levels and the txn manager
- :mod:`repro.engine.database`     the MultiModelDatabase facade
"""

from repro.engine.database import MultiModelDatabase
from repro.engine.records import Model, RecordKey
from repro.engine.transactions import IsolationLevel, Transaction

__all__ = [
    "IsolationLevel",
    "Model",
    "MultiModelDatabase",
    "RecordKey",
    "Transaction",
]
