"""The polyglot-persistence baseline: five stores, no shared transaction.

This is the architecture multi-model databases position themselves
against: a relational store, a document store, an XML store, a key-value
store and a graph store, each with its *own* commit point, glued together
by application code.  Cross-model "transactions" commit store by store;
a crash between store commits leaves the application in a fractured
state — which experiment E6 measures directly.

The stores themselves reuse the value-layer substrates from
:mod:`repro.models`, each wrapped with a tiny per-store redo log so the
crash simulation is apples-to-apples with the unified engine's WAL.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.errors import (
    ConstraintError,
    DocumentError,
    GraphError,
    NoSuchCollectionError,
    TransactionAborted,
)
from repro.models.document.document import deep_copy_json, validate_json_value
from repro.models.graph.property_graph import Edge, PropertyGraph, Vertex
from repro.models.kv.store import KeyValueNamespace
from repro.models.relational.predicate import Predicate
from repro.models.relational.schema import TableSchema
from repro.models.relational.table import RelationalTable
from repro.models.xml.node import XmlElement
from repro.models.xml.xpath import XPath
from repro.engine.records import copy_value

# The five independent stores, in the fixed order session commits visit
# them (the order matters for fracture experiments).
STORE_ORDER = ("relational", "document", "xml", "kv", "graph")


class CrashDuringCommit(Exception):
    """Injected by tests/benches to simulate a crash between store commits."""


class PolyglotPersistence:
    """Five single-model stores behind one application facade."""

    def __init__(self) -> None:
        self.tables: dict[str, RelationalTable] = {}
        self.collections: dict[str, dict[str | int, dict[str, Any]]] = {}
        self.xml_collections: dict[str, dict[Any, XmlElement]] = {}
        self.kv_namespaces: dict[str, KeyValueNamespace] = {}
        self.graphs: dict[str, PropertyGraph] = {}
        # hash indexes: (store_kind, collection, field) -> value -> set[key]
        self._indexes: dict[tuple[str, str, str], dict[Any, set[Any]]] = {}
        # Commit counters per store (for fracture accounting).
        self.store_commits: dict[str, int] = {s: 0 for s in STORE_ORDER}
        # Fault injection: crash after committing this many stores of a
        # multi-store transaction (None = never crash).
        self.crash_after_stores: int | None = None

    # -- DDL -------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        if schema.name in self.tables:
            raise ConstraintError(f"table {schema.name!r} exists")
        self.tables[schema.name] = RelationalTable(schema)

    def create_collection(self, name: str) -> None:
        if name in self.collections:
            raise DocumentError(f"collection {name!r} exists")
        self.collections[name] = {}

    def create_xml_collection(self, name: str) -> None:
        self.xml_collections[name] = {}

    def create_kv_namespace(self, name: str) -> None:
        self.kv_namespaces[name] = KeyValueNamespace(name)

    def create_graph(self, name: str) -> None:
        self.graphs[name] = PropertyGraph(name)

    def create_index(self, kind: str, collection: str, field: str) -> None:
        """Register a hash index and back-fill it."""
        key = (kind, collection, field)
        index: dict[Any, set[Any]] = {}
        if kind == "table":
            table = self._table(collection)
            for row in table.scan():
                pk = table.schema.primary_key_of(row)
                index.setdefault(row.get(field), set()).add(pk)
        elif kind == "collection":
            for doc_id, doc in self._collection(collection).items():
                index.setdefault(doc.get(field), set()).add(doc_id)
        else:
            raise NoSuchCollectionError(f"unknown index kind {kind!r}")
        self._indexes[key] = index

    def index(self, kind: str, collection: str, field: str) -> dict[Any, set[Any]] | None:
        return self._indexes.get((kind, collection, field))

    # -- store lookups ---------------------------------------------------------

    def _table(self, name: str) -> RelationalTable:
        table = self.tables.get(name)
        if table is None:
            raise NoSuchCollectionError(f"no table {name!r}")
        return table

    def _collection(self, name: str) -> dict[str | int, dict[str, Any]]:
        coll = self.collections.get(name)
        if coll is None:
            raise NoSuchCollectionError(f"no collection {name!r}")
        return coll

    def _xml(self, name: str) -> dict[Any, XmlElement]:
        coll = self.xml_collections.get(name)
        if coll is None:
            raise NoSuchCollectionError(f"no xml collection {name!r}")
        return coll

    def _kv(self, name: str) -> KeyValueNamespace:
        ns = self.kv_namespaces.get(name)
        if ns is None:
            raise NoSuchCollectionError(f"no kv namespace {name!r}")
        return ns

    def _graph(self, name: str) -> PropertyGraph:
        g = self.graphs.get(name)
        if g is None:
            raise NoSuchCollectionError(f"no graph {name!r}")
        return g

    # -- index maintenance -------------------------------------------------------

    def _reindex(self, kind: str, collection: str, key: Any,
                 old: dict[str, Any] | None, new: dict[str, Any] | None) -> None:
        for (k, coll, field), index in self._indexes.items():
            if k != kind or coll != collection:
                continue
            if old is not None:
                bucket = index.get(old.get(field))
                if bucket is not None:
                    bucket.discard(key)
            if new is not None:
                index.setdefault(new.get(field), set()).add(key)

    # -- transactions (the weak spot being measured) --------------------------------

    def session(self) -> "PolyglotSession":
        return PolyglotSession(self)

    def run_transaction(self, body: Callable[["PolyglotSession"], Any]) -> Any:
        """Run *body* and commit store by store.

        There is no global atomicity: once the first store has committed,
        a failure (or injected crash) leaves earlier stores committed and
        later stores untouched.
        """
        session = PolyglotSession(self)
        result = body(session)
        session.commit()
        return result

    def stats(self) -> dict[str, int]:
        return {
            "tables": len(self.tables),
            "rows": sum(len(t) for t in self.tables.values()),
            "collections": len(self.collections),
            "documents": sum(len(c) for c in self.collections.values()),
            "xml_collections": len(self.xml_collections),
            "xml_documents": sum(len(c) for c in self.xml_collections.values()),
            "kv_namespaces": len(self.kv_namespaces),
            "kv_pairs": sum(len(ns) for ns in self.kv_namespaces.values()),
            "graphs": len(self.graphs),
            "vertices": sum(g.vertex_count() for g in self.graphs.values()),
            "edges": sum(g.edge_count() for g in self.graphs.values()),
        }


class PolyglotSession:
    """Buffers one application-level unit of work across the five stores.

    Mirrors the method surface of :class:`repro.engine.database.Session`
    for the operations the benchmark uses, so workload bodies run
    unchanged on both drivers.  Reads go straight to the stores (there is
    no cross-store snapshot — that's the point); writes are buffered per
    store and applied store-by-store at :meth:`commit`.
    """

    def __init__(self, db: PolyglotPersistence) -> None:
        self.db = db
        # ops[store_kind] = list of (callable applying the op)
        self._ops: dict[str, list[Callable[[], None]]] = {s: [] for s in STORE_ORDER}
        self._committed = False

    # -- relational ---------------------------------------------------------

    def sql_insert(self, table: str, values: dict[str, Any]) -> tuple[Any, ...]:
        tbl = self.db._table(table)
        row = tbl.schema.validate_row(dict(values))
        pk = tbl.schema.primary_key_of(row)

        def apply() -> None:
            tbl.insert(row)
            self.db._reindex("table", table, pk, None, row)

        self._ops["relational"].append(apply)
        return pk

    def sql_get(self, table: str, pk: tuple[Any, ...]) -> dict[str, Any] | None:
        return self.db._table(table).get(tuple(pk))

    def sql_update(
        self, table: str, pk: tuple[Any, ...], changes: dict[str, Any]
    ) -> dict[str, Any]:
        tbl = self.db._table(table)
        current = tbl.get(tuple(pk))
        if current is None:
            raise ConstraintError(f"no row {pk!r} in {table!r}")
        merged = dict(current)
        merged.update(changes)
        merged = tbl.schema.validate_row(merged)

        def apply() -> None:
            old = tbl.get(tuple(pk))
            tbl.update(tuple(pk), changes)
            self.db._reindex("table", table, tuple(pk), old, merged)

        self._ops["relational"].append(apply)
        return merged

    def sql_delete(self, table: str, pk: tuple[Any, ...]) -> bool:
        tbl = self.db._table(table)
        exists = tbl.get(tuple(pk)) is not None

        def apply() -> None:
            old = tbl.get(tuple(pk))
            if tbl.delete(tuple(pk)) and old is not None:
                self.db._reindex("table", table, tuple(pk), old, None)

        self._ops["relational"].append(apply)
        return exists

    def sql_scan(
        self, table: str, predicate: Predicate | None = None
    ) -> Iterator[dict[str, Any]]:
        return self.db._table(table).scan(predicate)

    # -- documents ------------------------------------------------------------

    def doc_insert(self, collection: str, doc: dict[str, Any]) -> str | int:
        coll = self.db._collection(collection)
        if "_id" not in doc:
            raise DocumentError("document requires an '_id' field")
        validate_json_value(doc)
        doc_id = doc["_id"]
        if doc_id in coll:
            raise DocumentError(f"duplicate _id {doc_id!r} in {collection!r}")
        snapshot = deep_copy_json(doc)

        def apply() -> None:
            coll[doc_id] = snapshot
            self.db._reindex("collection", collection, doc_id, None, snapshot)

        self._ops["document"].append(apply)
        return doc_id

    def doc_get(self, collection: str, doc_id: str | int) -> dict[str, Any] | None:
        doc = self.db._collection(collection).get(doc_id)
        return deep_copy_json(doc) if doc is not None else None

    def doc_update(
        self, collection: str, doc_id: str | int, changes: dict[str, Any]
    ) -> dict[str, Any]:
        coll = self.db._collection(collection)
        current = coll.get(doc_id)
        if current is None:
            raise DocumentError(f"no document {doc_id!r} in {collection!r}")
        merged = deep_copy_json(current)
        merged.update(deep_copy_json(changes))
        validate_json_value(merged)

        def apply() -> None:
            old = coll.get(doc_id)
            coll[doc_id] = deep_copy_json(merged)
            self.db._reindex("collection", collection, doc_id, old, merged)

        self._ops["document"].append(apply)
        return merged

    def doc_delete(self, collection: str, doc_id: str | int) -> bool:
        coll = self.db._collection(collection)
        exists = doc_id in coll

        def apply() -> None:
            old = coll.pop(doc_id, None)
            if old is not None:
                self.db._reindex("collection", collection, doc_id, old, None)

        self._ops["document"].append(apply)
        return exists

    def doc_scan(self, collection: str) -> Iterator[dict[str, Any]]:
        for doc in list(self.db._collection(collection).values()):
            yield deep_copy_json(doc)

    def doc_find(self, collection: str, field: str, value: Any) -> list[dict[str, Any]]:
        index = self.db.index("collection", collection, field)
        coll = self.db._collection(collection)
        if index is not None:
            out = []
            for doc_id in index.get(value, ()):
                doc = coll.get(doc_id)
                if doc is not None and doc.get(field) == value:
                    out.append(deep_copy_json(doc))
            return out
        return [deep_copy_json(d) for d in coll.values() if d.get(field) == value]

    # -- XML --------------------------------------------------------------------

    def xml_put(self, collection: str, doc_id: Any, tree: XmlElement) -> None:
        coll = self.db._xml(collection)
        snapshot = copy_value(tree)

        def apply() -> None:
            coll[doc_id] = snapshot

        self._ops["xml"].append(apply)

    def xml_get(self, collection: str, doc_id: Any) -> XmlElement | None:
        tree = self.db._xml(collection).get(doc_id)
        return copy_value(tree) if tree is not None else None

    def xml_delete(self, collection: str, doc_id: Any) -> bool:
        coll = self.db._xml(collection)
        exists = doc_id in coll

        def apply() -> None:
            coll.pop(doc_id, None)

        self._ops["xml"].append(apply)
        return exists

    def xml_scan(self, collection: str) -> Iterator[tuple[Any, XmlElement]]:
        for doc_id, tree in list(self.db._xml(collection).items()):
            yield doc_id, copy_value(tree)

    def xml_xpath(self, collection: str, doc_id: Any, path: str) -> list[Any]:
        tree = self.db._xml(collection).get(doc_id)
        if tree is None:
            return []
        return XPath(path).find(tree)

    # -- key-value -----------------------------------------------------------------

    def kv_put(self, namespace: str, key: str, value: Any) -> None:
        ns = self.db._kv(namespace)
        snapshot = deep_copy_json(value)

        def apply() -> None:
            ns.put(key, snapshot)

        self._ops["kv"].append(apply)

    def kv_get(self, namespace: str, key: str, default: Any = None) -> Any:
        return self.db._kv(namespace).get(key, default)

    def kv_delete(self, namespace: str, key: str) -> bool:
        ns = self.db._kv(namespace)
        exists = key in ns

        def apply() -> None:
            ns.delete(key)

        self._ops["kv"].append(apply)
        return exists

    def kv_scan_prefix(self, namespace: str, prefix: str) -> list[tuple[str, Any]]:
        return list(self.db._kv(namespace).scan_prefix(prefix))

    def kv_scan_range(
        self, namespace: str, low: str, high: str, limit: int | None = None
    ) -> list[tuple[str, Any]]:
        out = list(self.db._kv(namespace).scan_range(low, high))
        return out if limit is None else out[:limit]

    # -- graph ------------------------------------------------------------------------

    def graph_add_vertex(
        self, graph: str, vertex_id: Any, label: str, **properties: Any
    ) -> Vertex:
        g = self.db._graph(graph)

        def apply() -> None:
            g.add_vertex(vertex_id, label, **properties)

        self._ops["graph"].append(apply)
        return Vertex(vertex_id, label, dict(properties))

    def graph_vertex(self, graph: str, vertex_id: Any) -> Vertex | None:
        g = self.db._graph(graph)
        try:
            return g.vertex(vertex_id)
        except GraphError:
            return None

    def graph_update_vertex(self, graph: str, vertex_id: Any, **changes: Any) -> Vertex:
        g = self.db._graph(graph)
        current = g.vertex(vertex_id)  # raises if missing

        def apply() -> None:
            g.update_vertex(vertex_id, **changes)

        self._ops["graph"].append(apply)
        merged = dict(current.properties)
        merged.update(changes)
        return Vertex(vertex_id, current.label, merged)

    def graph_add_edge(
        self, graph: str, src: Any, dst: Any, label: str, **properties: Any
    ) -> None:
        g = self.db._graph(graph)

        def apply() -> None:
            g.add_edge(src, dst, label, **properties)

        self._ops["graph"].append(apply)

    def graph_out_edges(self, graph: str, vertex_id: Any, label: str | None = None) -> list[Edge]:
        return self.db._graph(graph).out_edges(vertex_id, label)

    def graph_in_edges(self, graph: str, vertex_id: Any, label: str | None = None) -> list[Edge]:
        return self.db._graph(graph).in_edges(vertex_id, label)

    def graph_out_neighbors(
        self, graph: str, vertex_id: Any, label: str | None = None
    ) -> list[Vertex]:
        return self.db._graph(graph).out_neighbors(vertex_id, label)

    def graph_traverse(
        self,
        graph: str,
        start: Any,
        min_depth: int,
        max_depth: int,
        edge_label: str | None = None,
    ) -> list[Any]:
        from repro.models.graph.traversal import neighbors_within

        return neighbors_within(
            self.db._graph(graph), start, min_depth, max_depth, edge_label
        )

    def graph_vertices(self, graph: str, label: str | None = None) -> Iterator[Vertex]:
        return self.db._graph(graph).vertices(label)

    def graph_edges(self, graph: str, label: str | None = None) -> Iterator[Edge]:
        return self.db._graph(graph).edges(label)

    # -- commit protocol ------------------------------------------------------------------

    def commit(self) -> None:
        """Apply buffered ops store by store (five separate commit points).

        If ``db.crash_after_stores`` is set and fewer stores than that
        have non-empty op lists, the crash fires after that many *store
        commits* — leaving a fractured multi-store state behind.
        """
        if self._committed:
            raise TransactionAborted("polyglot session already committed")
        self._committed = True
        stores_committed = 0
        for store in STORE_ORDER:
            ops = self._ops[store]
            if not ops:
                continue
            if (
                self.db.crash_after_stores is not None
                and stores_committed >= self.db.crash_after_stores
            ):
                raise CrashDuringCommit(
                    f"crash injected after {stores_committed} store commits"
                )
            for op in ops:
                op()
            self.db.store_commits[store] += 1
            stores_committed += 1

    def abort(self) -> None:
        """Discard buffered ops (only possible before any store committed)."""
        self._ops = {s: [] for s in STORE_ORDER}
        self._committed = True
