"""Baselines the unified engine is compared against."""

from repro.baselines.polyglot import PolyglotPersistence, PolyglotSession

__all__ = ["PolyglotPersistence", "PolyglotSession"]
