"""ShardedDatabase: N MultiModelDatabase shards behind the Driver interface.

The cluster facade of the reproduction.  Every model's collections are
partitioned across N independent :class:`MultiModelDatabase` shards by a
:class:`~repro.cluster.partition.ShardRouter`; MMQL, the workload
runner, the loader and the benchmarks run unchanged because the facade
implements the same :class:`~repro.drivers.base.Driver` surface as the
single-node drivers.

Placement defaults (overridable per collection at construction):

====================  =====================================================
Container             Placement
====================  =====================================================
relational table      hash on the primary key (single-column PKs route
                      ``_id``/point lookups; composite PKs hash the tuple)
document collection   hash on ``_id``
XML collection        hash on the document id
KV namespace          hash on the key string
graph vertices        broadcast (replicated to every shard) — so edge
                      endpoint checks stay local
graph edges           hash on the source vertex — one shard owns all
                      out-edges of a vertex, so BFS hops are single-shard
====================  =====================================================

Transactions: a :class:`ShardedSession` buffers writes in per-shard
sessions.  A transaction that wrote on **one** shard commits through
that shard's ordinary commit path (the fast path — zero extra WAL
records, single commit point, full engine atomicity).  A transaction
that wrote on **several** shards runs two-phase commit through
:class:`repro.txn.TwoPhaseCoordinator`: prepare-all (each shard makes
the writes durable behind a PREPARE record and pins the write locks),
one durable decision record in the coordinator log (the commit point),
then commit-all.  Crash recovery (:meth:`ShardedDatabase.crash`)
resolves every in-doubt participant against the coordinator log, so no
failure schedule leaves a cross-shard transaction torn.  Constructing
the cluster with ``two_phase_commit=False`` restores the previous
shard-by-shard best-effort commit (the polyglot-grade baseline the
benchmarks compare against).
"""

from __future__ import annotations

import contextlib
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, Iterator

from repro.cluster.partition import (
    PK_SENTINEL,
    HashPartitioner,
    Partitioner,
    ShardRouter,
    ShardSpec,
    edges_placement_name,
)
from repro.drivers.base import Driver
from repro.drivers.unified import UnifiedQueryContext
from repro.engine.database import MultiModelDatabase, Session
from repro.engine.records import Model
from repro.engine.transactions import IsolationLevel
from repro.errors import (
    ClusterError,
    EngineError,
    GraphError,
    SimulatedCrash,
    TransactionAborted,
)
from repro.txn import (
    CoordinatorLog,
    ReplicatedCoordinatorLog,
    TwoPhaseCoordinator,
    resolve_in_doubt,
)
from repro.consistency.sessions import ClusterSessionToken
from repro.replication.replicaset import ReplicaSet, ReplicaSetConfig
from repro.models.graph.property_graph import Edge, Vertex
from repro.models.graph.traversal import bfs_depth_range
from repro.models.relational.predicate import Predicate
from repro.models.xml.node import XmlElement
from repro.models.xml.xpath import XPath

# Edge-id stripes keep per-shard allocators disjoint without coordination.
_EDGE_ID_STRIDE = 1_000_000_000


class ShardedDatabase(Driver):
    """N-shard cluster of MultiModelDatabase instances (system under test)."""

    name = "sharded"

    def __init__(
        self,
        n_shards: int = 4,
        shard_keys: dict[str, str] | None = None,
        partitioners: dict[str, Partitioner] | None = None,
        broadcast: set[str] | None = None,
        isolation: IsolationLevel = IsolationLevel.SNAPSHOT,
        max_retries: int = 10,
        wal_sync_every_append: bool = True,
        two_phase_commit: bool = True,
        pool: str = "threads",
        pool_workers: int | None = None,
        replication: ReplicaSetConfig | None = None,
        remote_request_timeout: float = 30.0,
    ) -> None:
        if pool not in ("threads", "processes"):
            raise ClusterError(f"unknown pool mode {pool!r}")
        self.remote_request_timeout = remote_request_timeout
        self.n_shards = n_shards
        self.pool_mode = pool
        # Scatter concurrency.  "threads" keeps the historical default of
        # one thread per shard (threads only reduce *work* per shard —
        # the GIL serialises them — so oversubscription is harmless);
        # "processes" defaults to one worker per core, capped at the
        # shard count, because worker processes genuinely compete for
        # cores.  An explicit pool_workers overrides either.
        if pool_workers is not None:
            self.pool_workers = max(1, min(pool_workers, n_shards))
        elif pool == "processes":
            self.pool_workers = max(1, min(n_shards, os.cpu_count() or 1))
        else:
            self.pool_workers = n_shards
        self.isolation = isolation
        self.max_retries = max_retries
        self.two_phase_commit = two_phase_commit
        self.replication = replication
        # With replica sets under the shards, the coordinator log — the
        # commit point of every cross-shard transaction — gets its own
        # replica copies with the same quorum knob, so a coordinator
        # crash cannot orphan in-doubt participants.
        if replication is not None:
            self.coordinator_log: CoordinatorLog = ReplicatedCoordinatorLog(
                n_replicas=replication.replicas_per_shard,
                write_acks=replication.write_acks,
            )
        else:
            self.coordinator_log = CoordinatorLog()
        self.coordinator = TwoPhaseCoordinator(self.coordinator_log)
        self.router = ShardRouter(n_shards)
        self.shards: list[MultiModelDatabase] = []
        for i in range(n_shards):
            shard = MultiModelDatabase(
                name=f"shard{i}", wal_sync_every_append=wal_sync_every_append
            )
            shard._next_edge_id = 1 + i * _EDGE_ID_STRIDE
            self.shards.append(shard)
        # Each shard becomes a replica set: shards[i] stays the live
        # leader database (every existing code path keeps working) and
        # is swapped for the promoted follower's on failover.
        self.replica_sets: list[ReplicaSet] = []
        if replication is not None:
            self.replica_sets = [
                ReplicaSet(i, shard, replication)
                for i, shard in enumerate(self.shards)
            ]
        self._shard_keys = dict(shard_keys or {})
        self._partitioners = dict(partitioners or {})
        self._broadcast = set(broadcast or ())
        # One lock per shard serialises transaction begin/finish against
        # that shard's manager (queries from concurrent client threads).
        self._shard_locks = [threading.Lock() for _ in range(n_shards)]
        self._pool: ThreadPoolExecutor | None = None
        self._remote_pool: Any = None  # ProcessShardPool, lazy
        self._pool_lock = threading.Lock()

    # -- scatter pools (threads always; worker processes when configured) ----

    def pool(self) -> ThreadPoolExecutor | None:
        """The scatter thread pool (lazy; None for a 1-shard cluster).

        Used by both modes: in ``pool="threads"`` the threads run shard
        subplans in-process; in ``pool="processes"`` they only do frame
        I/O to the worker processes (blocking on a pipe releases the
        GIL), so sizing them to ``pool_workers`` matches the workers.
        """
        if self.n_shards == 1:
            return None
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.pool_workers, thread_name_prefix="shard"
                )
            return self._pool

    def remote_pool(self) -> Any:
        """The worker-process pool; None unless ``pool="processes"``.

        Lazy like :meth:`pool` — a process-mode cluster that only ever
        runs routed point queries never forks a worker.
        """
        if self.pool_mode != "processes" or self.n_shards == 1:
            return None
        with self._pool_lock:
            if self._remote_pool is None:
                from repro.cluster.remote import ProcessShardPool

                self._remote_pool = ProcessShardPool(
                    self,
                    self.pool_workers,
                    request_timeout=self.remote_request_timeout,
                )
            return self._remote_pool

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._remote_pool is not None:
                self._remote_pool.close()
                self._remote_pool = None

    # -- DDL (broadcast to every shard) -------------------------------------

    def _spec_for(
        self, name: str, kind: str, default_key: str | None, record_id: bool
    ) -> ShardSpec:
        if name in self._broadcast:
            return ShardSpec(kind, None)
        key = self._shard_keys.get(name, default_key)
        partitioner = self._partitioners.get(name, HashPartitioner())
        record_id = record_id and key == default_key
        return ShardSpec(kind, key, partitioner, key_is_record_id=record_id)

    def create_table(self, schema: Any) -> None:
        pk = schema.primary_key
        default_key = pk[0] if len(pk) == 1 else None
        spec = self._spec_for(schema.name, "table", default_key, record_id=True)
        if spec.key is None and schema.name not in self._broadcast and len(pk) != 1:
            # Composite primary key without an explicit shard key: hash
            # the whole pk tuple (routes inserts/gets, not MMQL filters).
            spec = ShardSpec("table", PK_SENTINEL, HashPartitioner())
        self.router.register(schema.name, spec)
        for shard in self.shards:
            shard.create_table(schema)
        self._replicate_all()

    def create_collection(self, name: str) -> None:
        self.router.register(
            name, self._spec_for(name, "collection", "_id", record_id=True)
        )
        for shard in self.shards:
            shard.create_collection(name)
        self._replicate_all()

    def create_xml_collection(self, name: str) -> None:
        self.router.register(name, self._spec_for(name, "xml", "_id", record_id=True))
        for shard in self.shards:
            shard.create_xml_collection(name)
        self._replicate_all()

    def create_kv_namespace(self, name: str) -> None:
        self.router.register(name, self._spec_for(name, "kv", "_key", record_id=True))
        for shard in self.shards:
            shard.create_kv_namespace(name)
        self._replicate_all()

    def create_graph(self, name: str) -> None:
        # Vertices broadcast; edges hash on their source vertex.
        self.router.register(name, ShardSpec("graph_vertex", None))
        self.router.register(
            edges_placement_name(name), ShardSpec("graph_edge", "_src", HashPartitioner())
        )
        for shard in self.shards:
            shard.create_graph(name)
        self._replicate_all()

    def create_index(
        self, kind: str, collection: str, field: str, index_type: str = "hash"
    ) -> None:
        model = Model.RELATIONAL if kind == "table" else Model.DOCUMENT
        for shard in self.shards:
            shard.create_index(model, collection, field, kind=index_type)
        self._replicate_all()

    def set_table_schema(self, schema: Any) -> None:
        for shard in self.shards:
            shard.set_table_schema(schema)
        self._replicate_all()

    def _replicate_all(self) -> None:
        """Quorum-ship every shard's outstanding WAL records (DDL path)."""
        for replica_set in self.replica_sets:
            replica_set.replicate()

    def table_schema(self, name: str) -> Any:
        return self.shards[0].table_schema(name)

    # -- transactions --------------------------------------------------------

    def begin(
        self,
        isolation: IsolationLevel | None = None,
        session: ClusterSessionToken | None = None,
    ) -> "ShardedSession":
        return ShardedSession(self, isolation or self.isolation, token=session)

    def session_token(self) -> ClusterSessionToken:
        """A read-your-writes/monotonic-reads token for follower reads.

        Pass it to :meth:`begin`/:meth:`transaction` (writes raise its
        per-shard floors) and to :meth:`query` (a follower serves a
        shard's read only once it has applied that floor).
        """
        return ClusterSessionToken()

    @contextlib.contextmanager
    def transaction(
        self,
        isolation: IsolationLevel | None = None,
        session: ClusterSessionToken | None = None,
    ) -> Iterator["ShardedSession"]:
        txn = self.begin(isolation, session=session)
        try:
            yield txn
        except BaseException:
            if txn.active:
                txn.abort()
            raise
        else:
            if txn.active:
                txn.commit()

    def load(self, loader: Callable[["ShardedSession"], None]) -> None:
        with self.transaction(IsolationLevel.SNAPSHOT) as session:
            loader(session)

    def run_transaction(self, body: Callable[["ShardedSession"], Any]) -> Any:
        attempts = 0
        while True:
            attempts += 1
            session = self.begin(self.isolation)
            try:
                result = body(session)
                session.commit()
                return result
            except TransactionAborted:
                if session.active:
                    session.abort()
                if session.partially_committed:
                    # Only reachable with two_phase_commit=False: some
                    # shard already made the writes durable, so a retry
                    # would double-apply them.  Surface the partial
                    # commit instead (the measured best-effort guarantee
                    # the 2PC mode exists to remove).
                    raise
                if attempts > self.max_retries:
                    raise
            except BaseException:
                if session.active:
                    session.abort()
                raise

    # -- crash & recovery ----------------------------------------------------

    def kill_leader(self, shard_id: int) -> dict[str, int]:
        """Fault hook: one shard's leader node dies; fail over in place.

        The dead leader's unsynced WAL tail is lost; the most caught-up
        live follower wins the election and is promoted (its in-doubt
        prepares resolved against the coordinator log), ``shards[i]``
        now points at the promoted database, and the termination
        protocol settles any transactions left prepared on the *other*
        shards by a coordinator that died mid-2PC.  Worker processes are
        discarded — their replica fingerprints referenced the dead
        leader's WAL.  Returns the resolution counters.  Must not race
        in-flight 2PC on other threads (it is a fault drill, like the
        ``crash_*`` injection attributes).
        """
        if not self.replica_sets:
            raise ClusterError("kill_leader requires replication=ReplicaSetConfig(...)")
        replica_set = self.replica_sets[shard_id]
        resolution = replica_set.fail_over(self.coordinator_log)
        self.shards[shard_id] = replica_set.leader_db
        with self._pool_lock:
            if self._remote_pool is not None:
                self._remote_pool.close()
                self._remote_pool = None
        promoted = sum(resolution.values())
        if promoted:
            self.coordinator.stats.incr("recovered_in_doubt", promoted)
        self.recover_in_doubt()  # counts its own resolutions
        return resolution

    def recover_in_doubt(self) -> int:
        """Termination protocol: settle prepared txns on *live* shards.

        After a coordinator failure (simulated crash mid-2PC), shards
        that prepared and never heard the verdict still hold the write
        locks pinned.  Each one asks the (replicated) coordinator log:
        durable commit decision → commit, otherwise presumed abort.
        Counted into ``recovered_in_doubt``; decisions are quorum-shipped
        like any other write.  Returns the number settled.
        """
        committed = self.coordinator_log.committed_global_txns()
        resolved = 0
        for shard_id, shard in enumerate(self.shards):
            with self._shard_locks[shard_id]:
                in_doubt = list(shard.manager.prepared.values())
                for txn in in_doubt:
                    if txn.global_id in committed:
                        shard.manager.commit_prepared(txn)
                    else:
                        shard.manager.abort_prepared(txn)
                    resolved += 1
            if in_doubt and self.replica_sets:
                self.replica_sets[shard_id].replicate()
        if resolved:
            self.coordinator.stats.incr("recovered_in_doubt", resolved)
        return resolved

    def crash(self) -> "ShardedDatabase":
        """Simulate a whole-cluster power failure and recover.

        Every shard WAL and the coordinator log lose their unsynced
        tails; each shard's in-doubt prepared transactions are resolved
        against the coordinator log (durable commit decision → redo,
        otherwise presumed abort); every shard is rebuilt by WAL replay.
        Returns the recovered cluster — the original instance must not
        be used afterwards (same contract as
        :meth:`MultiModelDatabase.crash`).
        """
        self.close()
        if not self.replica_sets:
            # With replication each replica set crashes its own members
            # (every replica's WAL, not just the leader's) in
            # recover_all below.
            for shard in self.shards:
                shard.wal.crash()
        self.coordinator_log.crash()
        recovered = ShardedDatabase.__new__(ShardedDatabase)
        # Configuration carries over wholesale (attributes added to
        # __init__ later survive recovery by default); only the rebuilt
        # runtime state below is replaced.
        recovered.__dict__.update(self.__dict__)
        recovered.coordinator = TwoPhaseCoordinator(
            self.coordinator_log, self.coordinator.stats
        )
        # Metrics are process-local operational state, not durable data:
        # drop the bundle so its collectors (and the coordinator hook)
        # rebind to the recovered instance rather than the dead one.
        # The switches survive — a cluster crashed with tracing on
        # recovers with tracing on; the counters restart from zero.
        old_obs = recovered.__dict__.pop("_observability", None)
        recovered._shard_locks = [threading.Lock() for _ in range(self.n_shards)]
        recovered._pool = None
        # Worker processes died with close() above and must not be
        # reused anyway: wal.crash() discards unsynced records without
        # rewinding the monotonic appends counter, so a surviving
        # replica's staleness fingerprint would claim it is current
        # while still holding the discarded tail.  A fresh pool spawns
        # lazily and resyncs every replica from the recovered shards.
        recovered._remote_pool = None
        recovered._pool_lock = threading.Lock()
        recovered.shards = []
        in_doubt_resolved = 0
        if self.replica_sets:
            # Whole-cluster power failure with replica sets: every node
            # of every set restarts, drops its unsynced tail, re-elects
            # by durable log length, resolves in-doubt prepares, and
            # resyncs its peers (replica sets mutate in place; the
            # recovered cluster shares them via the __dict__ carry-over).
            for replica_set in self.replica_sets:
                resolution = replica_set.recover_all(self.coordinator_log)
                in_doubt_resolved += sum(resolution.values())
                recovered.shards.append(replica_set.leader_db)
        else:
            for i, shard in enumerate(self.shards):
                resolution = resolve_in_doubt(shard.wal, self.coordinator_log)
                in_doubt_resolved += sum(resolution.values())
                rebuilt = MultiModelDatabase.recover(shard.wal)
                rebuilt.name = f"shard{i}"
                rebuilt._next_edge_id = max(
                    rebuilt._next_edge_id, 1 + i * _EDGE_ID_STRIDE
                )
                recovered.shards.append(rebuilt)
        if in_doubt_resolved:
            recovered.coordinator.stats.incr("recovered_in_doubt", in_doubt_resolved)
        # Every in-doubt participant now carries a durable verdict in its
        # own WAL (resolve_in_doubt force-syncs), so no coordinator record
        # — ended, in-flight, or crash-resolved — can ever be consulted
        # again.  Checkpoint the whole durable log; it stops growing
        # across crash/recovery cycles (global-id floor preserved).
        recovered.coordinator_log.checkpoint()
        if old_obs is not None:
            from repro.obs.core import Observability

            fresh = Observability(
                enabled=old_obs.enabled,
                tracing=old_obs.tracing,
                slow_query_ms=old_obs.slow_log.threshold_ms,
                slow_log_capacity=old_obs.slow_log.capacity,
            )
            recovered._register_observability(fresh)
            recovered.__dict__["_observability"] = fresh
        return recovered

    # -- queries -------------------------------------------------------------

    def query_context(self) -> "ShardedQueryContext":
        return ShardedQueryContext(self)

    def query(
        self,
        text: str,
        params: dict[str, Any] | None = None,
        use_indexes: bool = True,
        use_compiled: bool = True,
        use_batches: bool = True,
        use_fusion: bool = True,
        batch_size: int | None = None,
        session: ClusterSessionToken | None = None,
    ) -> list[Any]:
        """One MMQL query on a fresh context, optionally session-bound.

        With replication, *session* upgrades the read to session
        consistency: each shard's snapshot may come from a follower only
        once that follower has applied the token's per-shard floor
        (read-your-writes), and the snapshot observed raises the floor
        (monotonic reads — this session never reads backwards, even
        across a failover).  Without a token, reads route by the
        cluster's configured ``read_preference``.
        """
        return self._execute_on(
            ShardedQueryContext(self, session=session), text, params,
            use_indexes, use_compiled, use_batches, use_fusion, batch_size,
        )

    def plan_catalog(self) -> ShardRouter:
        """Planning catalog: EXPLAIN and the plan cache see routing."""
        return self.router

    def catalog_epoch(self) -> int:
        """Cluster plan-cache version: shard-map + per-shard index DDL.

        Both components only grow, so the sum is monotonic; any shard-map
        registration or index create on any shard invalidates cached
        plans cluster-wide.
        """
        return self.router.epoch + sum(
            shard.catalog_epoch for shard in self.shards
        )

    # -- observability -------------------------------------------------------

    def _register_observability(self, obs) -> None:
        """Plan cache (base) + cluster-wide sums of per-shard engine state.

        WAL and lock-table collectors sum across the *current*
        ``self.shards`` list at snapshot time, so after crash recovery
        (which replaces the shard instances) a rebuilt bundle reads the
        live shards.  The coordinator additionally gets the bundle
        pushed onto it for 2PC latency/outcome instrumentation.
        """
        super()._register_observability(obs)
        from repro.faults.registry import FAULTS

        obs.registry.register_collector("faults", FAULTS.metrics)
        obs.registry.register_collector("wal", self._wal_metrics)
        obs.registry.register_collector("locks", self._lock_metrics)
        obs.registry.register_collector("txn", self._txn_metrics)
        if self.pool_mode == "processes":
            obs.registry.register_collector("procpool", self._procpool_metrics)
        if self.replica_sets:
            obs.registry.register_collector(
                "replication", self._replication_metrics
            )
            for replica_set in self.replica_sets:
                replica_set.obs = obs
        self.coordinator.obs = obs

    def _sum_shard_metrics(self, metrics_of) -> dict[str, int]:
        totals: dict[str, int] = {}
        for shard in self.shards:
            for key, value in metrics_of(shard).items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def _wal_metrics(self) -> dict[str, int]:
        return self._sum_shard_metrics(lambda shard: shard.wal.metrics())

    def _procpool_metrics(self) -> dict[str, int]:
        pool = self._remote_pool
        return pool.metrics() if pool is not None else {"workers": 0}

    def _lock_metrics(self) -> dict[str, int]:
        return self._sum_shard_metrics(lambda shard: shard.manager.locks.metrics())

    def _replication_metrics(self) -> dict[str, Any]:
        """Per-shard replica-set gauges plus the coordinator log's copies.

        Rendered by the registry as ``repro_replication_<key>`` gauges —
        the per-follower ``shardN_lag_records_replicaM`` /
        ``lag_seconds`` values are the follower-freshness signal.
        """
        out: dict[str, Any] = {}
        if isinstance(self.coordinator_log, ReplicatedCoordinatorLog):
            for key, value in self.coordinator_log.replication_metrics().items():
                out[key] = value
        for replica_set in self.replica_sets:
            for key, value in replica_set.metrics().items():
                out[f"shard{replica_set.shard_id}_{key}"] = value
        return out

    def _txn_metrics(self) -> dict[str, Any]:
        out = self._sum_shard_metrics(
            lambda shard: {
                "commits": shard.manager.commits,
                "aborts": shard.manager.aborts,
                "conflicts": shard.manager.conflicts,
            }
        )
        out.update(self.coordinator.stats.as_dict())
        out["coordinator_log_appends"] = self.coordinator_log.appends
        out["coordinator_log_syncs"] = self.coordinator_log.syncs
        return out

    # -- introspection -------------------------------------------------------

    def list_collections(self) -> dict[str, list[str]]:
        """Names per model family (identical DDL on every shard)."""
        return self.shards[0].list_collections()

    def stats(self) -> dict[str, Any]:
        """Cluster-correct entity counts.

        Sharded collections sum across shards; broadcast containers
        (graph vertices, any configured broadcast table/collection)
        count one replica.  A ``shards`` section carries per-shard
        record totals for ops visibility.  Each (shard, collection)
        chain is walked exactly once; both views derive from that pass.
        """
        counts: dict[str, Any] = {
            "tables": 0, "rows": 0, "collections": 0, "documents": 0,
            "xml_collections": 0, "xml_documents": 0, "kv_namespaces": 0,
            "kv_pairs": 0, "graphs": 0, "vertices": 0, "edges": 0,
        }
        per_shard = [
            {"rows": 0, "documents": 0, "xml_documents": 0, "kv_pairs": 0,
             "vertices": 0, "edges": 0}
            for _ in self.shards
        ]
        # One snapshot timestamp per shard, captured up front, so every
        # collection of a shard is counted at the same instant.
        snapshots = [shard.manager.current_ts for shard in self.shards]

        def tally(model: Model, name: str, placement_name: str, key: str) -> int:
            """Count once per shard; feed the shard section; return the
            dedup-aware cluster total."""
            by_shard = [
                shard.count_live(model, name, ts)
                for shard, ts in zip(self.shards, snapshots)
            ]
            for section, n in zip(per_shard, by_shard):
                section[key] += n
            if self.router.spec(placement_name).broadcast:
                return by_shard[0]
            return sum(by_shard)

        listing = self.list_collections()
        for name in listing["tables"]:
            counts["tables"] += 1
            counts["rows"] += tally(Model.RELATIONAL, name, name, "rows")
        for name in listing["collections"]:
            counts["collections"] += 1
            counts["documents"] += tally(Model.DOCUMENT, name, name, "documents")
        for name in listing["xml_collections"]:
            counts["xml_collections"] += 1
            counts["xml_documents"] += tally(Model.XML, name, name, "xml_documents")
        for name in listing["kv_namespaces"]:
            counts["kv_namespaces"] += 1
            counts["kv_pairs"] += tally(Model.KEY_VALUE, name, name, "kv_pairs")
        for name in listing["graphs"]:
            counts["graphs"] += 1
            counts["vertices"] += tally(Model.GRAPH_VERTEX, name, name, "vertices")
            counts["edges"] += tally(
                Model.GRAPH_EDGE, name, edges_placement_name(name), "edges"
            )
        counts["shards"] = {
            f"shard_{i}": section for i, section in enumerate(per_shard)
        }
        counts["placement"] = self.router.describe()
        counts["txn"] = dict(
            self.coordinator.stats.as_dict(),
            mode="2pc" if self.two_phase_commit else "best_effort",
        )
        if self.replica_sets:
            config = self.replication
            counts["replication"] = {
                "replicas_per_shard": config.replicas_per_shard,
                "write_acks": config.write_acks,
                "read_preference": config.read_preference,
                "max_lag_records": config.max_lag_records,
                "shards": {
                    f"shard_{rs.shard_id}": rs.metrics()
                    for rs in self.replica_sets
                },
            }
        return counts

    # -- internals -----------------------------------------------------------

    def _begin_shard(self, shard_id: int, isolation: IsolationLevel) -> Session:
        with self._shard_locks[shard_id]:
            return self.shards[shard_id].begin(isolation)

    def _finish_shard(self, shard_id: int, session: Session, commit: bool) -> None:
        with self._shard_locks[shard_id]:
            if session.txn.state.value != "active":
                return
            had_writes = not session.txn.is_read_only
            if commit and had_writes and self.replica_sets:
                # Degraded fail-fast: a shard that already lost its
                # quorum refuses the write *before* committing locally
                # (committing first would leave a durable-but-never-
                # acknowledged record per attempt).  The probe doubles
                # as auto-recovery once followers are back.
                try:
                    self.replica_sets[shard_id].ensure_writable()
                except ClusterError:
                    session.abort()
                    raise
            if commit:
                session.commit()
            else:
                session.abort()
        if commit and had_writes and self.replica_sets:
            # The write-ack quorum: the commit is durable on the leader;
            # acknowledgement additionally requires the WAL to reach
            # acks_needed replicas (raises ClusterError when it cannot).
            self.replica_sets[shard_id].replicate()


class _ShardParticipant:
    """One shard's view of a 2PC transaction, for the coordinator.

    Serialises every protocol step through the cluster's per-shard lock
    — the same discipline transaction begin/finish already follows.
    """

    def __init__(self, db: ShardedDatabase, shard_id: int, session: Session) -> None:
        self.db = db
        self.shard_id = shard_id
        self.session = session

    def prepare(self, global_id: int) -> None:
        sets = self.db.replica_sets
        if sets:
            # Degraded fail-fast: refuse the YES vote while this
            # shard's quorum is lost — a prepare that cannot quorum-
            # replicate would wedge the global txn in doubt anyway.
            sets[self.shard_id].ensure_writable()
        with self.db._shard_locks[self.shard_id]:
            self.session.prepare(global_id)
        try:
            self._replicate()
        except ClusterError:
            # The YES vote never reached a quorum, so this shard may
            # still abort unilaterally — and must, or the prepared txn
            # stays pinned forever: the coordinator only releases
            # participants whose prepare() returned.  The abort record
            # ships to the replicas when they rejoin.
            with self.db._shard_locks[self.shard_id]:
                self.session.abort_prepared()
            raise

    def commit_prepared(self) -> int:
        with self.db._shard_locks[self.shard_id]:
            commit_ts = self.session.commit_prepared()
        self._replicate()
        return commit_ts

    def abort_prepared(self) -> None:
        with self.db._shard_locks[self.shard_id]:
            self.session.abort_prepared()
        self._replicate()

    def _replicate(self) -> None:
        """Quorum-ship each protocol step's WAL records to the replicas.

        Prepares must reach the quorum *before* the coordinator's
        decision (a promoted follower has to know about the in-doubt
        txn to resolve it), and the commit/abort verdict must reach it
        before the coordinator acknowledges.
        """
        sets = self.db.replica_sets
        if sets:
            sets[self.shard_id].replicate()


class ShardedSession:
    """Routes the Session API across per-shard transactions.

    Per-shard sessions open lazily on first touch; commit/abort closes
    every open one.  Routing mirrors the placement table in the module
    docstring; operations without a routable key broadcast (writes) or
    gather (reads) across all shards.
    """

    def __init__(
        self,
        db: ShardedDatabase,
        isolation: IsolationLevel,
        token: ClusterSessionToken | None = None,
    ) -> None:
        self.db = db
        self.isolation = isolation
        self._token = token
        self._sessions: dict[int, Session] = {}
        self.active = True
        # With tracing on, each write transaction gets its own trace id,
        # stamped onto the coordinator's 2PC decision record so a commit
        # point can be correlated with client-side activity.  Read from
        # the instance dict directly: a cluster that never built its
        # observability bundle pays nothing here.
        obs = db.__dict__.get("_observability")
        self.trace_id: int | None = (
            obs.next_trace_id() if obs is not None and obs.tracing else None
        )
        # True when a best-effort commit failed *after* at least one
        # shard had already committed — the writes on those shards are
        # durable, so the transaction must not be blindly retried.
        # Unreachable under the 2PC commit mode: a single-shard commit
        # has one commit point and a cross-shard one aborts atomically.
        self.partially_committed = False

    # -- lifecycle -----------------------------------------------------------

    def commit(self) -> None:
        """Commit every touched shard.

        One shard wrote → that shard's ordinary atomic commit (the fast
        path).  Several shards wrote → two-phase commit (all-or-nothing)
        when the cluster runs in 2PC mode, shard-by-shard best effort
        otherwise.
        """
        self._close(commit=True)

    def abort(self) -> None:
        self._close(commit=False)

    def _close(self, commit: bool) -> None:
        if not self.active:
            return
        self.active = False
        sessions = sorted(self._sessions.items())
        try:
            writers = [(sid, s) for sid, s in sessions if not s.txn.is_read_only]
            if commit and self.db.two_phase_commit and len(writers) > 1:
                self._close_two_phase(sessions, writers)
            else:
                self._close_per_shard(sessions, commit)
                if commit and self.db.two_phase_commit and writers:
                    self.db.coordinator.stats.incr("fast_path_commits")
            if commit and self._token is not None:
                # Raise the session's read-your-writes floors: a follower
                # may serve this session's reads on a shard only once it
                # has applied past the commit we just made there.
                for shard_id, _ in writers:
                    self._token.observe(
                        shard_id, self.db.shards[shard_id].manager.current_ts
                    )
        finally:
            self._sessions.clear()

    def _close_per_shard(
        self, sessions: list[tuple[int, Session]], commit: bool
    ) -> None:
        """Commit/abort shard by shard.

        This is both the single-writer fast path (at most one shard has
        writes, so its ordinary commit is the only commit point and no
        extra WAL records exist) and the ``two_phase_commit=False``
        best-effort mode, where a late conflict after an earlier shard
        committed leaves the transaction partially applied.
        """
        error: BaseException | None = None
        writes_committed = 0
        for shard_id, session in sessions:
            had_writes = not session.txn.is_read_only
            try:
                self.db._finish_shard(shard_id, session, commit and error is None)
                if commit and error is None and had_writes:
                    writes_committed += 1
            except BaseException as exc:  # conflict: abort the remainder
                error = exc
        if error is not None:
            self.partially_committed = commit and writes_committed > 0
            raise error

    def _close_two_phase(
        self,
        sessions: list[tuple[int, Session]],
        writers: list[tuple[int, Session]],
    ) -> None:
        """Cross-shard commit: prepare-all → durable decision → commit-all."""
        # Read-only participants vote READ-ONLY and drop out: nothing to
        # make durable, nothing to redo.
        for shard_id, session in sessions:
            if session.txn.is_read_only:
                self.db._finish_shard(shard_id, session, commit=True)
        participants = [
            (shard_id, _ShardParticipant(self.db, shard_id, session))
            for shard_id, session in writers
        ]
        try:
            self.db.coordinator.commit(participants, trace_id=self.trace_id)
        except SimulatedCrash:
            # A crash mid-protocol must leave prepared participants in
            # doubt — that is the state recovery exists to resolve.
            raise
        except BaseException:
            # The coordinator already aborted every *prepared*
            # participant; abort the still-active rest (the NO voter was
            # aborted by its own manager during prepare).
            for shard_id, session in writers:
                self.db._finish_shard(shard_id, session, commit=False)
            raise

    def _shard(self, shard_id: int) -> Session:
        session = self._sessions.get(shard_id)
        if session is None:
            session = self.db._begin_shard(shard_id, self.isolation)
            self._sessions[shard_id] = session
        return session

    def _route(self, collection: str, key_value: Any) -> Session:
        return self._shard(self.db.router.shard_for(collection, key_value))

    def _all(self) -> list[Session]:
        return [self._shard(i) for i in range(self.db.n_shards)]

    def _spec(self, collection: str) -> ShardSpec:
        return self.db.router.spec(collection)

    # -- relational ----------------------------------------------------------

    def _table_route_value(self, table: str, row_or_pk: Any, is_pk: bool) -> Any:
        spec = self._spec(table)
        if spec.key == PK_SENTINEL:  # composite primary key: route by tuple
            if is_pk:
                return tuple(row_or_pk)
            schema = self.db.table_schema(table)
            return tuple(row_or_pk[c] for c in schema.primary_key)
        if is_pk:
            return row_or_pk[0]
        return row_or_pk.get(spec.key)

    def sql_insert(self, table: str, values: dict[str, Any]) -> tuple[Any, ...]:
        spec = self._spec(table)
        if spec.broadcast:
            results = [s.sql_insert(table, values) for s in self._all()]
            return results[0]
        schema = self.db.table_schema(table)
        row = schema.validate_row(dict(values))
        return self._route(
            table, self._table_route_value(table, row, is_pk=False)
        ).sql_insert(table, values)

    def sql_get(self, table: str, pk: tuple[Any, ...]) -> dict[str, Any] | None:
        spec = self._spec(table)
        if spec.broadcast:
            return self._shard(0).sql_get(table, pk)
        if spec.key_is_record_id or spec.key == PK_SENTINEL:
            return self._route(
                table, self._table_route_value(table, tuple(pk), is_pk=True)
            ).sql_get(table, pk)
        for session in self._all():  # custom shard key: search
            row = session.sql_get(table, pk)
            if row is not None:
                return row
        return None

    def sql_update(
        self, table: str, pk: tuple[Any, ...], changes: dict[str, Any]
    ) -> dict[str, Any]:
        spec = self._spec(table)
        if spec.broadcast:
            results = [s.sql_update(table, pk, changes) for s in self._all()]
            return results[0]
        if spec.key_is_record_id or spec.key == PK_SENTINEL:
            return self._route(
                table, self._table_route_value(table, tuple(pk), is_pk=True)
            ).sql_update(table, pk, changes)
        for session in self._all():
            current = session.sql_get(table, pk)
            if current is not None:
                if spec.key in changes and changes[spec.key] != current.get(spec.key):
                    from repro.errors import ConstraintError

                    raise ConstraintError(
                        f"cannot change shard key {spec.key!r} of a row "
                        f"in sharded table {table!r}"
                    )
                return session.sql_update(table, pk, changes)
        from repro.errors import ConstraintError

        raise ConstraintError(f"no row {pk!r} in {table!r}")

    def sql_delete(self, table: str, pk: tuple[Any, ...]) -> bool:
        spec = self._spec(table)
        if spec.broadcast:
            return any([s.sql_delete(table, pk) for s in self._all()])
        if spec.key_is_record_id or spec.key == PK_SENTINEL:
            return self._route(
                table, self._table_route_value(table, tuple(pk), is_pk=True)
            ).sql_delete(table, pk)
        return any(session.sql_delete(table, pk) for session in self._all())

    def sql_scan(
        self, table: str, predicate: Predicate | None = None
    ) -> Iterator[dict[str, Any]]:
        sessions = [self._shard(0)] if self._spec(table).broadcast else self._all()
        for session in sessions:
            yield from session.sql_scan(table, predicate)

    def sql_find(self, table: str, field: str, value: Any) -> list[dict[str, Any]]:
        spec = self._spec(table)
        if spec.broadcast:
            return self._shard(0).sql_find(table, field, value)
        if field == spec.key:
            return self._route(table, value).sql_find(table, field, value)
        out: list[dict[str, Any]] = []
        for session in self._all():
            out.extend(session.sql_find(table, field, value))
        return out

    # -- documents -----------------------------------------------------------

    def _doc_route_value(self, collection: str, doc_id: Any) -> Session | None:
        """Session owning *doc_id*, or None when the key is not the id."""
        spec = self._spec(collection)
        if spec.broadcast:
            return self._shard(0)
        if spec.key_is_record_id:
            return self._route(collection, doc_id)
        return None

    def doc_insert(self, collection: str, doc: dict[str, Any]) -> str | int:
        spec = self._spec(collection)
        if spec.broadcast:
            results = [s.doc_insert(collection, doc) for s in self._all()]
            return results[0]
        key_value = doc.get(spec.key)
        if spec.key != "_id":
            if spec.key not in doc:
                raise EngineError(
                    f"document for sharded collection {collection!r} lacks "
                    f"shard key {spec.key!r}"
                )
            # The _id no longer determines placement, so the per-shard
            # duplicate check cannot see a same-_id doc on another shard
            # — enforce cluster-wide _id uniqueness here.  The broadcast
            # read catches already-committed duplicates early; it is
            # *not* atomic, so under 2PC the _id is also reserved on its
            # hash-owner shard inside the same transaction: two
            # concurrent same-_id inserts, wherever their shard keys
            # route them, become a write-write conflict on the owner and
            # the prepare round aborts one.
            if "_id" in doc and self.doc_get(collection, doc["_id"]) is not None:
                from repro.errors import DocumentError

                raise DocumentError(
                    f"duplicate _id {doc['_id']!r} in {collection!r}"
                )
            if "_id" in doc and self.db.two_phase_commit:
                owner = self.db.router.id_owner_shard(doc["_id"])
                self._shard(owner).reserve_id(collection, doc["_id"])
        return self._route(collection, key_value).doc_insert(collection, doc)

    def doc_get(self, collection: str, doc_id: str | int) -> dict[str, Any] | None:
        routed = self._doc_route_value(collection, doc_id)
        if routed is not None:
            return routed.doc_get(collection, doc_id)
        for session in self._all():
            doc = session.doc_get(collection, doc_id)
            if doc is not None:
                return doc
        return None

    def doc_update(
        self, collection: str, doc_id: str | int, changes: dict[str, Any]
    ) -> dict[str, Any]:
        spec = self._spec(collection)
        if spec.broadcast:
            results = [s.doc_update(collection, doc_id, changes) for s in self._all()]
            return results[0]
        routed = self._doc_route_value(collection, doc_id)
        if routed is not None:
            return routed.doc_update(collection, doc_id, changes)
        for session in self._all():
            current = session.doc_get(collection, doc_id)
            if current is not None:
                # Placement follows the shard key: changing it would
                # strand the document on the wrong shard, so reject —
                # the same stance the engine takes on _id changes.
                if spec.key in changes and changes[spec.key] != current.get(spec.key):
                    from repro.errors import DocumentError

                    raise DocumentError(
                        f"cannot change shard key {spec.key!r} of a document "
                        f"in sharded collection {collection!r}"
                    )
                return session.doc_update(collection, doc_id, changes)
        from repro.errors import DocumentError

        raise DocumentError(f"no document {doc_id!r} in {collection!r}")

    def doc_delete(self, collection: str, doc_id: str | int) -> bool:
        spec = self._spec(collection)
        if spec.broadcast:
            return any([s.doc_delete(collection, doc_id) for s in self._all()])
        routed = self._doc_route_value(collection, doc_id)
        if routed is not None:
            return routed.doc_delete(collection, doc_id)
        deleted = any(session.doc_delete(collection, doc_id) for session in self._all())
        if deleted and self.db.two_phase_commit:
            # Custom shard key: the insert reserved this _id on its
            # owner shard — release it in the same transaction so the
            # registry tracks the live id population.
            owner = self.db.router.id_owner_shard(doc_id)
            self._shard(owner).release_id(collection, doc_id)
        return deleted

    def doc_scan(self, collection: str) -> Iterator[dict[str, Any]]:
        sessions = [self._shard(0)] if self._spec(collection).broadcast else self._all()
        for session in sessions:
            yield from session.doc_scan(collection)

    def doc_find(self, collection: str, field: str, value: Any) -> list[dict[str, Any]]:
        spec = self._spec(collection)
        if spec.broadcast:
            return self._shard(0).doc_find(collection, field, value)
        if field == spec.key:
            return self._route(collection, value).doc_find(collection, field, value)
        out: list[dict[str, Any]] = []
        for session in self._all():
            out.extend(session.doc_find(collection, field, value))
        return out

    # -- XML -----------------------------------------------------------------

    def xml_put(self, collection: str, doc_id: str | int, tree: XmlElement) -> None:
        self._route(collection, doc_id).xml_put(collection, doc_id, tree)

    def xml_get(self, collection: str, doc_id: str | int) -> XmlElement | None:
        return self._route(collection, doc_id).xml_get(collection, doc_id)

    def xml_delete(self, collection: str, doc_id: str | int) -> bool:
        return self._route(collection, doc_id).xml_delete(collection, doc_id)

    def xml_scan(self, collection: str) -> Iterator[tuple[str | int, XmlElement]]:
        for session in self._all():
            yield from session.xml_scan(collection)

    def xml_xpath(self, collection: str, doc_id: str | int, path: str) -> list[Any]:
        tree = self.xml_get(collection, doc_id)
        if tree is None:
            return []
        return XPath(path).find(tree)

    # -- key-value -----------------------------------------------------------

    def kv_put(self, namespace: str, key: str, value: Any) -> None:
        self._route(namespace, key).kv_put(namespace, key, value)

    def kv_get(self, namespace: str, key: str, default: Any = None) -> Any:
        return self._route(namespace, key).kv_get(namespace, key, default)

    def kv_delete(self, namespace: str, key: str) -> bool:
        return self._route(namespace, key).kv_delete(namespace, key)

    def kv_scan_prefix(self, namespace: str, prefix: str) -> list[tuple[str, Any]]:
        out: list[tuple[str, Any]] = []
        for session in self._all():
            out.extend(session.kv_scan_prefix(namespace, prefix))
        out.sort(key=lambda pair: pair[0])
        return out

    def kv_scan_range(
        self, namespace: str, low: str, high: str, limit: int | None = None
    ) -> list[tuple[str, Any]]:
        out: list[tuple[str, Any]] = []
        for session in self._all():
            # Per-shard limit bounds the gather to n_shards*limit pairs;
            # the global sort+cut below keeps the answer exact.
            out.extend(session.kv_scan_range(namespace, low, high, limit))
        out.sort(key=lambda pair: pair[0])
        return out if limit is None else out[:limit]

    # -- graph ---------------------------------------------------------------

    def _edge_shard(self, graph: str, src: Any) -> Session:
        return self._shard(self.db.router.shard_for(edges_placement_name(graph), src))

    def graph_add_vertex(
        self, graph: str, vertex_id: Any, label: str, **properties: Any
    ) -> Vertex:
        results = [
            s.graph_add_vertex(graph, vertex_id, label, **properties)
            for s in self._all()
        ]
        return results[0]

    def graph_vertex(self, graph: str, vertex_id: Any) -> Vertex | None:
        return self._shard(0).graph_vertex(graph, vertex_id)

    def graph_update_vertex(self, graph: str, vertex_id: Any, **changes: Any) -> Vertex:
        results = [
            s.graph_update_vertex(graph, vertex_id, **changes) for s in self._all()
        ]
        return results[0]

    def graph_add_edge(
        self, graph: str, src: Any, dst: Any, label: str, **properties: Any
    ) -> Edge:
        return self._edge_shard(graph, src).graph_add_edge(
            graph, src, dst, label, **properties
        )

    def graph_remove_edge(self, graph: str, edge_id: int) -> bool:
        # Edge ids are striped per shard, so at most one shard has it.
        return any(s.graph_remove_edge(graph, edge_id) for s in self._all())

    def graph_out_edges(
        self, graph: str, vertex_id: Any, label: str | None = None
    ) -> list[Edge]:
        return self._edge_shard(graph, vertex_id).graph_out_edges(
            graph, vertex_id, label
        )

    def graph_in_edges(
        self, graph: str, vertex_id: Any, label: str | None = None
    ) -> list[Edge]:
        out: list[Edge] = []
        for session in self._all():
            out.extend(session.graph_in_edges(graph, vertex_id, label))
        return out

    def graph_out_neighbors(
        self, graph: str, vertex_id: Any, label: str | None = None
    ) -> list[Vertex]:
        out = []
        for edge in self.graph_out_edges(graph, vertex_id, label):
            v = self.graph_vertex(graph, edge.dst)
            if v is not None:
                out.append(v)
        return out

    def graph_in_neighbors(
        self, graph: str, vertex_id: Any, label: str | None = None
    ) -> list[Vertex]:
        out = []
        for edge in self.graph_in_edges(graph, vertex_id, label):
            v = self.graph_vertex(graph, edge.src)
            if v is not None:
                out.append(v)
        return out

    def graph_traverse(
        self,
        graph: str,
        start: Any,
        min_depth: int,
        max_depth: int,
        edge_label: str | None = None,
    ) -> list[Any]:
        """Cross-shard BFS: each hop reads the source vertex's edge shard."""
        if self.graph_vertex(graph, start) is None:
            raise GraphError(f"no vertex {start!r} in {graph!r}")
        return bfs_depth_range(
            start, min_depth, max_depth,
            lambda vid: self.graph_out_edges(graph, vid, edge_label),
        )

    def graph_vertices(self, graph: str, label: str | None = None) -> Iterator[Vertex]:
        yield from self._shard(0).graph_vertices(graph, label)

    def graph_edges(self, graph: str, label: str | None = None) -> Iterator[Edge]:
        for session in self._all():
            yield from session.graph_edges(graph, label)


class ShardedQueryContext:
    """QueryContext over per-shard read snapshots, plus the catalog.

    Carries the :class:`ShardRouter` as ``catalog`` so the executor's
    ``plan(query, catalog=...)`` call produces ShardExec scatter-gather
    plans, exposes per-shard contexts to those operators, and implements
    the full single-node protocol itself for everything above the gather
    (joins, COLLECT, builtin bridges).

    Shard snapshots open *lazily*, guarded by the cluster's per-shard
    locks (transaction begin/finish on a shard's manager is not
    thread-safe on its own): a routed point query begins exactly one
    per-shard transaction, not N.  Consequently each shard's snapshot is
    taken when the query first touches that shard — per-shard
    consistency, no cross-shard snapshot point (there never was one:
    eager opening also begins shard transactions at N different
    timestamps).
    """

    def __init__(
        self, db: ShardedDatabase, session: ClusterSessionToken | None = None
    ) -> None:
        self.db = db
        self.catalog = db.router
        self._token = session
        self._contexts: list[UnifiedQueryContext | None] = [None] * db.n_shards
        # The lock each open context's lifecycle is serialised under:
        # the cluster's per-shard lock for a leader snapshot, the
        # replica set's lock for a follower snapshot.
        self._ctx_locks: list[threading.Lock | None] = [None] * db.n_shards
        self._open_lock = threading.Lock()

    @property
    def n_shards(self) -> int:
        return self.db.n_shards

    def shard_context(self, shard_id: int) -> UnifiedQueryContext:
        ctx = self._contexts[shard_id]
        if ctx is None:
            with self._open_lock:
                ctx = self._contexts[shard_id]
                if ctx is None:
                    ctx = self._open_shard_context(shard_id)
                    self._contexts[shard_id] = ctx
        return ctx

    def _open_shard_context(self, shard_id: int) -> UnifiedQueryContext:
        """Open one shard's read snapshot, picking leader or follower.

        Without replication (or with ``read_preference="leader"`` and no
        session token) this is the classic path: a snapshot on the
        shard's live database under the cluster's per-shard lock.  With
        replication, :meth:`ReplicaSet.read_replica` routes by the
        configured preference — a session token upgrades the read to
        session consistency (the follower must have applied the token's
        per-shard floor, else the leader serves it).
        """
        sets = self.db.replica_sets
        if not sets:
            lock = self.db._shard_locks[shard_id]
            with lock:
                ctx = UnifiedQueryContext(self.db.shards[shard_id])
            self._ctx_locks[shard_id] = lock
            return ctx
        replica_set = sets[shard_id]
        preference = (
            "session" if self._token is not None
            else replica_set.config.read_preference
        )
        floor = self._token.floor(shard_id) if self._token is not None else 0
        replica = replica_set.read_replica(preference, floor)
        if replica.db is self.db.shards[shard_id]:
            lock = self.db._shard_locks[shard_id]
            with lock:
                ctx = UnifiedQueryContext(replica.db)
            if self._token is not None:
                self._token.observe(shard_id, replica.db.manager.current_ts)
        else:
            lock = replica_set._lock
            with lock:
                ctx = UnifiedQueryContext(replica.db)
            if self._token is not None:
                self._token.observe(shard_id, replica.applied_ts)
        self._ctx_locks[shard_id] = lock
        return ctx

    def run_parallel(self, tasks: list[Callable[[], Any]]) -> list[Any]:
        """Run thunks concurrently on the cluster pool (ordered results)."""
        pool = self.db.pool()
        if pool is None or len(tasks) <= 1:
            return [task() for task in tasks]
        futures = [pool.submit(task) for task in tasks]
        return [future.result() for future in futures]

    def remote_pool(self) -> Any:
        """The cluster's worker-process pool (None in ``pool="threads"``).

        ShardExec's scatter probes this to decide whether a multi-target
        subplan ships to worker processes or runs on the thread pool.
        """
        return self.db.remote_pool()

    def close(self) -> None:
        with self._open_lock:
            for shard_id, ctx in enumerate(self._contexts):
                if ctx is not None:
                    lock = self._ctx_locks[shard_id] or self.db._shard_locks[shard_id]
                    with lock:
                        ctx.close()
            self._contexts = [None] * self.db.n_shards
            self._ctx_locks = [None] * self.db.n_shards

    # -- placement helpers ---------------------------------------------------

    def _spec(self, collection: str) -> ShardSpec:
        return self.catalog.spec(collection)

    def _all_contexts(self) -> list[UnifiedQueryContext]:
        return [self.shard_context(i) for i in range(self.db.n_shards)]

    def _read_contexts(self, collection: str) -> list[UnifiedQueryContext]:
        if self._spec(collection).broadcast:
            return [self.shard_context(0)]
        return self._all_contexts()

    # -- QueryContext protocol -----------------------------------------------

    def iter_collection(self, name: str) -> Iterable[Any]:
        for ctx in self._read_contexts(name):
            yield from ctx.iter_collection(name)

    def index_lookup(
        self, collection: str, field: str, value: Any
    ) -> Iterable[Any] | None:
        spec = self._spec(collection)
        if spec.broadcast:
            return self.shard_context(0).index_lookup(collection, field, value)
        if field == spec.key or (field == "_id" and self.catalog.routes_record_id(collection)):
            # Shard-key (or record-id) equality: only one shard can hold it.
            ctx = self.shard_context(self.catalog.shard_for(collection, value))
            rows = ctx.index_lookup(collection, field, value)
            if rows is not None:
                return rows
            # No index on the routed shard: over-approximate with that
            # shard's scan — still 1/N of the data; the residual FILTER
            # keeps the answer exact.
            return list(ctx.iter_collection(collection))
        gathered: list[Any] = []
        for ctx in self._all_contexts():
            rows = ctx.index_lookup(collection, field, value)
            if rows is None:
                return None  # uniform DDL: no shard has the index
            gathered.extend(rows)
        return gathered

    def range_lookup(
        self,
        collection: str,
        field: str,
        low: Any,
        high: Any,
        include_low: bool,
        include_high: bool,
    ) -> Iterable[Any] | None:
        spec = self._spec(collection)
        if spec.broadcast:
            return self.shard_context(0).range_lookup(
                collection, field, low, high, include_low, include_high
            )
        shard_ids = None
        if field == spec.key:
            shard_ids = self.catalog.shards_for_range(collection, low, high)
        if shard_ids is None:
            shard_ids = self.catalog.all_shards()
        gathered: list[Any] = []
        for shard_id in shard_ids:
            rows = self.shard_context(shard_id).range_lookup(
                collection, field, low, high, include_low, include_high
            )
            if rows is None:
                return None
            gathered.extend(rows)
        return gathered

    # -- graph ---------------------------------------------------------------

    def _edge_ctx(self, graph: str, src: Any) -> UnifiedQueryContext:
        return self.shard_context(self.catalog.shard_for(edges_placement_name(graph), src))

    def traverse(
        self,
        graph: str,
        start: Any,
        min_depth: int,
        max_depth: int,
        edge_label: str | None,
    ) -> Iterable[Any]:
        """Cross-shard BFS over routed edge shards; vertices from shard 0."""
        v0 = self.shard_context(0)
        if v0.session.graph_vertex(graph, start) is None:
            raise GraphError(f"no vertex {start!r} in {graph!r}")
        order = bfs_depth_range(
            start, min_depth, max_depth,
            lambda vid: self._edge_ctx(graph, vid).session.graph_out_edges(
                graph, vid, edge_label
            ),
        )
        for vid in order:
            vertex = v0.session.graph_vertex(graph, vid)
            if vertex is not None:
                yield v0._vertex_dict(vertex)

    def vertices(self, graph: str, label: str | None) -> Iterable[Any]:
        yield from self.shard_context(0).vertices(graph, label)

    def edges(self, graph: str, label: str | None) -> Iterable[Any]:
        for ctx in self._all_contexts():
            yield from ctx.edges(graph, label)

    def shortest_path(
        self, graph: str, start: Any, goal: Any, edge_label: str | None
    ) -> list[Any] | None:
        if start == goal:
            return [start]
        from collections import deque

        parents: dict[Any, Any] = {start: start}
        queue: deque[Any] = deque([start])
        while queue:
            vid = queue.popleft()
            edge_session = self._edge_ctx(graph, vid).session
            for edge in edge_session.graph_out_edges(graph, vid, edge_label):
                if edge.dst in parents:
                    continue
                parents[edge.dst] = vid
                if edge.dst == goal:
                    path = [goal]
                    while path[-1] != start:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                queue.append(edge.dst)
        return None

    # -- KV / XML bridges ----------------------------------------------------

    def kv_get(self, namespace: str, key: str) -> Any:
        shard_id = self.catalog.shard_for(namespace, key)
        return self.shard_context(shard_id).kv_get(namespace, key)

    def kv_prefix(self, namespace: str, prefix: str) -> Iterable[Any]:
        gathered: list[Any] = []
        for ctx in self._all_contexts():
            gathered.extend(ctx.kv_prefix(namespace, prefix))
        gathered.sort(key=lambda pair: pair["key"])
        return gathered

    def xml_get(self, collection: str, doc_id: Any) -> Any:
        shard_id = self.catalog.shard_for(collection, doc_id)
        return self.shard_context(shard_id).xml_get(collection, doc_id)
