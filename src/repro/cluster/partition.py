"""Partitioners, per-collection sharding policy, and the shard router.

The cluster layer splits every model's collections across N shards.  Each
collection carries a :class:`ShardSpec` naming its shard-key field and a
pluggable :class:`Partitioner` (hash or range); collections without a
usable key — or deliberately replicated ones like graph vertices — are
*broadcast*: written to every shard and read from one.

The :class:`ShardRouter` is the single source of truth for placement.  It
doubles as the planner's *catalog*: ``plan(query, catalog=router)``
consults :meth:`ShardRouter.is_sharded` / :meth:`ShardRouter.shard_key`
to route shard-key equality predicates to one shard and to prune range
scans under a range partitioner.
"""

from __future__ import annotations

import bisect
import zlib
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import EngineError


def edges_placement_name(graph: str) -> str:
    """Router registry name for a graph's edge placement.

    The single source of the ``<graph>#edges`` naming scheme, shared by
    the cluster DDL (which registers the placement) and the bulk loader
    (which pre-groups edge batches by target shard).
    """
    return f"{graph}#edges"

# Spec key marking "route by the whole composite primary-key tuple".
# Internal to placement: shard_key() reports such specs as None because
# no single record field carries the routing value.
PK_SENTINEL = "\x00pk"


def stable_hash(value: Any) -> int:
    """A process-stable hash (Python's ``hash`` of str is salted per run).

    Placement must be deterministic across processes so a reloaded
    dataset lands on the same shards, and across runs so tests can pin
    expectations.  It must also be *equality-consistent* the way MMQL's
    ``==`` (Python equality) is: ``3 == 3.0 == True+2`` all route to the
    same shard, otherwise a float-typed key parameter would probe a
    different shard than the int-keyed record lives on and silently
    return nothing.
    """
    if isinstance(value, bool):
        value = int(value)
    elif isinstance(value, float) and value.is_integer():
        value = int(value)
    if value is None:
        data = b"n"
    elif isinstance(value, int):
        data = b"i" + str(value).encode()
    elif isinstance(value, float):
        data = b"f" + repr(value).encode()
    elif isinstance(value, str):
        data = b"s" + value.encode("utf-8")
    elif isinstance(value, tuple):
        data = b"t"
        for item in value:
            data += stable_hash(item).to_bytes(4, "big")
    else:
        data = b"r" + repr(value).encode()
    return zlib.crc32(data)


class Partitioner:
    """Maps a shard-key value to a shard index in ``range(n_shards)``."""

    def shard_of(self, value: Any, n_shards: int) -> int:
        raise NotImplementedError

    def shards_for_range(
        self, low: Any, high: Any, n_shards: int
    ) -> list[int] | None:
        """Shards that may hold keys in [low, high]; None = cannot prune."""
        return None

    def describe(self) -> str:
        return type(self).__name__


class HashPartitioner(Partitioner):
    """Stable-hash placement: uniform spread, no range pruning."""

    def shard_of(self, value: Any, n_shards: int) -> int:
        return stable_hash(value) % n_shards

    def describe(self) -> str:
        return "hash"


class RangePartitioner(Partitioner):
    """Ordered placement over explicit split points.

    ``boundaries`` holds the N-1 ascending split values for N shards;
    shard *i* owns ``boundaries[i-1] <= key < boundaries[i]``.  Range
    scans on the shard key prune to the shards overlapping the interval.
    """

    def __init__(self, boundaries: Sequence[Any]) -> None:
        self.boundaries = list(boundaries)
        for a, b in zip(self.boundaries, self.boundaries[1:]):
            if not a < b:
                raise EngineError(f"range boundaries not ascending: {a!r} !< {b!r}")

    def shard_of(self, value: Any, n_shards: int) -> int:
        if len(self.boundaries) != n_shards - 1:
            raise EngineError(
                f"range partitioner has {len(self.boundaries)} boundaries "
                f"for {n_shards} shards (needs {n_shards - 1})"
            )
        try:
            return bisect.bisect_right(self.boundaries, value)
        except TypeError as exc:
            raise EngineError(
                f"shard-key value {value!r} does not compare with range boundaries"
            ) from exc

    def shards_for_range(
        self, low: Any, high: Any, n_shards: int
    ) -> list[int] | None:
        try:
            lo = 0 if low is None else self.shard_of(low, n_shards)
            hi = n_shards - 1 if high is None else self.shard_of(high, n_shards)
        except EngineError:
            return None  # incomparable bound: over-approximate to all shards
        return list(range(lo, hi + 1))

    def describe(self) -> str:
        return f"range({len(self.boundaries) + 1} buckets)"


@dataclass(frozen=True)
class ShardSpec:
    """How one collection is placed across the shards.

    ``key`` is the shard-key field name (None = broadcast: every shard
    holds a full copy).  ``key_is_record_id`` marks specs whose key *is*
    the record identity (document ``_id``, a single-column primary key,
    XML doc ids, KV keys) so ``_id`` point lookups can route too.
    """

    kind: str  # table | collection | xml | kv | graph_vertex | graph_edge
    key: str | None
    partitioner: Partitioner = field(default_factory=HashPartitioner)
    key_is_record_id: bool = False

    @property
    def broadcast(self) -> bool:
        return self.key is None


class ShardRouter:
    """Placement oracle for one sharded database; the planner's catalog."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise EngineError(f"need at least one shard, got {n_shards}")
        self.n_shards = n_shards
        self._specs: dict[str, ShardSpec] = {}
        # Shard-map version: every registration changes routing inputs,
        # so it feeds the cluster's plan-cache epoch.
        self.epoch = 0

    # -- registration (called by ShardedDatabase DDL) -----------------------

    def register(self, collection: str, spec: ShardSpec) -> None:
        if collection in self._specs:
            raise EngineError(f"collection {collection!r} already registered")
        self._specs[collection] = spec
        self.epoch += 1

    def spec(self, collection: str) -> ShardSpec:
        spec = self._specs.get(collection)
        if spec is None:
            raise EngineError(f"no shard spec for collection {collection!r}")
        return spec

    def has(self, collection: str) -> bool:
        return collection in self._specs

    # -- placement ----------------------------------------------------------

    def shard_for(self, collection: str, key_value: Any) -> int:
        """The shard that owns *key_value* of *collection*."""
        spec = self.spec(collection)
        if spec.broadcast:
            return 0
        return spec.partitioner.shard_of(key_value, self.n_shards)

    def all_shards(self) -> list[int]:
        return list(range(self.n_shards))

    def shards_for_range(self, collection: str, low: Any, high: Any) -> list[int] | None:
        """Shards possibly holding shard-key values in [low, high]."""
        spec = self.spec(collection)
        if spec.broadcast:
            return [0]
        return spec.partitioner.shards_for_range(low, high, self.n_shards)

    def id_owner_shard(self, doc_id: Any) -> int:
        """The shard that *owns* a record id for uniqueness purposes.

        When a collection is sharded on a field other than ``_id``, two
        same-``_id`` documents can route to different shards, so no data
        shard can enforce cluster-wide ``_id`` uniqueness locally.  Each
        id instead has one hash-designated owner shard where inserts
        reserve it (a SYSTEM-model conflict key inside the same
        transaction), turning concurrent duplicate inserts into an
        ordinary write-write conflict on the owner.
        """
        return stable_hash(doc_id) % self.n_shards

    # -- planner catalog surface --------------------------------------------

    def is_sharded(self, collection: str) -> bool:
        """True when scans of *collection* must touch more than one shard."""
        spec = self._specs.get(collection)
        return spec is not None and not spec.broadcast and self.n_shards > 1

    def shard_key(self, collection: str) -> str | None:
        """The routable field name, or None (broadcast / composite key)."""
        spec = self._specs.get(collection)
        if spec is None or spec.key == PK_SENTINEL:
            return None
        return spec.key

    def routes_record_id(self, collection: str) -> bool:
        """True when ``_id`` equality can route (key is the record identity)."""
        spec = self._specs.get(collection)
        return spec is not None and spec.key_is_record_id and not spec.broadcast

    def describe(self) -> dict[str, str]:
        """collection -> human placement summary (for EXPLAIN and reports)."""
        out = {}
        for name, spec in sorted(self._specs.items()):
            if spec.broadcast:
                out[name] = "broadcast"
            else:
                out[name] = f"{spec.partitioner.describe()}({spec.key})"
        return out
