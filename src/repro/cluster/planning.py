"""Shard-aware planning: rewrite a physical plan for scatter-gather.

``apply_sharding`` runs as the last optimizer phase when ``plan()`` is
given a catalog (a :class:`~repro.cluster.partition.ShardRouter`).  It
rewrites the *bottom* of the operator chain — the first FOR's
NestedLoopBind over a sharded collection plus the maximal shard-safe
segment above it — into a single :class:`~repro.cluster.operators.ShardExec`
whose subplan runs per shard:

- **Routing** — an equality predicate on the collection's shard key
  (with a parameter/literal key) pins the subplan to one shard; range
  bounds on the shard key let a range partitioner prune shards.
- **Pushdown below the gather** — cheap Filters/LETs (field paths,
  comparisons, no builtin calls: exactly the planner's ``_is_cheap``
  predicate, which also guarantees thread safety in shard workers) run
  inside the shard workers; a SORT becomes per-shard sort + ordered
  merge (a parallel MergeSort); a fused TopK becomes per-shard partial
  top-(offset+count) + ordered merge + a global LIMIT; a bare LIMIT
  becomes a per-shard limit + global re-limit.
- **Two-phase aggregation** — a COLLECT whose keys and aggregate
  arguments are cheap (and which has no ``INTO`` group collection)
  splits into a per-shard ``HashAggregate(partial)`` below the gather
  plus a coordinator-side ``HashAggregate(final)`` that re-groups the
  shipped states and merges them (AVG merges exact ``(sum, count)``
  pairs).  Only partial group states cross the gather: the dominant
  cross-shard data movement for grouped queries drops from O(matching
  rows) to O(groups).  Grouped ``INTO`` stays single-phase above the
  gather — its member lists cannot decompose — and a plan already
  routed to one shard skips the split, since there is nothing to merge.

Everything above the gather still runs single-threaded against the
:class:`~repro.cluster.sharded.ShardedQueryContext`, which implements
the full QueryContext protocol — so joins, COLLECT, subqueries and
builtin bridges (DOCUMENT, KVGET, TRAVERSE...) are always correct even
when they cannot be parallelised.

**Serializability contract**: the subplan handed to ShardExec must be
a pure tree of physical operators over AST expressions — no captured
contexts, no open snapshots, no references above the gather.  The
``_is_cheap`` pushdown predicate enforces this implicitly (field paths,
literals, parameters and comparisons only), which is what lets the
process pool (``repro.cluster.remote``) pickle the subplan and ship it
to shard worker processes byte-for-byte: the compiled closures are
plan-time derivatives, dropped by ``__getstate__`` and rebuilt by
``__post_init__`` on the worker.  Anything unpicklable falls back to
the in-process thread scatter at dispatch time, never to a wrong
answer.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.cluster.operators import ShardExec
from repro.query.aggregates import DECOMPOSABLE
from repro.query.ast import (
    Aggregation,
    Binary,
    CollectClause,
    Expr,
    VarRef,
    free_variables,
)
from repro.query.physical import (
    ExpressionSource,
    Filter,
    HashAggregate,
    IndexEqLookup,
    IndexRangeScan,
    Let,
    Limit,
    NestedLoopBind,
    PhysicalOperator,
    Sort,
    TopK,
    field_path,
    render_expr,
)


def apply_sharding(
    root: PhysicalOperator, catalog: Any, notes: list[str]
) -> PhysicalOperator:
    """Rewrite *root* with a ShardExec gather when the bottom FOR is sharded."""
    from repro.query.planner import _is_cheap  # shared cost/safety predicate

    chain: list[PhysicalOperator] = []
    node: PhysicalOperator | None = root
    while node is not None:
        chain.append(node)
        node = node.child
    bottom = chain[-1]
    if not isinstance(bottom, NestedLoopBind):
        return root
    collection = getattr(bottom.access, "collection", None)
    if collection is None or not catalog.is_sharded(collection):
        return root
    shard_key = catalog.shard_key(collection)

    # -- shard-safe segment: bottom bind + cheap Filters/LETs/inner FORs ----
    segment: list[PhysicalOperator] = [bottom]  # bottom-first
    idx = len(chain) - 2
    while idx >= 0:
        op = chain[idx]
        if isinstance(op, Filter) and _is_cheap(op.condition):
            segment.append(op)
        elif isinstance(op, Let) and _is_cheap(op.value):
            segment.append(op)
        elif (
            isinstance(op, NestedLoopBind)
            and isinstance(op.access, ExpressionSource)
            and not op.access.is_var
            and _is_cheap(op.access.source)
        ):
            segment.append(op)  # e.g. FOR it IN o.items
        else:
            break
        idx -= 1

    route_field, route_expr = _find_route(bottom, segment, shard_key)
    range_field = range_low = range_high = None
    if route_expr is None and shard_key is not None:
        access = bottom.access
        if isinstance(access, IndexRangeScan) and access.field == shard_key:
            if _param_only(access.low_expr) and _param_only(access.high_expr):
                range_field = shard_key
                range_low, range_high = access.low_expr, access.high_expr

    subplan: PhysicalOperator | None = None
    for op in segment:
        subplan = replace(op, child=subplan)

    # -- split COLLECT into partial below / final above the gather ----------
    merge_keys: tuple = ()
    wrapper: PhysicalOperator | None = None
    final_agg: PhysicalOperator | None = None
    if idx >= 0 and route_expr is None and _splittable(chain[idx], _is_cheap):
        op = chain[idx]
        assert isinstance(op, HashAggregate)
        subplan = replace(op, mode="partial", child=subplan)
        final_agg = HashAggregate(_final_clause(op.clause), mode="final")
        notes.append(
            "sharding: COLLECT split into per-shard HashAggregate(partial) "
            "below the gather + HashAggregate(final) merging group states"
        )
        idx -= 1

    # -- push SORT / TopK / LIMIT below the gather --------------------------
    if final_agg is None and idx >= 0:
        op = chain[idx]
        if isinstance(op, TopK) and all(_is_cheap(k.expr) for k in op.keys):
            subplan = TopK(op.keys, _window(op.count, op.offset), None, subplan)
            merge_keys = op.keys
            wrapper = Limit(op.count, op.offset, None)
            notes.append(
                "sharding: TopK split into per-shard partial top-k "
                "+ ordered merge + global LIMIT"
            )
            idx -= 1
        elif isinstance(op, Sort) and all(_is_cheap(k.expr) for k in op.keys):
            subplan = Sort(op.keys, subplan)
            merge_keys = op.keys
            notes.append("sharding: SORT parallelised into per-shard sort + ordered merge")
            idx -= 1
        elif isinstance(op, Limit):
            subplan = Limit(_window(op.count, op.offset), None, subplan)
            wrapper = Limit(op.count, op.offset, None)
            notes.append("sharding: LIMIT pushed below the gather (per-shard prefix)")
            idx -= 1

    gather: PhysicalOperator = ShardExec(
        subplan=subplan,
        collection=collection,
        n_shards=catalog.n_shards,
        merge_keys=tuple(merge_keys),
        route_field=route_field,
        route_expr=route_expr,
        range_field=range_field,
        range_low=range_low,
        range_high=range_high,
    )
    if route_expr is not None:
        notes.append(
            f"sharding: shard-key equality {collection}.{route_field} == "
            f"{render_expr(route_expr)} routed to a single shard"
        )
    elif range_field is not None:
        notes.append(
            f"sharding: range bounds on {collection}.{range_field} "
            "prune shards at run time"
        )
    else:
        notes.append(
            f"sharding: scatter-gather over {catalog.n_shards} shards "
            f"for {collection}"
        )
    if final_agg is not None:
        gather = replace(final_agg, child=gather)
    if wrapper is not None:
        gather = replace(wrapper, child=gather)
    for j in range(idx, -1, -1):
        gather = replace(chain[j], child=gather)
    return gather


def _splittable(op: PhysicalOperator, is_cheap: Any) -> bool:
    """Can this COLLECT run as partial-per-shard + final-at-coordinator?

    Requires a single-phase HashAggregate whose key and aggregate
    expressions are cheap (pure, thread-safe in shard workers), whose
    functions all decompose (their ``merge`` is exact over any input
    partitioning), and which collects no ``INTO`` member lists — those
    embed whole bindings and cannot merge from partial states.
    """
    if not isinstance(op, HashAggregate) or op.mode != "single":
        return False
    clause = op.clause
    return (
        clause.into is None
        and all(agg.func in DECOMPOSABLE for agg in clause.aggregations)
        and all(is_cheap(expr) for _, expr in clause.keys)
        and all(is_cheap(agg.arg) for agg in clause.aggregations)
    )


def _final_clause(clause: CollectClause) -> CollectClause:
    """The coordinator-side clause: re-group partial rows by name.

    Partial rows already carry the computed key columns and the wrapped
    aggregate states under their output names, so the final phase reads
    plain variables — no re-evaluation of the original expressions.
    """
    return CollectClause(
        keys=tuple((name, VarRef(name)) for name, _ in clause.keys),
        aggregations=tuple(
            Aggregation(agg.var, agg.func, VarRef(agg.var))
            for agg in clause.aggregations
        ),
    )


def _window(count: Expr, offset: Expr | None) -> Expr:
    """The per-shard keep window: offset + count (offset may be None)."""
    return count if offset is None else Binary("+", count, offset)


def _param_only(expr: Expr | None) -> bool:
    """True when *expr* is evaluable before any binding exists (or absent)."""
    return expr is None or not free_variables(expr)


def _find_route(
    bottom: NestedLoopBind, segment: list[PhysicalOperator], shard_key: str | None
) -> tuple[str | None, Expr | None]:
    """An equality on the shard key that pins the bottom FOR to one shard."""
    if shard_key is None:
        return None, None
    access = bottom.access
    if (
        isinstance(access, IndexEqLookup)
        and access.field == shard_key
        and _param_only(access.key_expr)
    ):
        return shard_key, access.key_expr
    for op in segment:
        if isinstance(op, Filter) and not op.speculative:
            key_expr = _equality_key(op.condition, bottom.var, shard_key)
            if key_expr is not None:
                return shard_key, key_expr
    return None, None


def _equality_key(expr: Expr, var: str, shard_key: str) -> Expr | None:
    """Find ``var.<shard_key> == key`` (or reversed) inside an AND-tree."""
    if isinstance(expr, Binary) and expr.op == "AND":
        return _equality_key(expr.left, var, shard_key) or _equality_key(
            expr.right, var, shard_key
        )
    if not (isinstance(expr, Binary) and expr.op == "=="):
        return None
    for lhs, rhs in ((expr.left, expr.right), (expr.right, expr.left)):
        if field_path(lhs, var) == shard_key and _param_only(rhs):
            return rhs
    return None
