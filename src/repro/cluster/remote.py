"""Process-parallel shard execution: worker processes + a wire protocol.

Shard scatter used to fan out onto threads, which the GIL serialises —
N shards reduced *work* per shard (routing, pushdown, partial
aggregation) but bought no wall-clock.  This module makes the shard
boundary a real one: each shard's subplan runs in a **worker process**
that holds a synced replica of the shard, and everything crossing the
boundary — subplan trees, run parameters, result rows, ``AggPartial``
states, stats and trace spans, errors — travels as serialized frames.

Wire format (the whole protocol, deliberately small)::

    frame    := length payload
    length   := 4-byte big-endian unsigned int, len(payload)
    payload  := pickle.dumps((op, body), HIGHEST_PROTOCOL)

Coordinator → worker ops, each answered by exactly one reply frame:

=============  ==========================================================
``sync``       ship DDL records + committed writes so the worker's shard
               replica catches up to the coordinator's shard state
               (reply ``ok``)
``run``        execute a serialized subplan against one shard replica
               (reply ``result``, or ``need_plan`` when the referenced
               plan digest is not cached worker-side)
``ping``       health check (reply ``pong`` with pid + held replicas)
``shutdown``   graceful exit (reply ``bye``, then the process ends)
=============  ==========================================================

Any worker-side exception becomes an ``error`` reply carrying the
exception's module/class/message/traceback; the coordinator re-raises
the original class when it can be imported, else a
:class:`~repro.errors.ClusterError` with the remote traceback attached.

The communication-avoiding design (cf. the 2.5D-LU lineage in
PAPERS.md) is inherited from the planner: only pushed-down results
cross the boundary — partial top-k prefixes, O(groups) ``AggPartial``
states with exact ``Fraction`` sums and typed frozen group keys — so
frames stay small exactly when parallelism matters most.

Replica sync: the coordinator owns the authoritative shards in its own
process; workers hold read replicas rebuilt from the shard WAL — DDL
records replayed through ``MultiModelDatabase._replay_ddl`` and
committed writes applied in commit-timestamp order.  Staleness
detection is O(1) per query (the WAL's monotonic ``appends`` counter),
so a loaded-then-queried benchmark ships its data exactly once.

Lifecycle: workers spawn lazily (``fork`` start method when available),
restart transparently on crash (full resync + one retry, counted in
``restarts``), shut down gracefully with the cluster's ``close()``, and
are torn down and respawned by cluster crash/recovery.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import struct
import threading
import time
import traceback
from collections import OrderedDict
from time import perf_counter
from typing import Any

from repro.errors import ClusterError, FrameError, RemoteTimeout, WorkerDied
from repro.faults.registry import FAULTS

PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL
_LENGTH = struct.Struct(">I")
# A frame is one subplan, one sync delta or one shard's results — far
# below this; anything larger means a corrupt length prefix.
MAX_FRAME_BYTES = 1 << 30
# Worker-side compiled-subplan cache (per process, LRU).
WORKER_PLAN_CACHE = 64


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------


def encode_frame(message: Any) -> bytes:
    """One wire frame: 4-byte big-endian length prefix + pickle payload."""
    payload = pickle.dumps(message, PICKLE_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame payload of {len(payload)} bytes exceeds bound")
    return _LENGTH.pack(len(payload)) + payload


def decode_frame(data: bytes) -> Any:
    """Decode one full frame, validating the length prefix."""
    if len(data) < _LENGTH.size:
        raise FrameError(f"truncated frame header ({len(data)} bytes)")
    (length,) = _LENGTH.unpack_from(data)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds bound")
    if len(data) != _LENGTH.size + length:
        raise FrameError(
            f"frame length prefix says {length} payload bytes, got "
            f"{len(data) - _LENGTH.size}"
        )
    return pickle.loads(data[_LENGTH.size :])


def plan_digest(encoded: bytes) -> str:
    """Cache key for an encoded subplan (content-addressed)."""
    return hashlib.sha1(encoded).hexdigest()


class FrameChannel:
    """Framed request/response transport over one duplex pipe end.

    Frames are encoded/decoded by this module's codec; the underlying
    :class:`multiprocessing.connection.Connection` moves the raw bytes
    (and hands us spawn-compatible fd inheritance for free).  Byte and
    frame counters feed the pool's metrics collector.
    """

    def __init__(self, conn: Any) -> None:
        self.conn = conn
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, message: Any) -> None:
        self.send_bytes(encode_frame(message))

    def send_bytes(self, frame: bytes) -> None:
        self.conn.send_bytes(frame)
        self.frames_sent += 1
        self.bytes_sent += len(frame)

    def recv(self, timeout: float | None = None) -> Any:
        """Receive one frame; *timeout* (seconds) bounds the wait.

        A deadline miss raises :class:`~repro.errors.RemoteTimeout`
        without consuming anything from the pipe — the caller decides
        whether to retry against a restarted worker.
        """
        if timeout is not None and not self.conn.poll(timeout):
            raise RemoteTimeout(
                f"no reply frame within {timeout:.3f}s deadline"
            )
        frame = self.conn.recv_bytes()
        self.frames_received += 1
        self.bytes_received += len(frame)
        return decode_frame(frame)

    def request(self, message: Any, timeout: float | None = None) -> Any:
        self.send(message)
        return self.recv(timeout)

    def close(self) -> None:
        self.conn.close()


# ---------------------------------------------------------------------------
# Structured error propagation
# ---------------------------------------------------------------------------


def describe_exception(exc: BaseException) -> dict[str, Any]:
    """The wire form of a worker-side exception."""
    return {
        "module": type(exc).__module__,
        "name": type(exc).__qualname__,
        "message": str(exc),
        "traceback": "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
    }


def rebuild_exception(payload: dict[str, Any]) -> BaseException:
    """Reconstruct a worker-side exception on the coordinator.

    The original class is re-raised when it can be imported and is an
    exception type with a plain ``(message)`` constructor; anything else
    degrades to :class:`~repro.errors.ClusterError`.  Either way the
    remote traceback text rides along as ``remote_traceback``.
    """
    exc: BaseException | None = None
    try:
        module = __import__(payload["module"], fromlist=[payload["name"]])
        cls = getattr(module, payload["name"])
        if isinstance(cls, type) and issubclass(cls, BaseException):
            exc = cls(payload["message"])
    except Exception:
        exc = None
    if exc is None:
        exc = ClusterError(
            f"shard worker failed: {payload['name']}: {payload['message']}"
        )
    exc.remote_traceback = payload.get("traceback", "")  # type: ignore[attr-defined]
    return exc


# ---------------------------------------------------------------------------
# Worker process (child side)
# ---------------------------------------------------------------------------


class _ShardReplica:
    """One shard's read replica inside a worker process.

    Built and kept current purely from ``sync`` frames: DDL records
    replay through the same ``_replay_ddl`` path crash recovery uses,
    committed writes apply in commit-ts order through the store's
    ``apply_committed_write`` (which fires index and adjacency
    maintenance hooks).  The replica serves reads through a long-lived
    snapshot context reopened after every applied sync, so a query
    dispatched after a write always sees it.
    """

    def __init__(self, shard_id: int) -> None:
        from repro.engine.database import MultiModelDatabase

        self.shard_id = shard_id
        self.db = MultiModelDatabase(name=f"replica{shard_id}")
        self.ddl_applied = 0
        self.synced_ts = 0
        self._ctx: Any = None

    def apply_sync(
        self, ddl: list[dict[str, Any]], writes: list[tuple[int, Any, Any]]
    ) -> None:
        from repro.engine.records import Model

        for rec in ddl:
            self.db._replay_ddl(rec)
            self.ddl_applied += 1
        max_ts = self.synced_ts
        for ts, key, value in writes:
            self.db.store.apply_committed_write(ts, key, value, txn_id=0)
            if key.model is Model.GRAPH_EDGE and isinstance(key.key, int):
                self.db._next_edge_id = max(self.db._next_edge_id, key.key + 1)
            if ts > max_ts:
                max_ts = ts
        self.synced_ts = max_ts
        self.db.manager.current_ts = max(self.db.manager.current_ts, max_ts)
        if self._ctx is not None:
            self._ctx.close()
            self._ctx = None

    def context(self) -> Any:
        if self._ctx is None:
            from repro.drivers.unified import UnifiedQueryContext

            self._ctx = UnifiedQueryContext(self.db)
        return self._ctx


def _handle_sync(
    payload: dict[str, Any], replicas: dict[int, _ShardReplica]
) -> tuple[str, dict[str, Any]]:
    shard_id = payload["shard"]
    replica = replicas.get(shard_id)
    if replica is None:
        replica = replicas[shard_id] = _ShardReplica(shard_id)
    replica.apply_sync(payload["ddl"], payload["writes"])
    return (
        "ok",
        {
            "shard": shard_id,
            "ddl_applied": replica.ddl_applied,
            "synced_ts": replica.synced_ts,
        },
    )


def _handle_run(
    payload: dict[str, Any],
    replicas: dict[int, _ShardReplica],
    plans: OrderedDict[str, Any],
) -> tuple[str, dict[str, Any]]:
    from repro.query.executor import Executor

    shard_id = payload["shard"]
    replica = replicas.get(shard_id)
    if replica is None:
        raise ClusterError(f"run before sync for shard {shard_id}")
    digest = payload["digest"]
    plan = plans.get(digest)
    if plan is None:
        encoded = payload.get("plan")
        if encoded is None:
            # The coordinator thought this plan was already shipped
            # (e.g. the LRU evicted it) — ask for a resend.
            return ("need_plan", {"digest": digest})
        plan = pickle.loads(encoded)
        plans[digest] = plan
    plans.move_to_end(digest)
    while len(plans) > WORKER_PLAN_CACHE:
        plans.popitem(last=False)
    inject = payload.get("inject")
    if inject is not None:
        # Fault shipped by the coordinator (evaluated parent-side so a
        # one-shot rule is consumed exactly once even though forked
        # workers inherit a copy of the registry): a wedged or slow
        # worker is modelled as a sleep before doing the work.
        time.sleep(inject.get("seconds") or 3600.0)
    flags = payload["flags"]
    executor = Executor(
        replica.context(),
        use_indexes=flags["use_indexes"],
        use_compiled=flags["use_compiled"],
        use_batches=flags["use_batches"],
        use_fusion=flags["use_fusion"],
        batch_size=flags["batch_size"],
    )
    params = payload["params"]
    seed = payload["seed"]
    span = None
    if payload.get("trace"):
        from repro.obs.trace import Span

        span = Span("worker", shard=shard_id, pid=os.getpid())
    started = perf_counter()
    if payload["batch_mode"]:
        rows: list[Any] = []
        for batch in plan.run_batches(executor, params, dict(seed) if seed else None):
            rows.extend(batch)
    else:
        rows = list(plan.run(executor, params, dict(seed) if seed else None))
    elapsed = perf_counter() - started
    if span is not None:
        span.attrs["rows"] = len(rows)
        span.finish_at(elapsed)
    return (
        "result",
        {
            "rows": rows,
            "stats": executor.stats,
            "elapsed": elapsed,
            "span": span,
        },
    )


def shard_worker_main(conn: Any, worker_id: int) -> None:
    """Entry point of one worker process: a strict frame request loop.

    Every received frame produces exactly one reply frame; any failure
    — handler exception or an unpicklable reply — degrades to an
    ``error`` frame so the coordinator never hangs on a silent worker.
    A closed pipe means the coordinator is gone: exit quietly.
    """
    channel = FrameChannel(conn)
    replicas: dict[int, _ShardReplica] = {}
    plans: OrderedDict[str, Any] = OrderedDict()
    while True:
        try:
            op, payload = channel.recv()
        except (EOFError, OSError):
            return
        try:
            if op == "sync":
                reply = _handle_sync(payload, replicas)
            elif op == "run":
                reply = _handle_run(payload, replicas, plans)
            elif op == "ping":
                reply = (
                    "pong",
                    {
                        "worker": worker_id,
                        "pid": os.getpid(),
                        "shards": sorted(replicas),
                        "plans": len(plans),
                    },
                )
            elif op == "shutdown":
                try:
                    channel.send(("bye", {"worker": worker_id}))
                finally:
                    return
            else:
                raise ClusterError(f"unknown wire op {op!r}")
        except BaseException as exc:  # noqa: BLE001 — shipped, not swallowed
            reply = ("error", describe_exception(exc))
        try:
            frame = encode_frame(reply)
        except Exception as exc:  # e.g. an unpicklable row value
            frame = encode_frame(("error", describe_exception(exc)))
        try:
            channel.send_bytes(frame)
        except (EOFError, OSError, BrokenPipeError):
            return


# ---------------------------------------------------------------------------
# Coordinator side: worker handles + the pool
# ---------------------------------------------------------------------------


class RemoteResult:
    """One shard's gathered result frame, decoded."""

    __slots__ = ("rows", "stats", "elapsed", "span")

    def __init__(
        self, rows: list[Any], stats: dict[str, int], elapsed: float, span: Any
    ) -> None:
        self.rows = rows
        self.stats = stats
        self.elapsed = elapsed
        self.span = span


class _WorkerHandle:
    """Coordinator-side state for one worker process.

    ``lock`` serialises the (sync?, run) exchange per worker — frames on
    one pipe must never interleave across query threads.  ``shipped``
    tracks plan digests this worker holds; ``synced`` maps shard_id →
    ``[wal_appends_seen, ddl_shipped, synced_ts]`` so the staleness
    check is one integer compare.
    """

    __slots__ = ("index", "process", "channel", "lock", "shipped", "synced")

    def __init__(self, index: int, process: Any, channel: FrameChannel) -> None:
        self.index = index
        self.process = process
        self.channel = channel
        self.lock = threading.Lock()
        self.shipped: set[str] = set()
        self.synced: dict[int, list[int]] = {}

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class ProcessShardPool:
    """Shard worker processes for a :class:`ShardedDatabase`.

    ``n_workers`` may be smaller than the shard count: shard *i* is
    served by worker ``i % n_workers`` and a worker holds one replica
    per shard it serves, so a 2-worker pool over 4 shards still executes
    every shard's subplan — two at a time.  Workers spawn lazily on
    first dispatch and are restarted (with a full resync) when their
    process dies mid-exchange; a dispatch is retried once against the
    restarted worker before :class:`~repro.errors.WorkerDied` surfaces.

    Every wire request carries a deadline (``request_timeout`` seconds);
    a worker that does not answer in time — wedged, not dead — is
    treated exactly like a crashed one: terminated, restarted with a
    full resync, and the dispatch retried once after an exponential
    backoff (``retry_backoff * 2**attempt``).  Timeouts and retries are
    counted for the metrics surface.
    """

    def __init__(
        self,
        db: Any,
        n_workers: int,
        request_timeout: float = 30.0,
        retry_backoff: float = 0.05,
    ) -> None:
        self.db = db
        self.n_workers = max(1, min(n_workers, db.n_shards))
        self.request_timeout = request_timeout
        self.retry_backoff = retry_backoff
        methods = multiprocessing.get_all_start_methods()
        self._mp = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._workers: list[_WorkerHandle | None] = [None] * self.n_workers
        self._spawn_lock = threading.Lock()
        self._closed = False
        self.spawned = 0
        self.restarts = 0
        self.sync_rounds = 0
        self.synced_writes = 0
        self.plans_shipped = 0
        self.request_timeouts = 0
        self.retries = 0

    # -- lifecycle ---------------------------------------------------------

    def worker_index(self, shard_id: int) -> int:
        return shard_id % self.n_workers

    def _spawn(self, index: int) -> _WorkerHandle:
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=shard_worker_main,
            args=(child_conn, index),
            name=f"shard-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.spawned += 1
        return _WorkerHandle(index, process, FrameChannel(parent_conn))

    def _worker(self, shard_id: int) -> _WorkerHandle:
        if self._closed:
            raise ClusterError("worker pool is closed")
        index = self.worker_index(shard_id)
        handle = self._workers[index]
        if handle is None:
            with self._spawn_lock:
                handle = self._workers[index]
                if handle is None:
                    handle = self._workers[index] = self._spawn(index)
        return handle

    @staticmethod
    def _reap(process: Any, grace: float = 5.0) -> None:
        """Make *process* exit, escalating: join → terminate → kill.

        A plain ``join(timeout)`` can return with the process still
        alive (a worker wedged in a handler ignores pipe EOF); each
        escalation step is checked and the next signal only sent when
        the previous one did not stick.  SIGKILL cannot be ignored, so
        the final join is bounded in practice.
        """
        process.join(timeout=grace)
        if process.is_alive():
            process.terminate()
            process.join(timeout=grace)
        if process.is_alive():
            process.kill()
            process.join(timeout=grace)

    def _restart(self, index: int) -> None:
        """Replace a dead/wedged worker; its replicas/plans go with it."""
        with self._spawn_lock:
            handle = self._workers[index]
            if handle is not None:
                try:
                    handle.channel.close()
                except OSError:
                    pass
                if handle.process.is_alive():
                    handle.process.terminate()
                self._reap(handle.process)
            self._workers[index] = self._spawn(index)
            self.restarts += 1

    def close(self) -> None:
        """Graceful shutdown: one ``shutdown`` frame each, then reap.

        The shutdown handshake runs under the request deadline and the
        join escalates terminate → kill, so a worker wedged in a
        handler (e.g. a hang fault) cannot stall ``close()`` forever.
        """
        self._closed = True
        for index, handle in enumerate(self._workers):
            if handle is None:
                continue
            graceful = True
            with handle.lock:
                try:
                    handle.channel.request(
                        ("shutdown", {}), timeout=self.request_timeout
                    )
                except (EOFError, OSError, BrokenPipeError, RemoteTimeout):
                    graceful = False
                try:
                    handle.channel.close()
                except OSError:
                    pass
            # A worker that missed the handshake deadline is wedged —
            # no point granting it the polite join window.
            self._reap(handle.process, grace=5.0 if graceful else 0.1)
            self._workers[index] = None

    # -- health + metrics ---------------------------------------------------

    def ping(self, shard_id: int) -> dict[str, Any]:
        """Round-trip a health probe through shard_id's worker."""
        handle = self._worker(shard_id)
        with handle.lock:
            op, payload = handle.channel.request(
                ("ping", {}), timeout=self.request_timeout
            )
        if op != "pong":
            raise ClusterError(f"bad ping reply {op!r}")
        return payload

    def metrics(self) -> dict[str, int]:
        """Counter snapshot for the observability registry's collector."""
        out = {
            "workers": self.n_workers,
            "alive": sum(
                1 for h in self._workers if h is not None and h.alive
            ),
            "spawned": self.spawned,
            "restarts": self.restarts,
            "sync_rounds": self.sync_rounds,
            "synced_writes": self.synced_writes,
            "plans_shipped": self.plans_shipped,
            "request_timeouts_total": self.request_timeouts,
            "retries_total": self.retries,
            "frames_sent": 0,
            "frames_received": 0,
            "bytes_sent": 0,
            "bytes_received": 0,
        }
        for handle in self._workers:
            if handle is None:
                continue
            out["frames_sent"] += handle.channel.frames_sent
            out["frames_received"] += handle.channel.frames_received
            out["bytes_sent"] += handle.channel.bytes_sent
            out["bytes_received"] += handle.channel.bytes_received
        return out

    # -- replica sync --------------------------------------------------------

    def _sync_locked(self, handle: _WorkerHandle, shard_id: int) -> None:
        """Catch shard_id's replica up to the coordinator shard (holding
        the handle lock).  O(1) when nothing changed: the shard WAL's
        monotonic ``appends`` counter is the staleness fingerprint —
        every replica-visible change (DDL or commit) appends a record.
        """
        wal = self.db.shards[shard_id].wal
        appends = wal.appends
        state = handle.synced.get(shard_id)
        if state is not None and state[0] == appends:
            return
        ddl_shipped = state[1] if state is not None else 0
        synced_ts = state[2] if state is not None else 0
        ddl = wal.ddl_records()[ddl_shipped:]
        writes = list(wal.committed_writes_after(synced_ts))
        op, reply = handle.channel.request(
            ("sync", {"shard": shard_id, "ddl": ddl, "writes": writes}),
            timeout=self.request_timeout,
        )
        if op == "error":
            raise rebuild_exception(reply)
        if op != "ok":
            raise ClusterError(f"bad sync reply {op!r}")
        handle.synced[shard_id] = [
            appends, reply["ddl_applied"], reply["synced_ts"]
        ]
        self.sync_rounds += 1
        self.synced_writes += len(writes)

    # -- dispatch ------------------------------------------------------------

    def run_subplan(
        self,
        shard_id: int,
        encoded_plan: bytes,
        digest: str,
        params: dict[str, Any] | None,
        seed: dict[str, Any] | None,
        flags: dict[str, Any],
        batch_mode: bool,
        trace: bool,
    ) -> RemoteResult:
        """Execute one shard subplan remotely; sync + ship plan as needed.

        One retry after a worker death or deadline miss (terminate +
        restart + full resync, with exponential backoff before the
        retry); a second failure raises
        :class:`~repro.errors.WorkerDied`.
        """
        last_error: BaseException | None = None
        for attempt in range(2):
            inject = None
            if FAULTS.enabled:
                # Worker faults are evaluated HERE, parent-side, and
                # shipped in the payload: forked workers inherit a copy
                # of the registry, so firing in the child would both
                # desynchronise the seeded schedule and re-fire one-shot
                # rules in every restarted worker (making the retry hang
                # again).  Consuming the rule in the coordinator gives
                # each armed fault exactly one firing, cluster-wide.
                action = FAULTS.fire(
                    "remote.request", shard=shard_id, attempt=attempt
                )
                if action is not None:
                    if action.kind == "raise":
                        raise action.exception()
                    if action.kind in ("hang", "delay"):
                        inject = {
                            "op": action.kind,
                            "seconds": action.seconds,
                        }
            if attempt > 0:
                self.retries += 1
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
            handle = self._worker(shard_id)
            try:
                return self._dispatch_locked(
                    handle, shard_id, encoded_plan, digest, params, seed,
                    flags, batch_mode, trace, inject,
                )
            except RemoteTimeout as exc:
                last_error = exc
                self.request_timeouts += 1
                if self._closed:
                    break
                self._restart(handle.index)
            except (EOFError, OSError, BrokenPipeError) as exc:
                last_error = exc
                if self._closed:
                    break
                self._restart(handle.index)
        raise WorkerDied(
            f"worker for shard {shard_id} died and retry failed: {last_error!r}"
        )

    def _dispatch_locked(
        self,
        handle: _WorkerHandle,
        shard_id: int,
        encoded_plan: bytes,
        digest: str,
        params: dict[str, Any] | None,
        seed: dict[str, Any] | None,
        flags: dict[str, Any],
        batch_mode: bool,
        trace: bool,
        inject: dict[str, Any] | None = None,
    ) -> RemoteResult:
        with handle.lock:
            self._sync_locked(handle, shard_id)
            payload = {
                "shard": shard_id,
                "digest": digest,
                "plan": None if digest in handle.shipped else encoded_plan,
                "params": params,
                "seed": seed,
                "flags": flags,
                "batch_mode": batch_mode,
                "trace": trace,
            }
            if inject is not None:
                payload["inject"] = inject
            if payload["plan"] is not None:
                self.plans_shipped += 1
            op, reply = handle.channel.request(
                ("run", payload), timeout=self.request_timeout
            )
            if op == "need_plan":
                # Worker-side LRU evicted it; resend with the plan bytes.
                payload["plan"] = encoded_plan
                self.plans_shipped += 1
                op, reply = handle.channel.request(
                    ("run", payload), timeout=self.request_timeout
                )
            handle.shipped.add(digest)
        if op == "error":
            raise rebuild_exception(reply)
        if op != "result":
            raise ClusterError(f"bad run reply {op!r}")
        return RemoteResult(
            reply["rows"], reply["stats"], reply["elapsed"], reply["span"]
        )
