"""Scatter-gather physical operators for the sharded cluster layer.

:class:`ShardExec` is the one new operator the shard-aware planner
inserts: it owns a *subplan* — a shard-local pipeline segment built from
the ordinary single-node operators (CollectionScan / IndexEqLookup /
IndexRangeScan access paths, Filter, Let, Sort, TopK, Limit, and
HashAggregate(partial) for the two-phase aggregation split) — and runs
that subplan once per target shard, each against the shard's own
:class:`~repro.drivers.unified.UnifiedQueryContext`, in parallel on the
cluster's thread pool.  Gather either concatenates (shard order, so
results match a single-node scan's concat order) or merge-sorts the
per-shard streams when a SORT/TopK was pushed below the gather.

Routing happens at run time, when parameters are known:

- an equality predicate on the shard key pins execution to one shard;
- range bounds on the shard key prune shards under a range partitioner;
- otherwise every shard is scattered.

Shard workers share nothing mutable: each owns one shard context and a
private stats dict (merged after the gather), bindings are copied per
worker, and every expression the planner pushes below the gather is
*cheap* (field paths, literals, parameters, comparisons — no builtin
calls), so worker threads never touch the global query context.

Execution of a multi-target scatter is pool-agnostic: when the cluster
is configured with ``pool="processes"`` each shard's subplan is pickled
once (content-addressed, cached on the plan object) and shipped to a
worker *process* over the wire protocol in :mod:`repro.cluster.remote`;
the coordinator's threads then only do frame I/O — blocking on the pipe
releases the GIL — so N shards buy real wall-clock parallelism.  The
``pool="threads"`` mode, EXPLAIN ANALYZE, and any payload that cannot
cross a process boundary all take the in-process thread path instead;
results, stats, spans and histogram observations are identical either
way because every merge happens here, after the gather.
"""

from __future__ import annotations

import heapq
import pickle
from dataclasses import dataclass
from time import perf_counter
from typing import Any

from repro.cluster.remote import PICKLE_PROTOCOL, plan_digest
from repro.query.ast import Expr, SortKey
from repro.query.compile import compile_expr, evaluator
from repro.query.physical import (
    DEFAULT_BATCH_SIZE,
    Binding,
    PhysicalOperator,
    _chunks,
    batch_size,
    compile_sort_keys,
    render_expr,
    sort_evaluator,
)


class _ShardRuntime:
    """Executor facade for one shard worker: shard-local ctx + stats.

    Expression evaluation delegates to the parent executor (cheap
    expressions are pure), while ``ctx`` points at the shard's own
    context so access paths scan/probe only that shard's data.
    """

    __slots__ = (
        "_parent", "ctx", "use_indexes", "use_compiled", "use_batches",
        "use_fusion", "batch_size", "stats", "analyze", "observed",
        "scan_cache", "tracer", "obs", "trace_id",
    )

    def __init__(self, parent: Any, ctx: Any, stats: dict[str, int]) -> None:
        self._parent = parent
        self.ctx = ctx
        self.use_indexes = parent.use_indexes
        # Compiled closures are pure plan-time state, safe per worker;
        # the ablation flags ride along from the parent executor.
        self.use_compiled = getattr(parent, "use_compiled", True)
        self.use_batches = getattr(parent, "use_batches", True)
        self.use_fusion = getattr(parent, "use_fusion", True)
        self.batch_size = getattr(parent, "batch_size", DEFAULT_BATCH_SIZE)
        self.stats = stats
        self.analyze = getattr(parent, "analyze", False)
        # Per-operator observation channel (EXPLAIN ANALYZE group counts).
        # Only non-None under ANALYZE, whose scatter runs sequentially —
        # so sharing the parent's dict across shard runtimes is safe.
        self.observed = getattr(parent, "observed", None)
        # Scan blocks are shard-local: this runtime's ctx sees only one
        # shard's data, so it must never share the parent's cache.
        self.scan_cache: dict[str, list[Any]] = {}
        # The trace id rides into the worker so shard-local events can
        # correlate with the query's span tree; the tracer itself must
        # not — its span stack belongs to the query thread (workers fill
        # pre-created child spans instead), and a worker never pushes
        # observability instruments of its own.
        self.tracer = None
        self.obs = None
        self.trace_id = getattr(parent, "trace_id", None)

    def eval_expr(self, expr: Expr, binding: Binding, params: dict[str, Any]) -> Any:
        return self._parent.eval_expr(expr, binding, params)

    def run_subquery(self, query: Any, binding: Binding, params: dict[str, Any]) -> Any:
        # Subqueries are never pushed below the gather (not "cheap"),
        # but stay correct if one ever reaches a worker: the parent
        # executor runs it through the shared plan cache.
        return self._parent.run_subquery(query, binding, params)


def _fresh_stats() -> dict[str, int]:
    return {
        "index_lookups": 0, "range_lookups": 0, "scans": 0, "rows_scanned": 0,
        "scan_cache_hits": 0,
    }


def _observed_task(task, scatter_span, shard_id, latencies, waits, index):
    """Wrap one shard task thunk with timing + its pre-created span.

    The span is created *here*, on the query thread, before the pool
    dispatch; the task only mutates its own span object (attrs +
    ``finish_at``) and its own ``latencies``/``waits`` slots.  Crucially
    the task takes **no locks**: pushing the latency histogram from
    inside the workers made N threads contend on one instrument mutex at
    the exact moment they all finish — the caller drains both lists into
    their histograms sequentially after the gather instead.

    ``waits[index]`` records submit→start queue wait (how long the thunk
    sat waiting for a pool slot) — the undersized-``pool_workers``
    signal, exposed as the ``repro_shard_queue_seconds`` histogram.

    The task yields ``(rows, stats, remote)`` where ``remote`` is the
    :class:`~repro.cluster.remote.RemoteResult` for process-pool
    dispatches (None for in-process runs); its worker-measured span is
    grafted under this shard's span so traces show the process boundary.
    """
    span = (
        scatter_span.child(f"shard-{shard_id}", shard=shard_id)
        if scatter_span is not None else None
    )
    created = perf_counter()

    def run_task():
        started = perf_counter()
        waits[index] = started - created
        rows, stats, remote = task()
        elapsed = perf_counter() - started
        if span is not None:
            span.attrs["rows"] = len(rows)
            if remote is not None:
                span.attrs["remote"] = True
                if remote.span is not None:
                    span.children.append(remote.span)
            span.finish_at(elapsed)
        latencies[index] = elapsed
        return rows, stats, remote

    return run_task


def _traced_routed_stream(stream, scatter_span, shard_id):
    """Stream the routed single-shard path under its shard span.

    The routed path never materialises, so the span's elapsed covers
    the full pull-through (including parent consumption) — labelled
    ``routed=True`` to distinguish it from worker-measured drains.
    """
    span = scatter_span.child(f"shard-{shard_id}", shard=shard_id, routed=True)
    started = perf_counter()
    rows = 0
    for item in stream:
        rows += 1
        yield item
    span.attrs["rows"] = rows
    span.finish_at(perf_counter() - started)
    scatter_span.finish()


def _traced_routed_batches(stream, scatter_span, shard_id):
    """Batch-mode twin of :func:`_traced_routed_stream`."""
    span = scatter_span.child(f"shard-{shard_id}", shard=shard_id, routed=True)
    started = perf_counter()
    rows = 0
    for batch in stream:
        rows += len(batch)
        yield batch
    span.attrs["rows"] = rows
    span.finish_at(perf_counter() - started)
    scatter_span.finish()


@dataclass(frozen=True)
class ShardExec(PhysicalOperator):
    """Scatter a shard-local subplan, gather (and optionally merge) results.

    ``merge_keys`` non-empty means each shard's subplan emits a stream
    already sorted on those keys and the gather is an ordered k-way
    merge (heapq.merge is stable across inputs in shard order, so ties
    keep the exact order a single-node stable sort over the concatenated
    scan would produce).
    """

    subplan: PhysicalOperator
    collection: str
    n_shards: int
    merge_keys: tuple[SortKey, ...] = ()
    route_field: str | None = None
    route_expr: Expr | None = None
    range_field: str | None = None
    range_low: Expr | None = None
    range_high: Expr | None = None
    child: PhysicalOperator | None = None  # always a leaf: the gather boundary

    def __post_init__(self) -> None:
        object.__setattr__(self, "_c_merge", compile_sort_keys(self.merge_keys))
        for name, expr in (
            ("_c_route", self.route_expr),
            ("_c_range_low", self.range_low),
            ("_c_range_high", self.range_high),
        ):
            object.__setattr__(
                self, name, compile_expr(expr) if expr is not None else None
            )

    def run(self, rt, params, seed=None):
        ctx = rt.ctx  # ShardedQueryContext
        targets = self._targets(rt, ctx, params, seed)
        rt.stats["shard_fanout"] = rt.stats.get("shard_fanout", 0) + len(targets)
        scatter_span, obs = self._observe_scatter(rt, targets)
        if len(targets) == 1:
            # Routed (or shadowed-variable) execution: stream straight
            # through the single shard, no pool and no materialisation.
            shard_rt = _ShardRuntime(rt, ctx.shard_context(targets[0]), rt.stats)
            stream = self.subplan.run(shard_rt, params, seed)
            if scatter_span is None:
                yield from stream
            else:
                yield from _traced_routed_stream(stream, scatter_span, targets[0])
            return
        chunks = self._scatter(
            rt, ctx, targets, params, seed, scatter_span, obs, batch_mode=False
        )
        if scatter_span is None:
            if self.merge_keys:
                keyfn = sort_evaluator(rt, self._c_merge, self.merge_keys)
                yield from heapq.merge(*chunks, key=lambda b: keyfn(rt, b, params))
            else:
                for chunk in chunks:
                    yield from chunk
            return
        gather_span = scatter_span.child(
            "gather", mode="merge" if self.merge_keys else "concat"
        )
        gather_started = perf_counter()
        rows = 0
        if self.merge_keys:
            keyfn = sort_evaluator(rt, self._c_merge, self.merge_keys)
            for binding in heapq.merge(*chunks, key=lambda b: keyfn(rt, b, params)):
                rows += 1
                yield binding
        else:
            for chunk in chunks:
                rows += len(chunk)
                yield from chunk
        gather_span.attrs["rows"] = rows
        gather_span.finish_at(perf_counter() - gather_started)
        scatter_span.finish()

    def run_batches(self, rt, params, seed=None):
        """Batch-mode gather: whole batches cross the shard boundary.

        Each shard worker drains its subplan's ``run_batches`` stream, so
        the per-shard pipelines (fused or not) run vectorized; the gather
        then re-chunks the merged/concatenated rows to the parent's batch
        size.  Same routing, stats and ordering as :meth:`run`.
        """
        ctx = rt.ctx
        targets = self._targets(rt, ctx, params, seed)
        rt.stats["shard_fanout"] = rt.stats.get("shard_fanout", 0) + len(targets)
        scatter_span, obs = self._observe_scatter(rt, targets)
        if len(targets) == 1:
            shard_rt = _ShardRuntime(rt, ctx.shard_context(targets[0]), rt.stats)
            stream = self.subplan.run_batches(shard_rt, params, seed)
            if scatter_span is None:
                yield from stream
            else:
                yield from _traced_routed_batches(stream, scatter_span, targets[0])
            return
        chunks = self._scatter(
            rt, ctx, targets, params, seed, scatter_span, obs, batch_mode=True
        )
        size = batch_size(rt)
        gather_span = None
        if scatter_span is not None:
            gather_span = scatter_span.child(
                "gather",
                mode="merge" if self.merge_keys else "concat",
                rows=sum(len(chunk) for chunk in chunks),
            )
            gather_started = perf_counter()
        if self.merge_keys:
            keyfn = sort_evaluator(rt, self._c_merge, self.merge_keys)
            merged = heapq.merge(*chunks, key=lambda b: keyfn(rt, b, params))
            yield from _chunks(merged, size)
        else:
            for chunk in chunks:
                yield from _chunks(chunk, size)
        if gather_span is not None:
            gather_span.finish_at(perf_counter() - gather_started)
            scatter_span.finish()

    def _scatter(
        self, rt, ctx, targets, params, seed, scatter_span, obs, batch_mode
    ):
        """Run the subplan once per target shard; return per-shard row lists.

        The dispatch seam between shard *placement* (``_targets``) and
        shard *execution*: when the cluster carries a worker-process pool
        (``pool="processes"``) and the run payload can cross a process
        boundary, each shard's subplan is shipped over the wire protocol
        and the coordinator thread blocks on the reply — frame I/O
        releases the GIL, so worker processes compute in true parallel.
        Otherwise every shard runs in-process on its own thread (the
        ``pool="threads"`` mode), which is also the fallback for EXPLAIN
        ANALYZE (its ``observed`` dict is shared and unserializable by
        design) and for unpicklable params/seeds.  Stats merges and
        histogram drains happen here, sequentially, after the gather —
        shard workers never touch shared instruments.
        """
        analyze = getattr(rt, "analyze", False)
        remote = None
        if not analyze:
            remote_pool = getattr(ctx, "remote_pool", None)
            remote = remote_pool() if remote_pool is not None else None
        wire = self._wire_subplan() if remote is not None else None
        if wire is not None and (params or seed):
            try:
                pickle.dumps((params, seed), PICKLE_PROTOCOL)
            except Exception:
                wire = None  # this execution's bindings can't cross over
        if wire is None:
            remote = None

        if remote is None:
            tasks = [
                self._local_task(
                    _ShardRuntime(rt, ctx.shard_context(i), _fresh_stats()),
                    params, seed, batch_mode,
                )
                for i in targets
            ]
        else:
            encoded, digest = wire
            flags = {
                "use_indexes": getattr(rt, "use_indexes", True),
                "use_compiled": getattr(rt, "use_compiled", True),
                "use_batches": getattr(rt, "use_batches", True),
                "use_fusion": getattr(rt, "use_fusion", True),
                "batch_size": batch_size(rt),
            }
            tasks = [
                self._remote_task(
                    remote, shard_id, encoded, digest, params, seed, flags,
                    batch_mode, trace=scatter_span is not None,
                )
                for shard_id in targets
            ]
        latencies = waits = None
        if scatter_span is not None or obs is not None:
            latencies = [0.0] * len(tasks)
            waits = [0.0] * len(tasks)
            tasks = [
                _observed_task(task, scatter_span, shard_id, latencies, waits, i)
                for i, (task, shard_id) in enumerate(zip(tasks, targets))
            ]
        if analyze:
            # EXPLAIN ANALYZE shares row counters across shards; run the
            # scatter sequentially so the counts are exact.
            outcomes = [task() for task in tasks]
        else:
            outcomes = ctx.run_parallel(tasks)
        for _, stats, _remote in outcomes:
            for key, value in stats.items():
                rt.stats[key] = rt.stats.get(key, 0) + value
        if obs is not None and latencies is not None:
            observe = obs.shard_seconds.observe
            for elapsed in latencies:
                observe(elapsed)
            observe_wait = obs.shard_queue_seconds.observe
            for wait in waits:
                observe_wait(wait)
        return [rows for rows, _, _ in outcomes]

    def _local_task(self, srt, params, seed, batch_mode):
        """In-process thunk for one shard: run the subplan on its runtime."""
        def task():
            if batch_mode:
                rows: list[Binding] = []
                for batch in self.subplan.run_batches(
                    srt, params, dict(seed) if seed else None
                ):
                    rows.extend(batch)
            else:
                rows = list(
                    self.subplan.run(srt, params, dict(seed) if seed else None)
                )
            return rows, srt.stats, None

        return task

    def _remote_task(
        self, pool, shard_id, encoded, digest, params, seed, flags,
        batch_mode, trace,
    ):
        """Process-pool thunk for one shard: ship the subplan, gather rows."""
        def task():
            result = pool.run_subplan(
                shard_id, encoded, digest, params, seed, flags,
                batch_mode=batch_mode, trace=trace,
            )
            return result.rows, result.stats, result

        return task

    def _wire_subplan(self):
        """Cached ``(encoded bytes, digest)`` of the subplan; None when it
        cannot cross a process boundary.

        Computed at most once per plan object (plans are cached and
        reused across executions), stored via ``object.__setattr__``
        exactly like the compiled closures from ``__post_init__``;
        ``False`` memoises "unpicklable" so the pickle attempt never
        repeats.
        """
        cached = getattr(self, "_wire", None)
        if cached is None:
            try:
                encoded = pickle.dumps(self.subplan, PICKLE_PROTOCOL)
                cached = (encoded, plan_digest(encoded))
            except Exception:
                cached = False
            object.__setattr__(self, "_wire", cached)
        return cached if cached else None

    def _observe_scatter(self, rt, targets):
        """This scatter's (span, obs) instrumentation pair; Nones when off.

        One ``getattr`` pair per run — executors without the
        observability channel (plain single-node runs, shard workers)
        resolve both to None and the operator behaves exactly as before
        instrumentation existed.
        """
        obs = getattr(rt, "obs", None)
        if obs is not None:
            obs.shard_fanout.observe(len(targets))
        tracer = getattr(rt, "tracer", None)
        if tracer is None:
            return None, obs
        span = tracer.current.child(
            "ShardExec",
            collection=self.collection,
            fanout=len(targets),
            gather="merge" if self.merge_keys else "concat",
        )
        return span, obs

    def _targets(self, rt, ctx, params, seed: Binding | None) -> list[int]:
        if seed and self.collection in seed:
            # A bound variable shadows the collection name: the subplan's
            # scan yields the bound list, identically on any shard — run
            # it exactly once.
            return [0]
        if self.route_expr is not None:
            value = evaluator(rt, self._c_route, self.route_expr)(
                rt, dict(seed or {}), params
            )
            return [ctx.catalog.shard_for(self.collection, value)]
        if self.range_field is not None:
            low = (
                evaluator(rt, self._c_range_low, self.range_low)(
                    rt, dict(seed or {}), params
                )
                if self.range_low is not None else None
            )
            high = (
                evaluator(rt, self._c_range_high, self.range_high)(
                    rt, dict(seed or {}), params
                )
                if self.range_high is not None else None
            )
            pruned = ctx.catalog.shards_for_range(self.collection, low, high)
            if pruned is not None:
                return pruned
        return list(range(self.n_shards))

    def label(self) -> str:
        if self.route_expr is not None:
            routing = (
                f"route: {self.collection}.{self.route_field} == "
                f"{render_expr(self.route_expr)} -> 1 of {self.n_shards} shards"
            )
        elif self.range_field is not None:
            routing = (
                f"scatter: {self.collection}.{self.range_field} range-pruned "
                f"over {self.n_shards} shards"
            )
        else:
            routing = f"scatter: all {self.n_shards} shards"
        gather = (
            f"ordered merge on {len(self.merge_keys)} keys"
            if self.merge_keys else "concat"
        )
        return f"ShardExec [{routing}; gather: {gather}]"
