"""Cluster layer: sharded multi-model database with scatter-gather MMQL.

Partition every model's collections across N engine shards
(:class:`ShardedDatabase`), route by per-collection shard keys through
pluggable hash/range partitioners (:mod:`repro.cluster.partition`), and
execute shard-local subplans in parallel behind one gather operator
(:mod:`repro.cluster.operators`, inserted by
:mod:`repro.cluster.planning`).
"""

from repro.cluster.operators import ShardExec
from repro.cluster.partition import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    ShardRouter,
    ShardSpec,
    stable_hash,
)
from repro.cluster.sharded import ShardedDatabase, ShardedQueryContext, ShardedSession

__all__ = [
    "HashPartitioner",
    "Partitioner",
    "RangePartitioner",
    "ShardExec",
    "ShardRouter",
    "ShardSpec",
    "ShardedDatabase",
    "ShardedQueryContext",
    "ShardedSession",
    "stable_hash",
]
