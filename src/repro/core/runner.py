"""Measurement runners for queries and transactions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.workloads import QueryDef, TransactionDef
from repro.datagen.generator import Dataset
from repro.drivers.base import Driver
from repro.errors import TransactionAborted
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.timing import Stopwatch, Timer


@dataclass
class QueryMeasurement:
    """Latency samples and result size for one query on one driver."""

    query_id: str
    driver: str
    timer: Timer
    result_size: int
    used_indexes: bool

    @property
    def mean_ms(self) -> float:
        return self.timer.mean * 1000.0

    @property
    def p95_ms(self) -> float:
        return self.timer.p95 * 1000.0


class QueryRunner:
    """Runs the shared query set against one driver with warmup."""

    def __init__(
        self,
        driver: Driver,
        dataset: Dataset,
        repetitions: int = 5,
        warmup: int = 1,
        use_indexes: bool = True,
    ) -> None:
        self.driver = driver
        self.dataset = dataset
        self.repetitions = repetitions
        self.warmup = warmup
        self.use_indexes = use_indexes

    def run(self, query: QueryDef) -> QueryMeasurement:
        params = query.params(self.dataset)
        for _ in range(self.warmup):
            self.driver.query(query.text, params, use_indexes=self.use_indexes)
        timer = Timer()
        result_size = 0
        for _ in range(self.repetitions):
            with Stopwatch() as sw:
                result = self.driver.query(
                    query.text, params, use_indexes=self.use_indexes
                )
            timer.record(sw.elapsed)
            result_size = len(result)
        return QueryMeasurement(
            query_id=query.query_id,
            driver=self.driver.name,
            timer=timer,
            result_size=result_size,
            used_indexes=self.use_indexes,
        )

    def run_all(self, queries: list[QueryDef]) -> list[QueryMeasurement]:
        return [self.run(q) for q in queries]


@dataclass
class TransactionMeasurement:
    """Throughput and abort accounting for a transaction mix."""

    driver: str
    isolation: str
    attempted: int
    committed: int
    aborted: int
    seconds: float
    per_txn: dict[str, int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.committed / self.seconds if self.seconds > 0 else 0.0

    @property
    def abort_rate(self) -> float:
        return self.aborted / self.attempted if self.attempted else 0.0


class TransactionRunner:
    """Runs a seeded mix of the T1-T4 templates through a driver."""

    def __init__(
        self,
        driver: Driver,
        dataset: Dataset,
        seed: int = 99,
        isolation_name: str = "default",
    ) -> None:
        self.driver = driver
        self.dataset = dataset
        self.seed = seed
        self.isolation_name = isolation_name

    def run_mix(
        self,
        transactions: list[TransactionDef],
        count: int,
        weights: list[float] | None = None,
    ) -> TransactionMeasurement:
        """Execute *count* transactions drawn from the weighted mix."""
        rng = DeterministicRng(derive_seed(self.seed, "txn_mix", self.driver.name))
        weights = weights if weights is not None else [1.0] * len(transactions)
        committed = 0
        aborted = 0
        per_txn: dict[str, int] = {t.txn_id: 0 for t in transactions}
        with Stopwatch() as sw:
            for seq in range(count):
                template = rng.weighted_choice(transactions, weights)
                body = template.make(self.dataset, rng, seq)
                try:
                    self.driver.run_transaction(body)
                except TransactionAborted:
                    aborted += 1
                else:
                    committed += 1
                    per_txn[template.txn_id] += 1
        return TransactionMeasurement(
            driver=self.driver.name,
            isolation=self.isolation_name,
            attempted=count,
            committed=committed,
            aborted=aborted,
            seconds=sw.elapsed,
            per_txn=per_txn,
        )
