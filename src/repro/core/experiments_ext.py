"""Extension experiments E7-E9 + the YCSB baseline suite.

These go beyond the paper's four pillars into the design-choice ablations
DESIGN.md §5 calls out:

- **E7** — secondary-index backend ablation: hash vs flat sorted list vs
  B+tree, under write churn and range queries.
- **E8** — quorum reads and session guarantees over the replicated store
  (the price of read-your-writes as lag grows).
- **E9** — eager vs lazy schema migration (upfront rewrite vs
  repair-on-read vs upgrade-every-read).
- **YCSB** — the single-model workloads A-F the paper cites as *not*
  sufficient for multi-model evaluation, run as a baseline sanity suite.
- **E10** — the sharded cluster layer: scatter-gather scan / merge-sort
  / partial top-k versus single-shard routing across 1..N shards.
- **E12** — distributed commit: single-shard fast path vs two-phase
  commit by transaction span (latency, WAL and coordinator-log traffic).
- **E13** — the compiled hot path: closure-compiled expression
  evaluation vs the reference interpreter (per-row and end-to-end on
  expression-heavy E1 queries), and plan-cache hit vs cold plan latency.
- **E14** — vectorized execution: batch-at-a-time operator streams and
  fused pipeline closures vs per-row Volcano pulls, on scan / filter /
  project shapes and the Q7 join end-to-end.
- **E15** — the observability layer: metrics-only and full-tracing
  overhead against the uninstrumented path on the sharded Q7 join,
  plus structural verification of the per-shard span tree.
- **E16** — process-parallel scatter: shard subplans dispatched to
  worker processes over the wire protocol vs the GIL-bound thread
  pool, on the communication-avoiding E10 scan mix.
- **E17** — replicated shards: write-ack latency as the quorum widens
  (1 / majority / all on 3-replica shards) and follower-read
  throughput vs leader-only, with a leader/follower/session parity
  gate before any timing.
"""

from __future__ import annotations

import os

from repro.cluster.sharded import ShardedDatabase
from repro.consistency.replication import ReplicatedStore, ReplicationConfig
from repro.consistency.sessions import quorum_freshness, session_fallback_rate
from repro.core.ycsb import WORKLOADS, YcsbRunner
from repro.datagen.config import GeneratorConfig
from repro.datagen.generator import DatasetGenerator
from repro.datagen.load import load_dataset
from repro.drivers.polyglot import PolyglotDriver
from repro.drivers.unified import UnifiedDriver
from repro.replication import ReplicaSetConfig
from repro.engine.indexes import BTreeIndex, HashIndex, SortedIndex, field_extractor
from repro.schema.evolution import AddField, NestFields, RenameField
from repro.schema.lazy import LazyMigrator
from repro.schema.registry import SchemaRegistry, migrate_collection
from repro.schema.shapes import orders_shape
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.tables import Table
from repro.util.timing import Stopwatch


# ---------------------------------------------------------------------------
# E7 — index backend ablation
# ---------------------------------------------------------------------------


def experiment_e7_index_backends(
    sizes: list[int] | None = None, churn: int = 2000, seed: int = 42
) -> Table:
    """Maintenance and range-scan cost per index backend.

    For each corpus size N: build the index, apply *churn* random updates
    (the maintenance path), then run 100 range scans.  The flat sorted
    list pays O(N) per update; the B+tree O(log N) — the crossover is the
    point of the ablation.
    """
    sizes = sizes or [1_000, 10_000]
    table = Table(
        "E7: secondary index backends (ms)",
        ["backend", "records", "build_ms", "churn_ms", "range_ms", "supports_range"],
    )
    for n in sizes:
        rng = DeterministicRng(derive_seed(seed, "e7", n))
        docs = {i: {"_id": i, "n": rng.randint(0, n * 10)} for i in range(n)}
        updates = [
            (rng.randint(0, n - 1), rng.randint(0, n * 10)) for _ in range(churn)
        ]
        for backend_name, factory, has_range in (
            ("hash", lambda: HashIndex("i", field_extractor("n")), False),
            ("sorted-list", lambda: SortedIndex("i", field_extractor("n")), True),
            ("btree", lambda: BTreeIndex("i", field_extractor("n")), True),
        ):
            index = factory()
            with Stopwatch() as build:
                for key, doc in docs.items():
                    index.on_write(key, None, doc)
            snapshot = {k: dict(v) for k, v in docs.items()}
            with Stopwatch() as churn_sw:
                for key, new_n in updates:
                    old = snapshot[key]
                    new = dict(old, n=new_n)
                    index.on_write(key, old, new)
                    snapshot[key] = new
            range_ms = 0.0
            if has_range:
                with Stopwatch() as scan_sw:
                    for q in range(100):
                        low = (q * 37) % (n * 10)
                        _ = sum(1 for _ in index.range(low, low + n // 10))
                range_ms = scan_sw.elapsed * 1000.0
            table.add_row(
                [
                    backend_name,
                    n,
                    round(build.elapsed * 1000.0, 2),
                    round(churn_sw.elapsed * 1000.0, 2),
                    round(range_ms, 2),
                    has_range,
                ]
            )
    return table


# ---------------------------------------------------------------------------
# E8 — quorum reads and session guarantees
# ---------------------------------------------------------------------------


def experiment_e8_sessions(
    lags: list[int] | None = None, replicas: int = 5
) -> Table:
    """Quorum freshness per R (probed mid-delivery-window) and the
    session-guarantee fallback price at three think times."""
    lags = lags or [2, 8, 32]
    table = Table(
        "E8: quorum reads and session guarantees",
        ["base_lag", "R=1_fresh", "R=majority_fresh", "R=N_fresh",
         "fallback@1_tick", "fallback@lag", "fallback@2xlag"],
    )
    majority = replicas // 2 + 1
    for lag in lags:
        def factory(lag: int = lag) -> ReplicatedStore:
            return ReplicatedStore(
                ReplicationConfig(replicas=replicas, base_lag=lag,
                                  jitter=max(1, lag), seed=7)
            )

        freshness = quorum_freshness(factory, [1, majority, replicas])
        fallbacks = []
        for think in (1, lag, 2 * lag):
            stats = session_fallback_rate(factory, trials=300, think_ticks=think)
            fallbacks.append(round(stats.fallback_rate, 3))
        table.add_row(
            [
                lag,
                round(freshness[1], 3),
                round(freshness[majority], 3),
                round(freshness[replicas], 3),
                *fallbacks,
            ]
        )
    return table


# ---------------------------------------------------------------------------
# E9 — eager vs lazy migration
# ---------------------------------------------------------------------------

_E9_CHAIN = [
    AddField("orders", "currency", "string", default="EUR"),
    RenameField("orders", "total_price", "total"),
    NestFields("orders", ("order_date", "status"), "meta"),
]


def experiment_e9_migration_strategies(
    scale_factor: float = 0.1, reads: int = 200, seed: int = 42
) -> Table:
    """Upfront vs per-read cost of eager and lazy migration."""
    table = Table(
        "E9: migration strategies (orders collection)",
        ["strategy", "upfront_ms", "first_reads_ms", "second_reads_ms",
         "docs_rewritten"],
    )
    dataset = DatasetGenerator(GeneratorConfig(seed=seed, scale_factor=scale_factor)).generate()
    read_ids = [
        dataset.orders[i % len(dataset.orders)]["_id"] for i in range(reads)
    ]

    def fresh_driver() -> UnifiedDriver:
        driver = UnifiedDriver()
        load_dataset(driver, dataset, with_indexes=False)
        return driver

    def registry() -> SchemaRegistry:
        reg = SchemaRegistry()
        reg.register(orders_shape())
        for op in _E9_CHAIN:
            reg.apply(op)
        return reg

    # Eager: rewrite everything now, reads are plain afterwards.
    driver = fresh_driver()
    with Stopwatch() as upfront:
        result = migrate_collection(driver, "orders", _E9_CHAIN)
    with Stopwatch() as first:
        for doc_id in read_ids:
            driver.run_transaction(lambda s, d=doc_id: s.doc_get("orders", d))
    with Stopwatch() as second:
        for doc_id in read_ids:
            driver.run_transaction(lambda s, d=doc_id: s.doc_get("orders", d))
    table.add_row(
        ["eager", round(upfront.elapsed * 1000, 1), round(first.elapsed * 1000, 1),
         round(second.elapsed * 1000, 1), result.documents_migrated]
    )

    # Lazy with repair-on-read: first read pays, second is clean.
    driver = fresh_driver()
    migrator = LazyMigrator(driver, registry(), "orders", repair=True)
    with Stopwatch() as first:
        for doc_id in read_ids:
            migrator.get(doc_id)
    with Stopwatch() as second:
        for doc_id in read_ids:
            migrator.get(doc_id)
    table.add_row(
        ["lazy+repair", 0.0, round(first.elapsed * 1000, 1),
         round(second.elapsed * 1000, 1), migrator.stats.repair_writes]
    )

    # Lazy without repair: every read pays the upgrade.
    driver = fresh_driver()
    migrator = LazyMigrator(driver, registry(), "orders", repair=False)
    with Stopwatch() as first:
        for doc_id in read_ids:
            migrator.get(doc_id)
    with Stopwatch() as second:
        for doc_id in read_ids:
            migrator.get(doc_id)
    table.add_row(
        ["lazy_no_repair", 0.0, round(first.elapsed * 1000, 1),
         round(second.elapsed * 1000, 1), 0]
    )
    return table


# ---------------------------------------------------------------------------
# YCSB baseline suite
# ---------------------------------------------------------------------------


def experiment_ycsb(
    record_count: int = 1000, operations: int = 500, seed: int = 77
) -> Table:
    """Workloads A-F on both drivers' key-value model."""
    table = Table(
        "YCSB baseline: single-model KV workloads (ops/sec)",
        ["workload", "unified", "polyglot", "unified_aborts"],
    )
    runners = {}
    for driver in (UnifiedDriver(), PolyglotDriver()):
        runner = YcsbRunner(driver, record_count=record_count, seed=seed)
        runner.load()
        runners[driver.name] = runner
    for workload in sorted(WORKLOADS):
        unified = runners["unified"].run(workload, operations)
        polyglot = runners["polyglot"].run(workload, operations)
        table.add_row(
            [
                workload,
                round(unified.ops_per_sec, 0),
                round(polyglot.ops_per_sec, 0),
                unified.aborted,
            ]
        )
    return table


# ---------------------------------------------------------------------------
# E10 — sharded cluster: routing vs scatter-gather
# ---------------------------------------------------------------------------

# The four plan shapes the cluster layer distinguishes; `routed` must do
# ~1/N of the work, the others scatter with per-shard pushdown.
_E10_QUERIES = {
    "routed_point": (
        "FOR o IN orders FILTER o._id == @order_id RETURN o.status",
        lambda ds: {"order_id": ds.orders[len(ds.orders) // 2]["_id"]},
    ),
    "scatter_filter": (
        "FOR o IN orders FILTER o.total_price >= @lo RETURN o._id",
        lambda ds: {"lo": sorted(o["total_price"] for o in ds.orders)[-20]},
    ),
    # The sorted shapes return the sort key itself: ties at a top-k
    # boundary break by arrival order, which legitimately differs
    # between placements, so _id output would flake the cross-shard
    # equality gate while the key sequence is placement-invariant.
    "merge_sort": (
        "FOR o IN orders SORT o.total_price DESC RETURN o.total_price",
        lambda ds: {},
    ),
    "partial_topk": (
        "FOR o IN orders SORT o.total_price DESC LIMIT 10 RETURN o.total_price",
        lambda ds: {},
    ),
}


def experiment_e10_sharding(
    scale_factor: float = 0.1,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    repetitions: int = 5,
    seed: int = 42,
) -> Table:
    """Latency of the four cluster plan shapes across shard counts.

    Every configuration must return the same answers as one shard; the
    table records per-shape mean latency plus the measured shard fanout
    of the routed point query (the 1/N work guarantee, asserted by the
    bench harness rather than wall-clock, which the GIL makes noisy).
    """
    from repro.query.executor import Executor

    dataset = DatasetGenerator(
        GeneratorConfig(seed=seed, scale_factor=scale_factor)
    ).generate()
    table = Table(
        f"E10: sharded scatter-gather (SF={scale_factor}, ms per query)",
        ["shards", "load_ms", *(name for name in _E10_QUERIES), "routed_fanout"],
    )
    baseline: dict[str, list[str]] = {}
    for n_shards in shard_counts:
        driver = ShardedDatabase(n_shards=n_shards)
        with Stopwatch() as load_sw:
            load_dataset(driver, dataset)
        row: list[object] = [n_shards, round(load_sw.elapsed * 1000.0, 1)]
        for name, (text, params_fn) in _E10_QUERIES.items():
            params = params_fn(dataset)
            result = driver.query(text, params)  # warmup
            canonical = sorted(repr(r) for r in result)
            if name not in baseline:
                baseline[name] = canonical
            elif baseline[name] != canonical:
                raise AssertionError(
                    f"E10: {name} diverged between shard counts"
                )
            with Stopwatch() as sw:
                for _ in range(repetitions):
                    driver.query(text, params)
            row.append(round(sw.elapsed * 1000.0 / repetitions, 3))
        ctx = driver.query_context()
        executor = Executor(ctx)
        text, params_fn = _E10_QUERIES["routed_point"]
        executor.execute(text, params_fn(dataset))
        ctx.close()
        row.append(executor.stats.get("shard_fanout", 0))
        driver.close()
        table.add_row(row)
    return table


# ---------------------------------------------------------------------------
# E11 — two-phase aggregation pushdown
# ---------------------------------------------------------------------------

# Grouped aggregate shapes the two-phase rewrite targets.  All results
# must be byte-identical across shard counts: canonical group ordering
# plus exact (rational) SUM/AVG accumulation make the merged answer
# placement-independent, so the gate is plain equality, not canonicalised.
_E11_QUERIES = {
    "grouped_count": (
        "FOR o IN orders COLLECT s = o.status AGGREGATE n = COUNT(1) RETURN {s, n}"
    ),
    "grouped_sum_avg": (
        "FOR o IN orders COLLECT cid = o.customer_id "
        "AGGREGATE spend = SUM(o.total_price), avg_spend = AVG(o.total_price) "
        "RETURN {cid, spend, avg_spend}"
    ),
    "grouped_minmax_sorted": (
        "FOR o IN orders COLLECT s = o.status "
        "AGGREGATE lo = MIN(o.total_price), hi = MAX(o.total_price) "
        "SORT s RETURN {s, lo, hi}"
    ),
}


def _aggregation_actuals(driver, text: str) -> tuple[int | None, int]:
    """(rows crossing the shard gather, final group count) for one query.

    Runs the plan under the ANALYZE instrumentation and reads the
    ShardExec / top aggregate row counters — the direct measurement of
    the O(rows) → O(groups) data-movement claim.  A plan with no gather
    (a 1-shard cluster never builds a ShardExec) reports ``None``, not
    0: no rows crossed a boundary because no boundary exists.
    """
    from repro.query.analyze import instrument
    from repro.query.executor import Executor
    from repro.query.parser import parse
    from repro.query.planner import plan

    ctx = driver.query_context()
    try:
        executor = Executor(ctx)
        executor.analyze = True
        executor.observed = {}
        counted = instrument(plan(parse(text), executor.catalog).root)
        list(counted.run(executor, {}))
        gather_rows: int | None = None
        groups = 0
        node = counted
        while node is not None:
            label = node.label()
            if label.startswith("ShardExec"):
                gather_rows = node.rows
            elif label.startswith("HashAggregate(final)") or label.startswith(
                "HashAggregate(single)"
            ):
                groups = node.rows
            node = node.child
        return gather_rows, groups
    finally:
        ctx.close()


def experiment_e11_aggregation(
    scale_factor: float = 0.1,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    repetitions: int = 5,
    seed: int = 42,
) -> Table:
    """Grouped COUNT/SUM/AVG/MIN/MAX latency across shard counts.

    Alongside per-shape mean latency the table records, for the
    ``grouped_sum_avg`` shape, how many rows crossed the shard gather
    (``gather_rows``) against the matching row count — with the partial
    pushdown this is the number of per-shard group states, not the
    number of matching rows — plus the final group count.
    """
    dataset = DatasetGenerator(
        GeneratorConfig(seed=seed, scale_factor=scale_factor)
    ).generate()
    table = Table(
        f"E11: two-phase aggregation pushdown (SF={scale_factor}, ms per query)",
        ["shards", "load_ms", *(name for name in _E11_QUERIES),
         "match_rows", "gather_rows", "groups"],
    )
    baseline: dict[str, list] = {}
    for n_shards in shard_counts:
        driver = ShardedDatabase(n_shards=n_shards)
        with Stopwatch() as load_sw:
            load_dataset(driver, dataset)
        row: list[object] = [n_shards, round(load_sw.elapsed * 1000.0, 1)]
        for name, text in _E11_QUERIES.items():
            result = driver.query(text)  # warmup
            if name not in baseline:
                baseline[name] = result
            elif baseline[name] != result:
                raise AssertionError(
                    f"E11: {name} not byte-identical across shard counts"
                )
            with Stopwatch() as sw:
                for _ in range(repetitions):
                    driver.query(text)
            row.append(round(sw.elapsed * 1000.0 / repetitions, 3))
        gather_rows, groups = _aggregation_actuals(
            driver, _E11_QUERIES["grouped_sum_avg"]
        )
        row.extend([
            len(dataset.orders),
            "n/a" if gather_rows is None else gather_rows,
            groups,
        ])
        driver.close()
        table.add_row(row)
    return table


# ---------------------------------------------------------------------------
# E12 — distributed commit: fast path vs two-phase commit
# ---------------------------------------------------------------------------


def experiment_e12_commit(
    n_docs: int = 400,
    n_shards: int = 4,
    spans: tuple[int, ...] = (1, 2, 4),
    transactions: int = 200,
    seed: int = 42,
) -> Table:
    """Commit latency and WAL traffic by transaction span.

    For each span (how many distinct shards a transaction writes) the
    table compares the best-effort shard-by-shard commit against 2PC:
    mean commit latency, WAL records appended per commit across all
    shards, and coordinator-log records per commit.  Span 1 is the fast
    path — both modes must produce identical WAL traffic (asserted),
    which is the "zero extra records" guarantee; the 2PC overhead shows
    up from span 2 as the prepare/decision records plus the coordinator
    decision, and buys atomic cross-shard aborts and crash recovery.
    """
    table = Table(
        f"E12: commit protocols ({n_shards} shards, ms per commit)",
        ["span_shards", "best_effort_ms", "two_pc_ms", "overhead_x",
         "wal_recs_best", "wal_recs_2pc", "coord_recs_2pc"],
    )
    rng = DeterministicRng(derive_seed(seed, "e12"))
    for span in spans:
        timings: dict[bool, float] = {}
        wal_recs: dict[bool, float] = {}
        coord_recs: dict[bool, float] = {}
        for two_pc in (False, True):
            db = ShardedDatabase(n_shards=n_shards, two_phase_commit=two_pc)
            db.create_collection("orders")
            with db.transaction() as s:
                for i in range(n_docs):
                    s.doc_insert(
                        "orders",
                        {"_id": f"o{i}", "v": 0, "pad": rng.random()},
                    )
            by_shard: dict[int, str] = {}
            for i in range(n_docs):
                by_shard.setdefault(db.router.shard_for("orders", f"o{i}"), f"o{i}")
            targets = [by_shard[shard] for shard in sorted(by_shard)][:span]
            wal_before = sum(shard.wal.appends for shard in db.shards)
            coord_before = db.coordinator_log.appends
            with Stopwatch() as sw:
                for t in range(transactions):
                    with db.transaction() as s:
                        for doc_id in targets:
                            s.doc_update("orders", doc_id, {"v": t + 1})
            timings[two_pc] = sw.elapsed * 1000.0 / transactions
            wal_recs[two_pc] = (
                sum(shard.wal.appends for shard in db.shards) - wal_before
            ) / transactions
            coord_recs[two_pc] = (db.coordinator_log.appends - coord_before) / transactions
            db.close()
        if span == 1 and wal_recs[True] != wal_recs[False]:
            raise AssertionError(
                "E12: the single-shard fast path must not add WAL records "
                f"({wal_recs[True]} vs {wal_recs[False]} per commit)"
            )
        table.add_row([
            span,
            round(timings[False], 4),
            round(timings[True], 4),
            round(timings[True] / timings[False], 2),
            round(wal_recs[False], 1),
            round(wal_recs[True], 1),
            round(coord_recs[True], 1),
        ])
    return table


# ---------------------------------------------------------------------------
# E13 — compiled expressions + plan cache vs pure interpretation
# ---------------------------------------------------------------------------

_E13_EXPR = (
    "o.total_price * 1.21 + o.customer_id % 7 > @cutoff "
    "AND o.status != 'cancelled' "
    "AND (o.total_price - o.customer_id % 3 >= 10 OR o.status LIKE 'ship%')"
)

# Expression-heavy scan: no usable index, the predicate runs per row.
_E13_SCAN_QUERY = f"FOR o IN orders FILTER {_E13_EXPR} RETURN o._id"

_E13_QUERIES = ("Q5", "Q7")


def experiment_e13_compile(
    scale_factor: float = 0.05,
    repetitions: int = 20,
    eval_rows: int = 20_000,
    plan_hits: int = 2_000,
    seed: int = 42,
) -> Table:
    """Closure compilation and plan caching on the MMQL hot path.

    Three measurement families, one row each:

    - ``expr_eval``: the per-row cost of one expression-heavy predicate
      over *eval_rows* synthetic bindings — the reference interpreter's
      recursive isinstance walk (baseline) against the compiled
      nested-closure evaluator (optimized).  This is the per-row metric
      the E13 acceptance gate asserts (>= 2x at full scale, >= 1.5x in
      the CI smoke).
    - ``Q2``/``Q5``/``Q7`` end-to-end: expression-heavy E1 queries run
      through the unified driver with ``use_compiled`` off vs on; the
      speedup is smaller than the per-row ratio because scan and index
      work is shared by both modes.
    - ``plan cold vs cached``: parse+plan latency against a plan-cache
      hit for the same text — the amortization the versioned LRU cache
      buys every repeated query.
    """
    from repro.core.workloads import QUERY_BY_ID
    from repro.query.compile import compile_expr
    from repro.query.executor import Executor
    from repro.query.parser import parse
    from repro.query.plancache import PlanCache

    table = Table(
        f"E13: compiled hot path (SF={scale_factor}, ms)",
        ["case", "baseline_ms", "optimized_ms", "speedup_x"],
    )
    rng = DeterministicRng(derive_seed(seed, "e13"))

    def row(case: str, baseline_s: float, optimized_s: float) -> None:
        table.add_row([
            case,
            round(baseline_s * 1000.0, 4),
            round(optimized_s * 1000.0, 4),
            round(baseline_s / optimized_s, 2) if optimized_s else float("inf"),
        ])

    # -- per-row expression evaluation --------------------------------------
    expr = parse(f"RETURN {_E13_EXPR}").returning.expr
    statuses = ("shipped", "shipping", "new", "cancelled")
    bindings = [
        {
            "o": {
                "total_price": round(rng.random() * 400.0, 2),
                "customer_id": rng.randint(1, 500),
                "status": statuses[rng.randint(0, len(statuses) - 1)],
            }
        }
        for _ in range(eval_rows)
    ]
    params = {"cutoff": 120.0}
    oracle = Executor(ctx=None)
    compiled = compile_expr(expr)
    # Warm both paths (regex cache, bytecode) before timing.
    for binding in bindings[:100]:
        assert oracle.eval_expr(expr, binding, params) == compiled(
            oracle, binding, params
        )
    with Stopwatch() as sw_interp:
        for binding in bindings:
            oracle.eval_expr(expr, binding, params)
    with Stopwatch() as sw_compiled:
        for binding in bindings:
            compiled(oracle, binding, params)
    row(f"expr_eval ({eval_rows} rows)", sw_interp.elapsed, sw_compiled.elapsed)

    # -- end-to-end expression-heavy E1 queries ------------------------------
    dataset = DatasetGenerator(
        GeneratorConfig(seed=seed, scale_factor=scale_factor)
    ).generate()
    driver = UnifiedDriver()
    load_dataset(driver, dataset)
    cases = [("scan_filter", _E13_SCAN_QUERY, params)]
    cases.extend(
        (query_id, QUERY_BY_ID[query_id].text, QUERY_BY_ID[query_id].params(dataset))
        for query_id in _E13_QUERIES
    )
    for query_id, text, qparams in cases:
        interp = driver.query(text, qparams, use_compiled=False)
        comp = driver.query(text, qparams, use_compiled=True)
        if repr(interp) != repr(comp):
            raise AssertionError(
                f"E13: {query_id} compiled/interpreted results diverge"
            )
        timings = {}
        for use_compiled in (False, True):
            for _ in range(2):  # warm caches/snapshots outside the timer
                driver.query(text, qparams, use_compiled=use_compiled)
            with Stopwatch() as sw:
                for _ in range(repetitions):
                    driver.query(text, qparams, use_compiled=use_compiled)
            timings[use_compiled] = sw.elapsed / repetitions
        row(query_id, timings[False], timings[True])

    # -- plan cache: cold plan vs hit ----------------------------------------
    text = QUERY_BY_ID["Q2"].text
    with Stopwatch() as sw_cold:
        for _ in range(repetitions):
            PlanCache().get_or_plan(text)
    cache = PlanCache()
    cache.get_or_plan(text)
    with Stopwatch() as sw_hit:
        for _ in range(plan_hits):
            cache.get_or_plan(text)
    row(
        f"plan cold vs cached ({plan_hits} hits)",
        sw_cold.elapsed / repetitions,
        sw_hit.elapsed / plan_hits,
    )
    return table


# ---------------------------------------------------------------------------
# E14 — vectorized batch execution + fused operator chains
# ---------------------------------------------------------------------------

_E14_SHAPES = (
    # (case, query text) — the operator shapes the batch kernels target.
    ("scan_project", "FOR o IN orders RETURN o._id"),
    (
        "scan_filter",
        f"FOR o IN orders FILTER {_E13_EXPR} RETURN o._id",
    ),
    (
        "filter_let_project",
        "FOR o IN orders "
        "FILTER o.total_price * 1.21 > @cutoff "
        "LET gross = o.total_price * 1.21 "
        "LET bucket = o.customer_id % 7 "
        "RETURN {id: o._id, gross, bucket}",
    ),
)

_E14_MODES = {
    # Ablation ladder: each step adds one engine feature.
    "interpreted": dict(use_compiled=False, use_batches=False),
    "batched": dict(use_compiled=True, use_batches=True, use_fusion=False),
    "fused": dict(use_compiled=True, use_batches=True, use_fusion=True),
}


def experiment_e14_vectorized(
    scale_factor: float = 0.05,
    repetitions: int = 15,
    seed: int = 42,
) -> Table:
    """Batch-at-a-time execution and operator fusion vs per-row pulls.

    Each row times one query shape through the execution-mode ladder:

    - ``interpreted_ms``: the per-binding Volcano baseline with the
      recursive expression interpreter (``use_compiled=False,
      use_batches=False``) — the pre-E13 engine;
    - ``batched_ms``: compiled kernels applied batch-at-a-time, no
      fusion (``use_batches=True, use_fusion=False``);
    - ``fused_ms``: the default engine — straight-line
      bind→filter→let→project chains collapsed into one per-batch
      closure (``FusedPipeline``);
    - ``speedup_x``: interpreted / fused, the end-to-end win of the
      vectorized engine over the per-row interpreter.  The acceptance
      gate asserts >= 2x on the Q7 join (full scale; the SF=0.01 CI
      smoke uses a lower floor to absorb host noise).

    Shapes: a bare scan+project, the E13 expression-heavy filter, a
    filter→let→let→project chain (maximum fusion depth), and Q7
    end-to-end (multi-way join + COLLECT + TopK — the blocking
    operators bound how much of the plan can fuse).  Every mode's
    results are checked identical before anything is timed.
    """
    from repro.core.workloads import QUERY_BY_ID

    table = Table(
        f"E14: vectorized execution (SF={scale_factor}, ms)",
        ["case", "interpreted_ms", "batched_ms", "fused_ms", "speedup_x"],
    )
    dataset = DatasetGenerator(
        GeneratorConfig(seed=seed, scale_factor=scale_factor)
    ).generate()
    driver = UnifiedDriver()
    load_dataset(driver, dataset)

    cases = [(case, text, {"cutoff": 120.0}) for case, text in _E14_SHAPES]
    q7 = QUERY_BY_ID["Q7"]
    cases.append(("Q7", q7.text, q7.params(dataset)))

    for case, text, params in cases:
        results = {
            mode: driver.query(text, params, **flags)
            for mode, flags in _E14_MODES.items()
        }
        baseline = repr(results["interpreted"])
        for mode, rows in results.items():
            if repr(rows) != baseline:
                raise AssertionError(
                    f"E14: {case} diverged between interpreted and {mode}"
                )
        timings = {}
        for mode, flags in _E14_MODES.items():
            for _ in range(2):  # warm caches/snapshots outside the timer
                driver.query(text, params, **flags)
            with Stopwatch() as sw:
                for _ in range(repetitions):
                    driver.query(text, params, **flags)
            timings[mode] = sw.elapsed / repetitions
        table.add_row([
            case,
            round(timings["interpreted"] * 1000.0, 4),
            round(timings["batched"] * 1000.0, 4),
            round(timings["fused"] * 1000.0, 4),
            round(timings["interpreted"] / timings["fused"], 2)
            if timings["fused"]
            else float("inf"),
        ])
    return table


# ---------------------------------------------------------------------------
# E15 — observability overhead + span-tree verification
# ---------------------------------------------------------------------------

_E15_MODES = ("disabled", "metrics", "tracing")


def experiment_e15_observability(
    scale_factor: float = 0.05,
    repetitions: int = 15,
    seed: int = 42,
) -> Table:
    """Cost of the observability layer on the cluster's Q7 hot path.

    One 4-shard cluster, the E14 Q7 join, three instrumentation modes:

    - ``disabled``: the exact pre-observability execution path;
    - ``metrics``: counters + latency histograms, no tracing (the
      default production posture);
    - ``tracing``: full per-query span trees threaded through the
      scatter workers.

    Repetitions are *interleaved* (every mode runs once per round) and
    the table reports the per-mode minimum, so transient host noise
    cannot brand one mode slow; ``overhead_x`` is the ratio against the
    disabled floor — the CI smoke gates the tracing ratio at 1.05.

    Before timing, the tracing mode's span tree is verified for shape:
    a ShardExec span with one timed ``shard-N`` subspan per shard plus
    a gather span — the structural acceptance criterion of the
    observability layer.
    """
    from repro.core.workloads import QUERY_BY_ID

    n_shards = 4
    dataset = DatasetGenerator(
        GeneratorConfig(seed=seed, scale_factor=scale_factor)
    ).generate()
    driver = ShardedDatabase(n_shards=n_shards)
    load_dataset(driver, dataset)
    q7 = QUERY_BY_ID["Q7"]
    params = q7.params(dataset)
    obs = driver.observability
    obs.slow_log.threshold_ms = float("inf")  # capture cost, not entries

    def set_mode(mode: str) -> None:
        if mode == "disabled":
            obs.disable()
        else:
            obs.enable(tracing=mode == "tracing")

    # Correctness + span-shape gate before anything is timed.
    results = {}
    for mode in _E15_MODES:
        set_mode(mode)
        results[mode] = driver.query(q7.text, params)
    baseline = repr(results["disabled"])
    for mode, rows in results.items():
        if repr(rows) != baseline:
            raise AssertionError(f"E15: Q7 diverged under {mode}")
    trace = obs.last_trace
    if trace is None:
        raise AssertionError("E15: tracing mode produced no trace")
    scatters = [s for s in trace.root.walk() if s.name == "ShardExec"]
    if not scatters:
        raise AssertionError("E15: Q7 trace has no ShardExec span")
    shard_spans = [
        c for c in scatters[0].children if c.name.startswith("shard-")
    ]
    if len(shard_spans) != n_shards or any(
        s.elapsed_ms is None for s in shard_spans
    ):
        raise AssertionError(
            f"E15: expected {n_shards} timed per-shard subspans, got "
            f"{[(s.name, s.elapsed_ms) for s in shard_spans]}"
        )

    best = {mode: float("inf") for mode in _E15_MODES}
    for _ in range(repetitions):
        for mode in _E15_MODES:
            set_mode(mode)
            with Stopwatch() as sw:
                driver.query(q7.text, params)
            best[mode] = min(best[mode], sw.elapsed)
    set_mode("metrics")
    driver.close()

    table = Table(
        f"E15: observability overhead (SF={scale_factor}, {n_shards} shards, "
        f"Q7, min of {repetitions} interleaved reps)",
        ["mode", "q7_ms", "overhead_x"],
    )
    for mode in _E15_MODES:
        table.add_row([
            mode,
            round(best[mode] * 1000.0, 4),
            round(best[mode] / best["disabled"], 3)
            if best["disabled"] else float("inf"),
        ])
    return table


# ---------------------------------------------------------------------------
# E16 — process-parallel scatter: worker processes vs the thread pool
# ---------------------------------------------------------------------------

# The communication-avoiding scatter shapes: each ships O(matches),
# O(k) or O(groups) rows back per shard, so the wall-clock is dominated
# by per-shard scan work — exactly where process parallelism should
# show up and the GIL-bound thread pool cannot.  (Q7's join is *not*
# here: its shard-safe segment is just the vendors scan, so the join
# runs at the coordinator under either pool and measures nothing about
# the scatter.)
_E16_QUERIES = {
    "scatter_filter": (
        "FOR o IN orders FILTER o.total_price >= @lo RETURN o._id",
        False,
    ),
    "partial_topk": (
        "FOR o IN orders SORT o.total_price DESC LIMIT 10 "
        "RETURN o.total_price",
        True,
    ),
    "grouped_agg": (
        "FOR o IN orders COLLECT s = o.status "
        "AGGREGATE t = SUM(o.total_price), n = COUNT(o._id) "
        "SORT s RETURN {s: s, t: t, n: n}",
        True,
    ),
}


def _amplified_orders(dataset, min_rows: int) -> list[dict]:
    """The dataset's orders tiled (fresh ``_id`` per copy) to >= min_rows.

    Scatter wall-clock only separates the pools when per-shard work is
    measurable next to the per-query dispatch overhead (~1 frame round
    trip per shard); tiling scales the scan without changing the value
    distribution the queries see.
    """
    base = dataset.orders
    rows = [dict(order) for order in base]
    copy = 1
    while len(rows) < min_rows:
        for order in base:
            clone = dict(order)
            clone["_id"] = f"{order['_id']}~{copy}"
            rows.append(clone)
        copy += 1
    return rows


def _load_orders(driver, rows: list[dict], chunk: int = 2000) -> None:
    driver.create_collection("orders")
    for start in range(0, len(rows), chunk):
        part = rows[start : start + chunk]

        def body(s, part=part):
            for order in part:
                s.doc_insert("orders", dict(order))

        driver.run_transaction(body)


def experiment_e16_procpool(
    scale_factor: float = 0.05,
    repetitions: int = 5,
    seed: int = 42,
    n_shards: int = 4,
    min_rows: int = 20_000,
) -> Table:
    """Worker-process scatter vs the thread pool on the E10 scan mix.

    Three drivers over the identical amplified orders collection — the
    unified single-node store (the correctness oracle), an N-shard
    cluster with ``pool="threads"``, and the same topology with
    ``pool="processes"`` — so the table isolates exactly one variable:
    whether shard subplans run under one GIL or on real cores.

    Every query's results are checked byte-identical across all three
    drivers *before* anything is timed (sorted canonically for the
    unordered filter shape).  Timing interleaves the two pools every
    round and keeps per-case minima (the E14/E15 noise discipline); the
    ``scan_mix`` row sums the minima — the figure the CI bench gates,
    conditional on the host actually having more than one core.
    """
    dataset = DatasetGenerator(
        GeneratorConfig(seed=seed, scale_factor=scale_factor)
    ).generate()
    rows = _amplified_orders(dataset, min_rows)
    lo = sorted(o["total_price"] for o in rows)[int(len(rows) * 0.98)]
    params_for = {name: {} for name in _E16_QUERIES}
    params_for["scatter_filter"] = {"lo": lo}

    unified = UnifiedDriver()
    threads = ShardedDatabase(
        n_shards=n_shards, pool="threads", wal_sync_every_append=False
    )
    processes = ShardedDatabase(
        n_shards=n_shards, pool="processes", wal_sync_every_append=False
    )
    for driver in (unified, threads, processes):
        _load_orders(driver, rows)

    # Correctness gate: identical answers everywhere, before any timing.
    for name, (text, ordered) in _E16_QUERIES.items():
        results = [
            driver.query(text, params_for[name])
            for driver in (unified, threads, processes)
        ]
        canon = [
            repr(r) if ordered else repr(sorted(r, key=repr)) for r in results
        ]
        if len(set(canon)) != 1:
            raise AssertionError(f"E16: {name} diverged across drivers/pools")

    best: dict[str, dict[str, float]] = {
        name: {"threads": float("inf"), "processes": float("inf")}
        for name in _E16_QUERIES
    }
    for _ in range(repetitions):
        for name, (text, _ordered) in _E16_QUERIES.items():
            for mode, driver in (("threads", threads), ("processes", processes)):
                with Stopwatch() as sw:
                    driver.query(text, params_for[name])
                best[name][mode] = min(best[name][mode], sw.elapsed)

    pool_metrics = processes.remote_pool().metrics()
    threads.close()
    processes.close()

    table = Table(
        f"E16: process-parallel scatter (SF={scale_factor}, "
        f"{len(rows)} orders, {n_shards} shards, "
        f"{pool_metrics['workers']} workers, {os.cpu_count()} cpus, "
        f"min of {repetitions} interleaved reps)",
        ["case", "threads_ms", "processes_ms", "speedup_x"],
    )
    mix = {"threads": 0.0, "processes": 0.0}
    for name in _E16_QUERIES:
        timings = best[name]
        mix["threads"] += timings["threads"]
        mix["processes"] += timings["processes"]
        table.add_row([
            name,
            round(timings["threads"] * 1000.0, 3),
            round(timings["processes"] * 1000.0, 3),
            round(timings["threads"] / timings["processes"], 2)
            if timings["processes"] else float("inf"),
        ])
    table.add_row([
        "scan_mix",
        round(mix["threads"] * 1000.0, 3),
        round(mix["processes"] * 1000.0, 3),
        round(mix["threads"] / mix["processes"], 2)
        if mix["processes"] else float("inf"),
    ])
    return table


# ---------------------------------------------------------------------------
# E17 — replicated shards: quorum write acks and follower reads
# ---------------------------------------------------------------------------

_E17_READ_QUERIES = {
    "point": ("FOR d IN orders FILTER d._id == @id RETURN d", True),
    "filter": (
        "FOR d IN orders FILTER d.total_price >= @lo RETURN d._id", False
    ),
    "aggregate": (
        "FOR d IN orders COLLECT status = d.status "
        "AGGREGATE n = COUNT(1) RETURN {status: status, n: n}",
        False,
    ),
}


def experiment_e17_replication(
    scale_factor: float = 0.05,
    repetitions: int = 5,
    seed: int = 42,
    n_shards: int = 2,
    min_rows: int = 6_000,
    write_batch: int = 100,
    read_rounds: int = 30,
) -> Table:
    """Quorum write acks and follower reads on 3-replica shards.

    Two measurements over the identical amplified orders collection:

    - **write-ack latency** per single-doc commit as the quorum widens —
      an unreplicated cluster, then ``write_acks`` 1 / majority / all on
      3-replica shards (majority ships the WAL synchronously to one
      follower per shard, all to two);
    - **read throughput** of a point/filter/aggregate mix on the leader
      vs round-robined followers vs session-consistent follower reads.

    Before any timing, every read query must return identical answers
    through the leader, the followers (``write_acks="all"`` keeps them
    exactly current) and a session token — the parity gate the CI smoke
    exists for.  Timing keeps per-case minima across interleaved
    repetitions.
    """
    dataset = DatasetGenerator(
        GeneratorConfig(seed=seed, scale_factor=scale_factor)
    ).generate()
    rows = _amplified_orders(dataset, min_rows)
    lo = sorted(o["total_price"] for o in rows)[int(len(rows) * 0.9)]
    ids = [o["_id"] for o in rows[: max(write_batch, read_rounds)]]

    def build(replication: ReplicaSetConfig | None) -> ShardedDatabase:
        db = ShardedDatabase(
            n_shards=n_shards,
            wal_sync_every_append=False,
            replication=replication,
        )
        _load_orders(db, rows)
        return db

    write_modes: list[tuple[str, ReplicaSetConfig | None]] = [
        ("unreplicated", None),
        ("write_acks=1", ReplicaSetConfig(3, write_acks=1)),
        ("write_acks=majority", ReplicaSetConfig(3, write_acks="majority")),
        ("write_acks=all", ReplicaSetConfig(3, write_acks="all")),
    ]
    writers = {name: build(cfg) for name, cfg in write_modes}
    # Followers stay exactly current under write_acks="all", so the
    # same cluster serves the read comparison without a staleness
    # asterisk; the leader-read baseline is the unreplicated cluster.
    reader = ShardedDatabase(
        n_shards=n_shards,
        wal_sync_every_append=False,
        replication=ReplicaSetConfig(
            3, write_acks="all", read_preference="follower"
        ),
    )
    _load_orders(reader, rows)
    leader_baseline = writers["unreplicated"]
    token = reader.session_token()

    # Parity gate: leader, follower and session reads must agree on
    # every query shape before anything is timed.
    params_for = {"point": {"id": ids[0]}, "filter": {"lo": lo}, "aggregate": {}}
    for name, (text, ordered) in _E17_READ_QUERIES.items():
        results = [
            leader_baseline.query(text, params_for[name]),
            reader.query(text, params_for[name]),
            reader.query(text, params_for[name], session=token),
        ]
        canon = [
            repr(r) if ordered else repr(sorted(r, key=repr)) for r in results
        ]
        if len(set(canon)) != 1:
            raise AssertionError(
                f"E17: {name} diverged across leader/follower/session reads"
            )

    best_write = {name: float("inf") for name, _ in write_modes}
    best_read = {
        "reads_leader": float("inf"),
        "reads_follower": float("inf"),
        "reads_session": float("inf"),
    }
    n_read_queries = read_rounds * len(_E17_READ_QUERIES)
    for _ in range(repetitions):
        for name, _cfg in write_modes:
            db = writers[name]
            with Stopwatch() as sw:
                for i in range(write_batch):
                    with db.transaction() as s:
                        s.doc_update("orders", ids[i], {"bumped": name})
            best_write[name] = min(best_write[name], sw.elapsed)
        for case, db, session in (
            ("reads_leader", leader_baseline, None),
            ("reads_follower", reader, None),
            ("reads_session", reader, token),
        ):
            with Stopwatch() as sw:
                for r in range(read_rounds):
                    params_for["point"]["id"] = ids[r % len(ids)]
                    for name, (text, _ordered) in _E17_READ_QUERIES.items():
                        db.query(text, params_for[name], session=session)
            best_read[case] = min(best_read[case], sw.elapsed)

    follower_reads = sum(
        rs.metrics()["follower_reads_total"] for rs in reader.replica_sets
    )
    fallbacks = sum(
        rs.metrics()["session_fallbacks_total"] for rs in reader.replica_sets
    )
    for db in (*writers.values(), reader):
        db.close()

    table = Table(
        f"E17: replicated shards (SF={scale_factor}, {len(rows)} orders, "
        f"{n_shards} shards x 3 replicas, {write_batch}-txn write batch, "
        f"min of {repetitions} reps)",
        ["case", "commit_ms_per_txn", "read_qps", "detail"],
    )
    for name, cfg in write_modes:
        table.add_row([
            name,
            round(best_write[name] / write_batch * 1000.0, 4),
            "",
            "no replica sets" if cfg is None
            else f"acks_needed={cfg.acks_needed}/3",
        ])
    for case, detail in (
        ("reads_leader", "unreplicated baseline"),
        ("reads_follower", f"follower_reads={follower_reads}"),
        ("reads_session", f"session_fallbacks={fallbacks}"),
    ):
        table.add_row([
            case,
            "",
            round(n_read_queries / best_read[case], 1),
            detail,
        ])
    return table


EXTENSION_EXPERIMENTS = {
    "E7": experiment_e7_index_backends,
    "E8": experiment_e8_sessions,
    "E9": experiment_e9_migration_strategies,
    "E10": experiment_e10_sharding,
    "E11": experiment_e11_aggregation,
    "E12": experiment_e12_commit,
    "E13": experiment_e13_compile,
    "E14": experiment_e14_vectorized,
    "E15": experiment_e15_observability,
    "E16": experiment_e16_procpool,
    "E17": experiment_e17_replication,
    "YCSB": experiment_ycsb,
}
