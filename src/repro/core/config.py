"""Benchmark run configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datagen.config import GeneratorConfig
from repro.errors import BenchmarkError


@dataclass(frozen=True)
class BenchmarkConfig:
    """One benchmark run: data scale, repetitions, and measurement knobs."""

    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    warmup_repetitions: int = 1
    repetitions: int = 5
    transaction_count: int = 200
    use_indexes: bool = True

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise BenchmarkError("repetitions must be >= 1")
        if self.warmup_repetitions < 0:
            raise BenchmarkError("warmup_repetitions must be >= 0")
        if self.transaction_count < 1:
            raise BenchmarkError("transaction_count must be >= 1")

    @classmethod
    def small(cls, seed: int = 42) -> "BenchmarkConfig":
        """A configuration sized for tests and CI (SF = 0.05)."""
        return cls(generator=GeneratorConfig(seed=seed, scale_factor=0.05),
                   repetitions=3, transaction_count=50)

    @classmethod
    def default(cls, seed: int = 42) -> "BenchmarkConfig":
        """The headline configuration (SF = 0.5, laptop-scale)."""
        return cls(generator=GeneratorConfig(seed=seed, scale_factor=0.5))
