"""The paper's experiments: F1 (Figure 1) and E1-E6 (the four pillars).

Each ``experiment_*`` function is self-contained: it builds what it
needs, runs the measurement, and returns one or more
:class:`~repro.util.tables.Table` objects whose rendered form is what
EXPERIMENTS.md records and the ``benchmarks/`` harness regenerates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consistency.acid import probe_all
from repro.consistency.metrics import (
    consistency_probability,
    read_your_writes_violation_rate,
    staleness_distribution,
)
from repro.consistency.replication import ReplicationConfig
from repro.conversion.base import ConversionTask, run_conversion_task
from repro.conversion.json_kv import document_to_kv_pairs, kv_pairs_to_document
from repro.conversion.json_xml import (
    gold_order_summary,
    invoice_to_order_summary,
    order_to_invoice,
)
from repro.conversion.relational_graph import (
    gold_purchase_edges,
    purchase_graph_edges,
    purchase_graph_from_entities,
)
from repro.conversion.relational_json import (
    documents_to_order_rows,
    gold_customer_document,
    gold_order_rows,
    rows_to_documents,
)
from repro.core.config import BenchmarkConfig
from repro.core.runner import QueryRunner, TransactionRunner
from repro.core.workloads import QUERIES, TRANSACTIONS, TRANSACTION_BY_ID
from repro.datagen.config import GeneratorConfig
from repro.datagen.generator import Dataset, DatasetGenerator, build_invoice
from repro.datagen.load import load_dataset
from repro.datagen.schemas import CUSTOMERS_SCHEMA
from repro.drivers.polyglot import PolyglotDriver
from repro.drivers.unified import UnifiedDriver
from repro.engine.transactions import IsolationLevel
from repro.errors import SimulatedCrash
from repro.baselines.polyglot import CrashDuringCommit
from repro.models.graph.algorithms import connected_components
from repro.models.graph.property_graph import PropertyGraph
from repro.schema.evolution import random_evolution_chain
from repro.schema.registry import SchemaRegistry, migrate_documents
from repro.schema.shapes import orders_shape
from repro.schema.usability import check_usability
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.tables import Table
from repro.util.timing import Stopwatch


def _generate(config: BenchmarkConfig) -> Dataset:
    return DatasetGenerator(config.generator).generate()


def _loaded_pair(config: BenchmarkConfig) -> tuple[Dataset, UnifiedDriver, PolyglotDriver]:
    dataset = _generate(config)
    unified = UnifiedDriver()
    polyglot = PolyglotDriver()
    load_dataset(unified, dataset, with_indexes=config.use_indexes)
    load_dataset(polyglot, dataset, with_indexes=config.use_indexes)
    return dataset, unified, polyglot


# ---------------------------------------------------------------------------
# F1 — the multi-model dataset of Figure 1
# ---------------------------------------------------------------------------


def experiment_f1_datagen(scale_factors: list[float] | None = None, seed: int = 42) -> Table:
    """Figure 1 reproduction: entity counts per model at each scale factor."""
    scale_factors = scale_factors or [0.1, 1.0]
    table = Table(
        "F1: multi-model dataset (Figure 1)",
        ["scale_factor", "model", "container", "entities", "integrity_ok"],
    )
    for sf in scale_factors:
        dataset = DatasetGenerator(GeneratorConfig(seed=seed, scale_factor=sf)).generate()
        ok = not dataset.verify_integrity()
        rows = [
            ("relational", "customers", len(dataset.customers)),
            ("relational", "vendors", len(dataset.vendors)),
            ("json", "products", len(dataset.products)),
            ("json", "orders", len(dataset.orders)),
            ("key-value", "feedback", len(dataset.feedback)),
            ("xml", "invoices", len(dataset.invoices)),
            ("graph", "social vertices", len(dataset.persons)),
            ("graph", "knows edges", len(dataset.knows_edges)),
        ]
        for model, container, count in rows:
            table.add_row([sf, model, container, count, ok])
    return table


def experiment_f1_graph_shape(seed: int = 42, scale_factor: float = 0.5) -> Table:
    """Companion sanity table: the social graph is connected and skewed."""
    dataset = DatasetGenerator(
        GeneratorConfig(seed=seed, scale_factor=scale_factor)
    ).generate()
    graph = PropertyGraph("social")
    for person in dataset.persons:
        graph.add_vertex(person["id"], "person")
    for src, dst, since in dataset.knows_edges:
        graph.add_edge(src, dst, "knows", since=since)
    components = connected_components(graph)
    degrees = sorted((graph.degree(v.id) for v in graph.vertices()), reverse=True)
    table = Table(
        "F1b: social graph shape",
        ["metric", "value"],
    )
    table.add_row(["vertices", graph.vertex_count()])
    table.add_row(["edges", graph.edge_count()])
    table.add_row(["components", len(components)])
    table.add_row(["largest_component", len(components[0]) if components else 0])
    table.add_row(["max_degree", degrees[0] if degrees else 0])
    table.add_row(["median_degree", degrees[len(degrees) // 2] if degrees else 0])
    return table


# ---------------------------------------------------------------------------
# E1 — the multi-model query workload
# ---------------------------------------------------------------------------


def experiment_e1_queries(config: BenchmarkConfig | None = None) -> Table:
    """Q1-Q10 latency: unified vs polyglot, with the index ablation."""
    config = config or BenchmarkConfig.small()
    dataset, unified, polyglot = _loaded_pair(config)
    table = Table(
        "E1: multi-model query latency (ms)",
        ["query", "models", "rows", "unified", "unified_noidx", "polyglot"],
    )
    run_u = QueryRunner(unified, dataset, config.repetitions, config.warmup_repetitions)
    run_u_noidx = QueryRunner(
        unified, dataset, config.repetitions, config.warmup_repetitions, use_indexes=False
    )
    run_p = QueryRunner(polyglot, dataset, config.repetitions, config.warmup_repetitions)
    for query in QUERIES:
        m_u = run_u.run(query)
        m_noidx = run_u_noidx.run(query)
        m_p = run_p.run(query)
        table.add_row(
            [
                query.query_id,
                "+".join(query.models),
                m_u.result_size,
                round(m_u.mean_ms, 3),
                round(m_noidx.mean_ms, 3),
                round(m_p.mean_ms, 3),
            ]
        )
    return table


# ---------------------------------------------------------------------------
# E2 — schema evolution vs history-query usability
# ---------------------------------------------------------------------------


def experiment_e2_evolution(
    chain_lengths: list[int] | None = None,
    seed: int = 42,
    scale_factor: float = 0.05,
    trials: int = 5,
) -> Table:
    """Usability of the history query set after evolution chains of length k."""
    chain_lengths = chain_lengths or [1, 2, 4, 8, 16]
    history_queries = [q.text for q in QUERIES]
    dataset = DatasetGenerator(
        GeneratorConfig(seed=seed, scale_factor=scale_factor)
    ).generate()
    table = Table(
        "E2: schema evolution vs history-query usability",
        ["chain_length", "mode", "usability", "broken_queries", "migrate_ms_per_kdoc"],
    )
    max_k = max(chain_lengths)
    n_docs = max(1, len(dataset.orders))
    for mode, additive_only in (("additive", True), ("mixed", False)):
        # Accumulators per chain length, averaged over trials.  Each trial
        # extends ONE chain and measures usability at every prefix, so the
        # per-trial curve is monotone (evolution never un-breaks a query).
        acc = {k: [0.0, 0.0, 0.0] for k in chain_lengths}
        for trial in range(trials):
            rng = DeterministicRng(derive_seed(seed, "e2", mode, trial))
            registry = SchemaRegistry()
            shape = orders_shape()
            registry.register(shape)
            ops = random_evolution_chain(shape, max_k, rng, additive_only=additive_only)
            for op in ops:
                shape = registry.apply(op)
            for k in chain_lengths:
                prefix = ops[:k]
                report = check_usability(
                    history_queries, _shape_after(orders_shape(), prefix)
                )
                with Stopwatch() as sw:
                    migrate_documents(dataset.orders, prefix)
                acc[k][0] += report.usability
                acc[k][1] += len(report.broken_queries)
                acc[k][2] += sw.elapsed * 1000.0
        for k in chain_lengths:
            usability_sum, broken_sum, migrate_ms = acc[k]
            table.add_row(
                [
                    k,
                    mode,
                    round(usability_sum / trials, 3),
                    round(broken_sum / trials, 2),
                    round(migrate_ms / trials / n_docs * 1000.0, 3),
                ]
            )
    return table


def _shape_after(shape, ops):
    """Apply an op chain to a shape (pure helper for prefix measurement)."""
    for op in ops:
        shape = op.apply_to_shape(shape)
    return shape


# ---------------------------------------------------------------------------
# E3 — multi-model ACID: anomalies and throughput per isolation level
# ---------------------------------------------------------------------------


def experiment_e3_anomalies() -> Table:
    """The anomaly matrix across isolation levels."""
    matrix = probe_all()
    levels = list(IsolationLevel)
    table = Table(
        "E3a: anomaly occurrence by isolation level",
        ["anomaly"] + [level.value for level in levels],
    )
    for name, row in matrix.cells.items():
        table.add_row([name] + ["yes" if row[level] else "no" for level in levels])
    return table


def experiment_e3_throughput(config: BenchmarkConfig | None = None) -> Table:
    """T1-T4 mix throughput per isolation level, plus the polyglot baseline."""
    config = config or BenchmarkConfig.small()
    table = Table(
        "E3b: cross-model transaction throughput",
        ["driver", "isolation", "committed", "aborted", "txn_per_sec"],
    )
    for isolation in (
        IsolationLevel.READ_COMMITTED,
        IsolationLevel.SNAPSHOT,
        IsolationLevel.SERIALIZABLE,
    ):
        dataset = _generate(config)
        driver = UnifiedDriver(isolation=isolation)
        load_dataset(driver, dataset, with_indexes=config.use_indexes)
        runner = TransactionRunner(driver, dataset, isolation_name=isolation.value)
        result = runner.run_mix(TRANSACTIONS, config.transaction_count)
        table.add_row(
            [
                driver.name,
                isolation.value,
                result.committed,
                result.aborted,
                round(result.throughput, 1),
            ]
        )
    dataset = _generate(config)
    polyglot = PolyglotDriver()
    load_dataset(polyglot, dataset, with_indexes=config.use_indexes)
    runner = TransactionRunner(polyglot, dataset, isolation_name="per-store")
    result = runner.run_mix(TRANSACTIONS, config.transaction_count)
    table.add_row(
        [
            polyglot.name,
            "per-store",
            result.committed,
            result.aborted,
            round(result.throughput, 1),
        ]
    )
    return table


def experiment_e3_contention(
    batches: int = 20, txns_per_batch: int = 3
) -> Table:
    """Conflicting T2 batches: abort/block/lost-update behaviour per level."""
    from repro.core.contention import run_contended

    table = Table(
        "E3c: contended order updates (same hot order)",
        ["isolation", "committed", "aborted", "abort_rate", "blocked_events",
         "lost_updates"],
    )
    for isolation in (
        IsolationLevel.READ_COMMITTED,
        IsolationLevel.SNAPSHOT,
        IsolationLevel.SERIALIZABLE,
    ):
        result = run_contended(isolation, batches, txns_per_batch)
        table.add_row(
            [
                result.isolation,
                result.committed,
                result.aborted,
                round(result.abort_rate, 3),
                result.blocked_events,
                result.lost_updates,
            ]
        )
    return table


# ---------------------------------------------------------------------------
# E4 — eventual consistency
# ---------------------------------------------------------------------------


def experiment_e4_consistency(
    lags: list[int] | None = None, loss_probabilities: list[float] | None = None
) -> Table:
    """Staleness and PBS metrics as replication lag and loss grow."""
    lags = lags or [1, 4, 16, 64]
    loss_probabilities = loss_probabilities if loss_probabilities is not None else [0.0, 0.1]
    table = Table(
        "E4: eventual consistency vs replication lag",
        [
            "base_lag", "loss", "fresh_reads", "mean_staleness_versions",
            "p95_staleness_ticks", "t_99pct_fresh", "ryw_violations",
        ],
    )
    for loss in loss_probabilities:
        for lag in lags:
            config = ReplicationConfig(
                base_lag=lag, jitter=max(1, lag // 2), loss_probability=loss
            )
            stats = staleness_distribution(config)
            curve = consistency_probability(
                config, delays=[0, 1, 2, 4, 8, 16, 32, 64, 128, 256]
            )
            t99 = curve.time_to_probability(0.99)
            ryw = read_your_writes_violation_rate(config, read_delay=1)
            table.add_row(
                [
                    lag,
                    loss,
                    round(stats.fresh_fraction, 3),
                    round(stats.version_staleness.mean, 2),
                    round(stats.time_staleness.percentile(95), 1),
                    t99 if t99 is not None else "never",
                    round(ryw, 3),
                ]
            )
    return table


# ---------------------------------------------------------------------------
# E5 — data conversion against gold standards
# ---------------------------------------------------------------------------


def experiment_e5_conversion(seed: int = 42, scale_factor: float = 0.2) -> Table:
    """Every conversion task scored against its gold standard."""
    dataset = DatasetGenerator(
        GeneratorConfig(seed=seed, scale_factor=scale_factor)
    ).generate()
    customers_by_id = {c["id"]: c for c in dataset.customers}

    def graph_task_convert(orders):
        return purchase_graph_edges(
            purchase_graph_from_entities(dataset.customers, orders)
        )

    tasks: list[tuple[ConversionTask, list]] = [
        (
            ConversionTask(
                "relational->json (customers)",
                lambda row: rows_to_documents([row], CUSTOMERS_SCHEMA)[0],
                gold_customer_document,
            ),
            dataset.customers,
        ),
        (
            ConversionTask(
                "json->relational (order shredding)",
                documents_to_order_rows,
                gold_order_rows,
            ),
            dataset.orders,
        ),
        (
            ConversionTask(
                "json->xml (order to invoice)",
                lambda o: order_to_invoice(o, customers_by_id[o["customer_id"]]),
                lambda o: build_invoice(o, customers_by_id[o["customer_id"]]),
            ),
            dataset.orders,
        ),
        (
            ConversionTask(
                "xml->json (invoice roundtrip)",
                lambda o: invoice_to_order_summary(
                    build_invoice(o, customers_by_id[o["customer_id"]])
                ),
                lambda o: gold_order_summary(o, customers_by_id[o["customer_id"]]),
            ),
            dataset.orders,
        ),
        (
            ConversionTask(
                "json->kv->json (flatten roundtrip)",
                lambda o: kv_pairs_to_document(document_to_kv_pairs(o)),
                lambda o: o,
            ),
            dataset.orders,
        ),
        (
            ConversionTask(
                "relational+json->graph (purchases)",
                graph_task_convert,
                lambda orders: gold_purchase_edges(dataset.customers, orders),
            ),
            [dataset.orders],  # one batch item: the whole order set
        ),
    ]
    table = Table(
        "E5: model conversion vs gold standard",
        ["task", "items", "accuracy", "items_per_sec"],
    )
    for task, inputs in tasks:
        outcome = run_conversion_task(task, inputs)
        table.add_row(
            [
                outcome.task,
                outcome.items,
                round(outcome.accuracy, 4),
                round(outcome.items_per_second, 0),
            ]
        )
    return table


# ---------------------------------------------------------------------------
# E6 — crash atomicity: unified WAL vs polyglot per-store commits
# ---------------------------------------------------------------------------


@dataclass
class _AtomicityCheck:
    trials: int
    fractured: int

    @property
    def fracture_rate(self) -> float:
        return self.fractured / self.trials if self.trials else 0.0


def _order_update_consistent(order_status, invoice_status, feedback) -> bool:
    """The T2 invariant: all three models updated together, or none."""
    updated = [
        order_status == "shipped",
        invoice_status == "shipped",
        feedback is not None,
    ]
    return all(updated) or not any(updated)


def experiment_e6_atomicity(trials: int = 20, seed: int = 42) -> Table:
    """Inject a crash mid-commit; count fractured multi-model states."""
    from repro.models.xml.node import element
    from repro.models.xml.node import text as xml_text

    def fresh_unified() -> UnifiedDriver:
        driver = UnifiedDriver()
        driver.create_collection("orders")
        driver.create_kv_namespace("feedback")
        driver.create_xml_collection("invoices")
        driver.load(_seed_order)
        return driver

    def _seed_order(s) -> None:
        s.doc_insert("orders", {"_id": "o1", "customer_id": 1, "status": "pending",
                                "total_price": 10.0})
        s.xml_put("invoices", "o1",
                  element("invoice", {"id": "o1", "status": "pending"},
                          element("total", {}, xml_text("10.00"))))

    def t2_body(s) -> None:
        s.doc_update("orders", "o1", {"status": "shipped"})
        s.kv_put("feedback", "p1/1", {"rating": 5})
        s.xml_put("invoices", "o1",
                  element("invoice", {"id": "o1", "status": "shipped"},
                          element("total", {}, xml_text("10.00"))))

    # Unified: crash between write records and the commit record.
    unified_check = _AtomicityCheck(trials, 0)
    for _ in range(trials):
        driver = fresh_unified()
        driver.db.manager.crash_before_next_commit_record = True
        try:
            driver.run_transaction(t2_body)
        except SimulatedCrash:
            pass
        recovered = driver.db.crash()
        with recovered.transaction() as tx:
            order_status = tx.doc_get("orders", "o1")["status"]
            invoice = tx.xml_get("invoices", "o1")
            invoice_status = invoice.get("status") if invoice is not None else None
            feedback = tx.kv_get("feedback", "p1/1")
        if not _order_update_consistent(order_status, invoice_status, feedback):
            unified_check.fractured += 1

    # Polyglot: crash between the five per-store commit points.
    rng = DeterministicRng(derive_seed(seed, "e6"))
    polyglot_check = _AtomicityCheck(trials, 0)
    for _ in range(trials):
        driver = PolyglotDriver()
        driver.create_collection("orders")
        driver.create_kv_namespace("feedback")
        driver.create_xml_collection("invoices")
        driver.load(_seed_order)
        driver.db.crash_after_stores = rng.randint(1, 2)
        try:
            driver.run_transaction(t2_body)
        except CrashDuringCommit:
            pass
        driver.db.crash_after_stores = None
        session = driver.db.session()
        order_status = session.doc_get("orders", "o1")["status"]
        invoice = session.xml_get("invoices", "o1")
        invoice_status = invoice.get("status") if invoice is not None else None
        feedback = session.kv_get("feedback", "p1/1")
        if not _order_update_consistent(order_status, invoice_status, feedback):
            polyglot_check.fractured += 1

    table = Table(
        "E6: crash atomicity of the multi-model order update",
        ["architecture", "trials", "fractured_states", "fracture_rate"],
    )
    table.add_row(["unified (single WAL)", trials, unified_check.fractured,
                   round(unified_check.fracture_rate, 3)])
    table.add_row(["polyglot (commit per store)", trials, polyglot_check.fractured,
                   round(polyglot_check.fracture_rate, 3)])
    return table


ALL_EXPERIMENTS = {
    "F1": experiment_f1_datagen,
    "F1b": experiment_f1_graph_shape,
    "E1": experiment_e1_queries,
    "E2": experiment_e2_evolution,
    "E3a": experiment_e3_anomalies,
    "E3b": experiment_e3_throughput,
    "E3c": experiment_e3_contention,
    "E4": experiment_e4_consistency,
    "E5": experiment_e5_conversion,
    "E6": experiment_e6_atomicity,
}
