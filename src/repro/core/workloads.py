"""The shared benchmark workload: queries Q1-Q10 and transactions T1-T4.

Every query is MMQL text plus a parameter derivation from the generated
dataset, so the *same* workload runs against every driver ("benchmarking
data and queries ... developed, shared, unified").  The "models" field
documents which of Figure 1's models each query touches — all but two
span at least two models.

Transactions are session-level callables using only the method surface
shared by :class:`repro.engine.database.Session` and
:class:`repro.baselines.polyglot.PolyglotSession`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.datagen.generator import Dataset
from repro.models.xml.node import element
from repro.models.xml.node import text as xml_text
from repro.util.rng import DeterministicRng, derive_seed


@dataclass(frozen=True)
class QueryDef:
    """One benchmark query: id, models touched, MMQL text, params."""

    query_id: str
    description: str
    models: tuple[str, ...]
    text: str
    params: Callable[[Dataset], dict[str, Any]]


def _median_total(dataset: Dataset) -> float:
    totals = sorted(o["total_price"] for o in dataset.orders)
    return totals[len(totals) // 2] if totals else 0.0


def _top_country(dataset: Dataset) -> str:
    counts: dict[str, int] = {}
    for c in dataset.customers:
        counts[c["country"]] = counts.get(c["country"], 0) + 1
    return max(counts, key=lambda k: counts[k])


def _heavy_customer(dataset: Dataset) -> int:
    counts: dict[int, int] = {}
    for o in dataset.orders:
        counts[o["customer_id"]] = counts.get(o["customer_id"], 0) + 1
    return max(counts, key=lambda k: counts[k])


def _popular_product(dataset: Dataset) -> str:
    counts: dict[str, int] = {}
    for o in dataset.orders:
        for item in o["items"]:
            counts[item["product_id"]] = counts.get(item["product_id"], 0) + 1
    return max(counts, key=lambda k: counts[k])


QUERIES: list[QueryDef] = [
    QueryDef(
        "Q1",
        "Order point lookup joined with its XML invoice total",
        ("json", "xml"),
        """
        FOR o IN orders
          FILTER o._id == @order_id
          RETURN {id: o._id, status: o.status,
                  invoice_total: FIRST(XPATH(XMLGET("invoices", o._id),
                                             "/invoice/total/text()"))}
        """,
        lambda ds: {"order_id": ds.orders[len(ds.orders) // 2]["_id"]},
    ),
    QueryDef(
        "Q2",
        "Order count and revenue per customer of one country",
        ("relational", "json"),
        """
        FOR c IN customers
          FILTER c.country == @country
          FOR o IN orders
            FILTER o.customer_id == c.id
            COLLECT cid = c.id, name = c.last_name
              AGGREGATE n = COUNT(1), revenue = SUM(o.total_price)
            SORT revenue DESC
            RETURN {cid, name, n, revenue}
        """,
        lambda ds: {"country": _top_country(ds)},
    ),
    QueryDef(
        "Q3",
        "Average feedback rating for the orders of one product",
        ("json", "kv"),
        """
        FOR o IN orders
          FOR it IN o.items
            FILTER it.product_id == @product_id
            LET fb = KVGET("feedback", CONCAT(@product_id, "/", o.customer_id))
            FILTER fb != NULL
            COLLECT pid = it.product_id
              AGGREGATE n = COUNT(1), avg_rating = AVG(fb.rating)
            RETURN {pid, n, avg_rating}
        """,
        lambda ds: {"product_id": _popular_product(ds)},
    ),
    QueryDef(
        "Q4",
        "Products bought by the 2-hop social neighbourhood of a customer",
        ("graph", "json"),
        """
        FOR friend IN TRAVERSE("social", @customer_id, 1, 2, "knows")
          FOR o IN orders
            FILTER o.customer_id == friend._id
            FOR it IN o.items
              RETURN DISTINCT it.product_id
        """,
        lambda ds: {"customer_id": _heavy_customer(ds)},
    ),
    QueryDef(
        "Q5",
        "Top-10 customers by total spend, with relational detail",
        ("relational", "json"),
        """
        FOR o IN orders
          COLLECT cid = o.customer_id AGGREGATE spend = SUM(o.total_price)
          SORT spend DESC
          LIMIT 10
          LET c = DOCUMENT("customers", cid)
          RETURN {cid, name: c.last_name, country: c.country, spend}
        """,
        lambda ds: {},
    ),
    QueryDef(
        "Q6",
        "Invoices above a threshold, selected by XPath over XML",
        ("xml",),
        """
        FOR inv IN invoices
          LET total = TO_NUMBER(FIRST(XPATH(inv.root, "/invoice/total/text()")))
          FILTER total > @threshold
          SORT total DESC
          LIMIT 20
          RETURN {id: inv._id, total}
        """,
        lambda ds: {"threshold": _median_total(ds) * 2},
    ),
    QueryDef(
        "Q7",
        "Vendor revenue: relational vendors joined through JSON products and orders",
        ("relational", "json"),
        """
        FOR v IN vendors
          FOR p IN products
            FILTER p.vendor_id == v.id
            FOR o IN orders
              FOR it IN o.items
                FILTER it.product_id == p._id
                COLLECT vendor = v.name
                  AGGREGATE revenue = SUM(it.amount)
                SORT revenue DESC
                LIMIT 5
                RETURN {vendor, revenue}
        """,
        lambda ds: {},
    ),
    QueryDef(
        "Q8",
        "Rating histogram over the KV feedback of one product category",
        ("json", "kv"),
        """
        FOR p IN products
          FILTER p.category == @category
          FOR fb IN KV("feedback", CONCAT(p._id, "/"))
            COLLECT rating = fb.value.rating AGGREGATE n = COUNT(1)
            SORT rating
            RETURN {rating, n}
        """,
        lambda ds: {"category": ds.products[0]["category"]},
    ),
    QueryDef(
        "Q9",
        "Shortest social path between two customers, with countries",
        ("graph", "relational"),
        """
        LET path = SHORTEST_PATH("social", @src, @dst, "knows")
        FILTER path != NULL
        FOR vid IN path
          LET c = DOCUMENT("customers", vid)
          RETURN {id: vid, country: c.country}
        """,
        lambda ds: {
            "src": _heavy_customer(ds),
            "dst": DeterministicRng(derive_seed(ds.config.seed, "q9")).randint(
                1, ds.config.num_customers
            ),
        },
    ),
    QueryDef(
        "Q10",
        "Order 360: one order across all five models",
        ("relational", "json", "xml", "kv", "graph"),
        """
        FOR o IN orders
          FILTER o._id == @order_id
          LET c = DOCUMENT("customers", o.customer_id)
          LET friends = TRAVERSE("social", o.customer_id, 1, 1, "knows")
          LET inv = XMLGET("invoices", o._id)
          RETURN {
            id: o._id,
            customer: CONCAT(c.first_name, " ", c.last_name),
            country: c.country,
            invoice_total: FIRST(XPATH(inv, "/invoice/total/text()")),
            friend_count: LENGTH(friends),
            ratings: [
              FOR it IN o.items
                LET fb = KVGET("feedback", CONCAT(it.product_id, "/", o.customer_id))
                FILTER fb != NULL
                RETURN fb.rating
            ]
          }
        """,
        lambda ds: {"order_id": ds.orders[0]["_id"]},
    ),
]

def _range_bounds(dataset: Dataset) -> dict[str, float]:
    """A selective window: roughly the top 2% of orders by total."""
    totals = sorted(o["total_price"] for o in dataset.orders)
    if not totals:
        return {"lo": 0.0, "hi": 1.0}
    lo = totals[-min(len(totals), max(2, len(totals) // 50))]
    return {"lo": lo, "hi": totals[-1] + 1.0}


# Optimizer-focused companions to Q1-Q10: these exercise the physical
# plans the rule-based optimizer picks (IndexRangeScan, bounded-heap
# TopK) and ride in the E1 benchmark file, not the core 10-query table.
EXTENDED_QUERIES: list[QueryDef] = [
    QueryDef(
        "Q11",
        "Selective range scan: orders inside a narrow total_price window",
        ("json",),
        """
        FOR o IN orders
          FILTER o.total_price >= @lo AND o.total_price < @hi
          RETURN {id: o._id, total: o.total_price}
        """,
        _range_bounds,
    ),
    QueryDef(
        "Q12",
        "Top-10 orders by total_price (fused SORT+LIMIT TopK)",
        ("json",),
        """
        FOR o IN orders
          SORT o.total_price DESC
          LIMIT 10
          RETURN {id: o._id, total: o.total_price}
        """,
        lambda ds: {},
    ),
]

QUERY_BY_ID = {q.query_id: q for q in QUERIES + EXTENDED_QUERIES}


# ---------------------------------------------------------------------------
# Transactions T1-T4
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TransactionDef:
    """One cross-model transaction template.

    ``make`` takes (dataset, rng, sequence_number) and returns a body
    callable suitable for ``driver.run_transaction``.
    """

    txn_id: str
    description: str
    models: tuple[str, ...]
    make: Callable[[Dataset, DeterministicRng, int], Callable[[Any], Any]]


def _t1_place_order(dataset: Dataset, rng: DeterministicRng, seq: int):
    customer = rng.choice(dataset.customers)
    product = rng.choice(dataset.products)
    quantity = rng.randint(1, 3)
    order_id = f"tx_o{seq}"

    def body(s: Any) -> str:
        price = s.doc_get("products", product["_id"])["price"]
        amount = round(price * quantity, 2)
        s.doc_insert(
            "orders",
            {
                "_id": order_id,
                "customer_id": customer["id"],
                "order_date": "2016-06-01",
                "status": "pending",
                "total_price": amount,
                "items": [
                    {
                        "product_id": product["_id"],
                        "quantity": quantity,
                        "unit_price": price,
                        "amount": amount,
                    }
                ],
            },
        )
        stock = s.doc_get("products", product["_id"]).get("stock")
        if stock is not None:
            s.doc_update("products", product["_id"], {"stock": max(0, stock - quantity)})
        s.xml_put(
            "invoices", order_id,
            element("invoice", {"id": order_id, "date": "2016-06-01"},
                    element("total", {}, xml_text(f"{amount:.2f}"))),
        )
        return order_id

    return body


def _t2_order_update(dataset: Dataset, rng: DeterministicRng, seq: int):
    """The paper's example: an order update touching JSON + KV + XML."""
    order = rng.choice(dataset.orders)
    item = rng.choice(order["items"])

    def body(s: Any) -> None:
        s.doc_update("orders", order["_id"], {"status": "shipped"})
        s.doc_update("products", item["product_id"], {"last_shipped": "2016-06-01"})
        s.kv_put(
            "feedback",
            f"{item['product_id']}/{order['customer_id']}",
            {"rating": rng.randint(1, 5), "text": "updated with shipment", "date": "2016-06-01"},
        )
        s.xml_put(
            "invoices", order["_id"],
            element("invoice", {"id": order["_id"], "date": order.get("order_date", ""),
                                "status": "shipped"},
                    element("total", {}, xml_text(f"{order['total_price']:.2f}"))),
        )

    return body


def _t3_feedback(dataset: Dataset, rng: DeterministicRng, seq: int):
    order = rng.choice(dataset.orders)
    item = rng.choice(order["items"])
    rating = rng.randint(1, 5)

    def body(s: Any) -> None:
        s.kv_put(
            "feedback",
            f"{item['product_id']}/{order['customer_id']}",
            {"rating": rating, "text": "benchmark feedback", "date": "2016-06-01"},
        )
        product = s.doc_get("products", item["product_id"])
        count = product.get("rating_count", 0) + 1
        mean = product.get("rating_mean", 0.0)
        s.doc_update(
            "products", item["product_id"],
            {"rating_count": count, "rating_mean": mean + (rating - mean) / count},
        )

    return body


def _t4_friendship(dataset: Dataset, rng: DeterministicRng, seq: int):
    a = rng.randint(1, len(dataset.customers))
    b = rng.randint(1, len(dataset.customers))

    def body(s: Any) -> None:
        if a != b:
            s.graph_add_edge("social", a, b, "knows", since=2016)
        s.kv_put(
            "feedback",
            f"recommendation/{a}/{b}",
            {"reason": "new_friend", "date": "2016-06-01"},
        )

    return body


TRANSACTIONS: list[TransactionDef] = [
    TransactionDef(
        "T1", "Place order: JSON order + product stock + XML invoice",
        ("json", "xml"), _t1_place_order,
    ),
    TransactionDef(
        "T2", "Order update (paper's example): JSON orders+products, KV feedback, XML invoice",
        ("json", "kv", "xml"), _t2_order_update,
    ),
    TransactionDef(
        "T3", "Submit feedback: KV put + JSON rating aggregate",
        ("kv", "json"), _t3_feedback,
    ),
    TransactionDef(
        "T4", "New friendship: graph edge + KV recommendation",
        ("graph", "kv"), _t4_friendship,
    ),
]

TRANSACTION_BY_ID = {t.txn_id: t for t in TRANSACTIONS}
