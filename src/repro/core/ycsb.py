"""YCSB-style key-value workloads (A-F).

The paper positions UDBMS-benchmark against general-purpose suites:
"A number of benchmarks have been proposed that can be used to evaluate
big data systems (e.g. YCSB ...). Unfortunately, those ... are not
designed for the evaluation of multi-model databases."  We include the
YCSB core workloads over the engine's key-value model both as a sanity
baseline (the unified engine is also a competent KV store) and to make
the contrast concrete: every workload here touches exactly *one* model.

Workload mixes (read/update/insert/scan/rmw fractions, YCSB defaults):

- A: update heavy    (50/50/0/0/0)
- B: read mostly     (95/5/0/0/0)
- C: read only       (100/0/0/0/0)
- D: read latest     (95/0/5/0/0), reads skewed to recent inserts
- E: short scans     (0/0/5/95/0), scan length uniform 1..100
- F: read-modify-write (50/0/0/0/50)

Key selection is Zipf over the loaded keyspace (theta 0.99), as in YCSB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.drivers.base import Driver
from repro.errors import BenchmarkError, TransactionAborted
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.timing import Stopwatch

NAMESPACE = "usertable"

# workload -> (read, update, insert, scan, rmw) fractions
WORKLOADS: dict[str, tuple[float, float, float, float, float]] = {
    "A": (0.50, 0.50, 0.00, 0.00, 0.00),
    "B": (0.95, 0.05, 0.00, 0.00, 0.00),
    "C": (1.00, 0.00, 0.00, 0.00, 0.00),
    "D": (0.95, 0.00, 0.05, 0.00, 0.00),
    "E": (0.00, 0.00, 0.05, 0.95, 0.00),
    "F": (0.50, 0.00, 0.00, 0.00, 0.50),
}


def _key(i: int) -> str:
    return f"user{i:08d}"


def _value(rng: DeterministicRng) -> dict[str, str]:
    return {f"field{j}": f"{rng.randint(0, 1 << 30):08x}" for j in range(4)}


@dataclass
class YcsbResult:
    workload: str
    driver: str
    operations: int
    seconds: float
    reads: int = 0
    updates: int = 0
    inserts: int = 0
    scans: int = 0
    rmws: int = 0
    not_found: int = 0
    aborted: int = 0

    @property
    def ops_per_sec(self) -> float:
        return self.operations / self.seconds if self.seconds > 0 else 0.0


class YcsbRunner:
    """Loads the keyspace and drives one workload mix against a driver."""

    def __init__(self, driver: Driver, record_count: int = 1000, seed: int = 77) -> None:
        self.driver = driver
        self.record_count = record_count
        self.seed = seed
        self._inserted = record_count

    def load(self) -> None:
        """Create the namespace and insert the initial records."""
        self.driver.create_kv_namespace(NAMESPACE)
        rng = DeterministicRng(derive_seed(self.seed, "ycsb", "load"))
        batch = 500
        for start in range(0, self.record_count, batch):
            end = min(start + batch, self.record_count)

            def fill(session, start=start, end=end) -> None:
                for i in range(start, end):
                    session.kv_put(NAMESPACE, _key(i), _value(rng))

            self.driver.load(fill)

    def run(self, workload: str, operations: int = 1000) -> YcsbResult:
        """Execute one workload mix; every op is its own transaction."""
        mix = WORKLOADS.get(workload.upper())
        if mix is None:
            raise BenchmarkError(f"unknown YCSB workload {workload!r}")
        read_f, update_f, insert_f, scan_f, rmw_f = mix
        rng = DeterministicRng(derive_seed(self.seed, "ycsb", "run", workload))
        result = YcsbResult(workload.upper(), self.driver.name, operations, 0.0)
        with Stopwatch() as sw:
            for _ in range(operations):
                dice = rng.random()
                try:
                    if dice < read_f:
                        self._op_read(rng, result, latest=workload.upper() == "D")
                    elif dice < read_f + update_f:
                        self._op_update(rng, result)
                    elif dice < read_f + update_f + insert_f:
                        self._op_insert(rng, result)
                    elif dice < read_f + update_f + insert_f + scan_f:
                        self._op_scan(rng, result)
                    else:
                        self._op_rmw(rng, result)
                except TransactionAborted:
                    result.aborted += 1
        result.seconds = sw.elapsed
        return result

    # -- operations ----------------------------------------------------------

    def _pick_key(self, rng: DeterministicRng, latest: bool) -> str:
        if latest:
            # "read latest": rank 0 = newest inserted record.
            rank = rng.zipf(self._inserted, 0.99)
            return _key(self._inserted - 1 - rank)
        return _key(rng.zipf(self._inserted, 0.99))

    def _op_read(self, rng: DeterministicRng, result: YcsbResult, latest: bool) -> None:
        key = self._pick_key(rng, latest)

        def body(session):
            return session.kv_get(NAMESPACE, key)

        if self.driver.run_transaction(body) is None:
            result.not_found += 1
        result.reads += 1

    def _op_update(self, rng: DeterministicRng, result: YcsbResult) -> None:
        key = self._pick_key(rng, latest=False)
        value = _value(rng)
        self.driver.run_transaction(lambda s: s.kv_put(NAMESPACE, key, value))
        result.updates += 1

    def _op_insert(self, rng: DeterministicRng, result: YcsbResult) -> None:
        key = _key(self._inserted)
        self._inserted += 1
        value = _value(rng)
        self.driver.run_transaction(lambda s: s.kv_put(NAMESPACE, key, value))
        result.inserts += 1

    def _op_scan(self, rng: DeterministicRng, result: YcsbResult) -> None:
        start = rng.zipf(self._inserted, 0.99)
        length = rng.randint(1, 100)
        low = _key(start)
        high = _key(self._inserted + 1)

        def body(session):
            return session.kv_scan_range(NAMESPACE, low, high, limit=length)

        self.driver.run_transaction(body)
        result.scans += 1

    def _op_rmw(self, rng: DeterministicRng, result: YcsbResult) -> None:
        key = self._pick_key(rng, latest=False)
        extra = f"{rng.randint(0, 1 << 30):08x}"

        def body(session):
            value = session.kv_get(NAMESPACE, key) or {}
            value["field0"] = extra
            session.kv_put(NAMESPACE, key, value)

        self.driver.run_transaction(body)
        result.rmws += 1
