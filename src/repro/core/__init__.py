"""The UDBMS benchmark core: workloads, runners, experiments, reports.

- :mod:`repro.core.workloads`   — the shared query set Q1-Q10 (MMQL, each
  spanning multiple models) and transactions T1-T4 (cross-model
  read-write units, including the paper's order-update example)
- :mod:`repro.core.runner`      — latency/throughput measurement
- :mod:`repro.core.experiments` — F1 and E1-E6, each returning the
  printable result table recorded in EXPERIMENTS.md
"""

from repro.core.config import BenchmarkConfig
from repro.core.runner import QueryRunner, TransactionRunner
from repro.core.workloads import QUERIES, TRANSACTIONS, QueryDef, TransactionDef

__all__ = [
    "BenchmarkConfig",
    "QUERIES",
    "QueryDef",
    "QueryRunner",
    "TRANSACTIONS",
    "TransactionDef",
    "TransactionRunner",
]
